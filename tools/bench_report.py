#!/usr/bin/env python3
"""Benchmark the measurement pipeline and write BENCH_PIPELINE.json.

Runs ``run_full_study`` stage by stage (build, milking, campaign,
detection, experiments) in a fresh interpreter with ``PYTHONHASHSEED``
pinned, records wall-clock seconds and events/second per stage, and —
when ``--baseline`` points at another checkout's ``src`` directory
(e.g. a git worktree of the pre-optimisation commit) — benchmarks both
trees with the identical workload and reports the end-to-end speedup.

Examples
--------
Current tree only (the CI smoke configuration)::

    python tools/bench_report.py --scale 0.002 --milking-days 6 \
        --campaign-days 20 --out BENCH_PIPELINE.json

Before/after against a baseline worktree::

    git worktree add /tmp/baseline <ref>
    python tools/bench_report.py --baseline /tmp/baseline/src
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC_DIR)

from repro.perf import bench  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=bench.DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=bench.DEFAULT_SEED)
    parser.add_argument("--milking-days", type=int, default=None)
    parser.add_argument("--campaign-days", type=int, default=None)
    parser.add_argument("--hashseed", type=str, default="0",
                        help="PYTHONHASHSEED for the benchmark "
                             "subprocesses (default 0)")
    parser.add_argument("--parallel-experiments", action="store_true")
    parser.add_argument("--repeats", type=int, default=1,
                        help="benchmark each tree this many times "
                             "(interleaved) and report the best run")
    parser.add_argument("--baseline", type=str, default=None,
                        help="src dir of the baseline tree to compare "
                             "against")
    parser.add_argument("--out", type=str,
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_PIPELINE.json"))
    args = parser.parse_args(argv)

    try:
        document = bench.compare_trees(
            current_src=SRC_DIR, baseline_src=args.baseline,
            scale=args.scale, seed=args.seed, hashseed=args.hashseed,
            parallel_experiments=args.parallel_experiments,
            milking_days=args.milking_days,
            campaign_days=args.campaign_days,
            repeats=args.repeats)
    except bench.BaselineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(bench.render(document))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
