#!/usr/bin/env python3
"""Benchmark the measurement pipeline and write BENCH_PIPELINE.json.

Runs ``run_full_study`` stage by stage (build, milking, campaign,
detection, experiments) in a fresh interpreter with ``PYTHONHASHSEED``
pinned, records wall-clock seconds and events/second per stage, and —
when ``--baseline`` points at another checkout's ``src`` directory
(e.g. a git worktree of the pre-optimisation commit) — benchmarks both
trees with the identical workload and reports the end-to-end speedup.

Examples
--------
Current tree only (the CI smoke configuration)::

    python tools/bench_report.py --scale 0.002 --milking-days 6 \
        --campaign-days 20 --out BENCH_PIPELINE.json

Before/after against a baseline worktree::

    git worktree add /tmp/baseline <ref>
    python tools/bench_report.py --baseline /tmp/baseline/src

Scale sweep plus regression guard (the committed reference document)::

    python tools/bench_report.py --sweep --out BENCH_PIPELINE.json
    python tools/bench_report.py --scale 0.001 --out /tmp/guard.json \
        --guard BENCH_PIPELINE.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC_DIR)

from repro.perf import bench  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=bench.DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=bench.DEFAULT_SEED)
    parser.add_argument("--milking-days", type=int, default=None)
    parser.add_argument("--campaign-days", type=int, default=None)
    parser.add_argument("--hashseed", type=str, default="0",
                        help="PYTHONHASHSEED for the benchmark "
                             "subprocesses (default 0)")
    parser.add_argument("--parallel-experiments", action="store_true")
    parser.add_argument("--repeats", type=int, default=1,
                        help="benchmark each tree this many times "
                             "(interleaved) and report the best run")
    parser.add_argument("--baseline", type=str, default=None,
                        help="src dir of the baseline tree to compare "
                             "against")
    parser.add_argument("--sweep", type=str, nargs="?",
                        const="0.001,0.01,0.1", default=None,
                        metavar="SCALES",
                        help="also benchmark the current tree at these "
                             "comma-separated scales (default "
                             "0.001,0.01,0.1) and record a 'sweep' "
                             "section in the document")
    parser.add_argument("--guard", type=str, default=None,
                        metavar="REFERENCE_JSON",
                        help="compare campaign events/s against the "
                             "matching entry (same scale and day "
                             "overrides) of this reference document; "
                             "exit 3 if throughput dropped by more than "
                             "--guard-tolerance")
    parser.add_argument("--guard-tolerance", type=float, default=0.2,
                        help="allowed fractional campaign throughput "
                             "drop before --guard fails (default 0.2)")
    parser.add_argument("--sanitize", action="store_true",
                        help="also benchmark the workload with the "
                             "reprosan shadow trace recording and "
                             "record a 'sanitizer' overhead section")
    parser.add_argument("--sanitize-limit", type=float, default=0.10,
                        help="allowed fractional campaign-stage "
                             "slowdown under --sanitize before the "
                             "overhead guard fails (default 0.10)")
    parser.add_argument("--out", type=str,
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_PIPELINE.json"))
    args = parser.parse_args(argv)

    try:
        document = bench.compare_trees(
            current_src=SRC_DIR, baseline_src=args.baseline,
            scale=args.scale, seed=args.seed, hashseed=args.hashseed,
            parallel_experiments=args.parallel_experiments,
            milking_days=args.milking_days,
            campaign_days=args.campaign_days,
            repeats=args.repeats)
    except bench.BaselineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.sweep:
        scales = [float(token) for token in args.sweep.split(",") if token]
        document["sweep"] = bench.sweep_tree(
            SRC_DIR, scales, seed=args.seed, hashseed=args.hashseed,
            milking_days=args.milking_days,
            campaign_days=args.campaign_days, repeats=args.repeats)

    if args.sanitize:
        document["sanitizer"] = bench.bench_sanitizer(
            SRC_DIR, document["current"], repeats=args.repeats,
            scale=args.scale, seed=args.seed, hashseed=args.hashseed,
            parallel_experiments=args.parallel_experiments,
            milking_days=args.milking_days,
            campaign_days=args.campaign_days)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(bench.render(document))
    print(f"wrote {args.out}")

    if args.guard:
        with open(args.guard, "r", encoding="utf-8") as handle:
            reference = json.load(handle)
        try:
            print(bench.check_campaign_regression(
                document, reference, tolerance=args.guard_tolerance))
        except bench.GuardError as error:
            print(f"error: {error}", file=sys.stderr)
            return 3
    if args.sanitize:
        try:
            print(bench.check_sanitizer_overhead(
                document, limit=args.sanitize_limit))
        except bench.GuardError as error:
            print(f"error: {error}", file=sys.stderr)
            return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
