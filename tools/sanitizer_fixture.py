#!/usr/bin/env python3
"""Produce reprosan trace fixtures for the CI ``sanitizer-smoke`` job.

Two modes, each writing a pair of ``--sanitize``-style manifest
directories for ``repro san diff`` to compare:

``smoke --out DIR``
    Runs the compressed two-network countermeasure campaign twice in
    one process — serial (``shards=1``) into ``DIR/serial`` and
    sharded (``shards=2``) into ``DIR/sharded`` — with the sanitizer
    recording.  The request-log digests must already match (that is
    the sharding equivalence contract); CI then proves the *traces*
    match event-for-event::

        repro san diff DIR/serial DIR/sharded \\
            --ignore shard --ignore clock

    must exit 0.  (``shard`` is the execution-strategy stream;
    ``clock`` read patterns legitimately differ between the shard
    pre-pass/replay and a serial sweep.)

``divergent --out DIR``
    Synthesizes ``DIR/base`` and ``DIR/divergent``: identical
    three-day draw schedules on one stream, except the divergent
    trace injects a single extra draw mid-day-1.  ``repro san diff``
    must exit 1 and bisect to the exact event — the mode prints the
    ``stream=... day=... seq=...`` marker CI greps for.
"""

from __future__ import annotations

import argparse
import sys

from repro.sanitizer import SANITIZER, write_sanitizer
from repro.sanitizer.trace import SanitizerTrace

#: Mirrors tests/resume_driver.py: two disjoint collusion networks so
#: the shard planner can actually split the campaign.
NETWORKS = ("fb-autolikers.com", "autolike.vn")
SCALE = 0.004
DAYS = 12
SEED = 31

#: The divergent fixture's shape: CI greps the diff output for
#: ``stream=rng:campaign day=1 seq=78`` (the injected draw displaces
#: event 78 of day 1; events 0..77 agree).
DIVERGENT_STREAM = "campaign"
DIVERGENT_DAYS = 3
DRAWS_PER_DAY = 120
INJECT_AFTER_SEQ = 77


def _run_campaign(shards: int, out_dir: str) -> str:
    """One compressed campaign with the sanitizer on; returns the
    trace fingerprint (shard/clock streams excluded so serial and
    sharded agree)."""
    from repro.apps.catalog import AppCatalog
    from repro.collusion.ecosystem import build_ecosystem
    from repro.core.config import StudyConfig
    from repro.core.world import World
    from repro.countermeasures.campaign import (
        CampaignConfig,
        CountermeasureCampaign,
    )

    SANITIZER.reset()
    SANITIZER.enable()
    world = World(StudyConfig(scale=SCALE, seed=SEED))
    AppCatalog(world.apps, world.rng.stream("catalog"),
               tail_apps=0).build()
    ecosystem = build_ecosystem(world, build_membership=False,
                                network_limit=13)
    for domain in NETWORKS:
        network = ecosystem.network(domain)
        network.build_membership(network.profile.pool_size(SCALE))
    config = CampaignConfig.compressed(
        DAYS, networks=NETWORKS, outgoing_per_hour=0.0, shards=shards,
        hublaa_outage=None)
    CountermeasureCampaign(world, ecosystem, config).run()
    write_sanitizer(out_dir)
    fingerprint = SANITIZER.fingerprint(
        exclude_prefixes=("shard", "clock"))
    print(f"shards={shards} dir={out_dir} digest={world.api.log.digest()} "
          f"trace_fingerprint={fingerprint}")
    SANITIZER.reset()
    SANITIZER.disable()
    return fingerprint


def cmd_smoke(args: argparse.Namespace) -> int:
    serial = _run_campaign(1, f"{args.out}/serial")
    sharded = _run_campaign(2, f"{args.out}/sharded")
    if serial != sharded:
        print("smoke: trace fingerprints differ before diff "
              f"({serial} vs {sharded}) — san diff will localize")
    return 0


def _drive(trace: SanitizerTrace, inject: bool) -> None:
    """Record the fixed draw schedule; the divergent twin slips one
    extra draw in after day 1's event ``INJECT_AFTER_SEQ``."""
    trace.enable()
    frame = sys._getframe()
    for day in range(DIVERGENT_DAYS):
        trace.set_day(day)
        for seq in range(DRAWS_PER_DAY):
            trace.record_draw(DIVERGENT_STREAM,
                              b"draw:%d:%d" % (day, seq),
                              "random()", frame)
            if inject and day == 1 and seq == INJECT_AFTER_SEQ:
                trace.record_draw(DIVERGENT_STREAM, b"extra-draw",
                                  "random() [injected]", frame)


def cmd_divergent(args: argparse.Namespace) -> int:
    base = SanitizerTrace()
    divergent = SanitizerTrace()
    _drive(base, inject=False)
    _drive(divergent, inject=True)
    write_sanitizer(f"{args.out}/base", trace=base)
    write_sanitizer(f"{args.out}/divergent", trace=divergent)
    print(f"expect: stream=rng:{DIVERGENT_STREAM} day=1 "
          f"seq={INJECT_AFTER_SEQ + 1}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="reprosan CI fixture generator")
    sub = parser.add_subparsers(dest="mode", required=True)
    smoke = sub.add_parser(
        "smoke", help="serial-vs-sharded campaign trace pair")
    smoke.add_argument("--out", required=True)
    smoke.set_defaults(func=cmd_smoke)
    divergent = sub.add_parser(
        "divergent", help="synthetic pair with one injected draw")
    divergent.add_argument("--out", required=True)
    divergent.set_defaults(func=cmd_divergent)
    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
