#!/usr/bin/env python
"""Guard the full-tree reprolint wall time against regression.

``--record`` measures the current tree and writes the baseline JSON
(``tools/reprolint_timing.json``); the default check mode re-measures
and exits 1 when the run exceeds ``multiplier`` x the recorded
seconds.  Each measurement clears the process-wide parse cache first
and keeps the best of ``--repeats`` runs, so the number is the real
cold parse+analyze cost, not a cache artifact.  The default 3x
multiplier is deliberately generous: the guard exists to catch the
fixpoint going quadratic on a growing tree, not a shared-runner blip
— widen it further before weakening the analysis.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / \
    "reprolint_timing.json"
DEFAULT_TARGETS = ["src/repro"]
DEFAULT_MULTIPLIER = 3.0


def measure(targets, repeats: int):
    """Best-of-N cold wall seconds (and files scanned) for one tree."""
    from repro.lint import graph
    from repro.lint.engine import LintEngine

    best = None
    files = 0
    for _ in range(repeats):
        graph._PARSE_CACHE.clear()
        engine = LintEngine()
        start = time.perf_counter()
        report = engine.run([Path(target) for target in targets])
        elapsed = time.perf_counter() - start
        files = report.files_scanned
        best = elapsed if best is None else min(best, elapsed)
    return best, files


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("targets", nargs="*", default=None,
                        help=f"trees to lint (default: "
                             f"{' '.join(DEFAULT_TARGETS)})")
    parser.add_argument("--baseline", type=Path,
                        default=DEFAULT_BASELINE,
                        help="baseline JSON path")
    parser.add_argument("--record", action="store_true",
                        help="measure and (re)write the baseline")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurement runs; best one counts "
                             "(default: 3)")
    parser.add_argument("--multiplier", type=float, default=None,
                        help="override the budget multiplier "
                             f"(default: baseline value or "
                             f"{DEFAULT_MULTIPLIER})")
    args = parser.parse_args(argv)
    targets = args.targets or DEFAULT_TARGETS

    if args.record:
        seconds, files = measure(targets, args.repeats)
        payload = {
            "targets": targets,
            "seconds": round(seconds, 3),
            "files": files,
            "multiplier": args.multiplier or DEFAULT_MULTIPLIER,
        }
        args.baseline.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"recorded: {files} files in {seconds:.2f}s "
              f"-> {args.baseline}")
        return 0

    try:
        recorded = json.loads(args.baseline.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        print(f"error: cannot load timing baseline "
              f"{args.baseline}: {error}", file=sys.stderr)
        return 2
    targets = args.targets or recorded.get("targets", DEFAULT_TARGETS)
    multiplier = (args.multiplier if args.multiplier is not None
                  else recorded.get("multiplier", DEFAULT_MULTIPLIER))
    budget = recorded["seconds"] * multiplier
    seconds, files = measure(targets, args.repeats)
    verdict = "ok" if seconds <= budget else "FAIL"
    print(f"lint timing: {files} files in {seconds:.2f}s "
          f"(budget {budget:.2f}s = {recorded['seconds']}s x "
          f"{multiplier:g}) {verdict}")
    if seconds > budget:
        print("lint wall time regressed past the recorded budget; "
              "profile the new rules or re-record with --record after "
              "an audited change", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
