#!/usr/bin/env python3
"""Validate the artifacts of a ``repro run --telemetry DIR`` run.

Checks, in order:

1. ``trace.json`` is structurally valid Chrome trace-event JSON
   (``traceEvents`` list, ``X`` events with integer ``ts``/``dur``,
   the ``M`` process-name metadata event).
2. ``metrics.prom`` parses as Prometheus text exposition: every
   non-comment line is ``name{labels} value`` with an integer value,
   every series is preceded by a ``# TYPE`` for its family, and
   histogram families carry ``_bucket``/``_sum``/``_count`` series.
3. No raw token material leaked into any export: the token mint
   pattern ``EAAB[0-9a-f]{40}`` must not appear anywhere — only
   ``redact_token`` digests are allowed on labels.
4. The run covered the pipeline: the required metric families
   (graphapi, ratelimit, retry/breaker or delivery, wave, journal,
   detection) are all present.

Usage::

    python -m repro run --scale 0.002 ... --telemetry /tmp/tele
    python tools/telemetry_smoke.py /tmp/tele [--require-journal]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

#: name{labels} value — value must be an integer (the registry is
#: integer-valued by contract).
_SERIES_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>-?\d+)$")
_TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<kind>counter|gauge|histogram)$")
#: Raw minted token: EAAB + 40 hex chars (redact_token digests are 8).
_RAW_TOKEN_RE = re.compile(r"EAAB[0-9a-f]{40}")

#: At least one family per instrumented subsystem must appear.
REQUIRED_FAMILIES = {
    "graphapi": ("graphapi_requests_total",),
    "ratelimit": ("ratelimit_denials_total", "ratelimit_window_keys"),
    "retry/delivery": ("retry_attempts_total", "delivery_attempts_total"),
    "wave": ("wave_size", "wave_likes_total"),
    "detection": ("detection_pairs_scored_total",),
}
#: Journal families only exist on --journal runs; required via flag.
JOURNAL_FAMILIES = ("journal_frames_total",)


def fail(message: str) -> None:
    print(f"telemetry-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    if not any(e.get("ph") == "M" and e.get("name") == "process_name"
               for e in events):
        fail(f"{path}: no process_name metadata event")
    complete = [e for e in events if e.get("ph") == "X"]
    if not complete:
        fail(f"{path}: no complete ('X') span events")
    for event in complete:
        if not (isinstance(event.get("ts"), int)
                and isinstance(event.get("dur"), int)):
            fail(f"{path}: span {event.get('name')!r} has non-integer "
                 "ts/dur")
        if not event.get("name"):
            fail(f"{path}: span event without a name")
    return len(complete)


def check_prometheus(path: str) -> dict:
    families: dict = {}
    typed: dict = {}
    hist_suffixes: dict = {}
    suffix_re = re.compile(r"^(.*)_(bucket|sum|count)$")
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                match = _TYPE_RE.match(line)
                if match is None:
                    fail(f"{path}:{lineno}: malformed comment {line!r}")
                typed[match.group("name")] = match.group("kind")
                continue
            match = _SERIES_RE.match(line)
            if match is None:
                fail(f"{path}:{lineno}: malformed series line {line!r}")
            name = match.group("name")
            base = name
            suffixed = suffix_re.match(name)
            if (suffixed is not None
                    and typed.get(suffixed.group(1)) == "histogram"):
                base = suffixed.group(1)
                hist_suffixes.setdefault(base, set()).add(
                    suffixed.group(2))
            if base not in typed:
                fail(f"{path}:{lineno}: series {name} has no # TYPE")
            families[base] = families.get(base, 0) + 1
    for name, kind in typed.items():
        if kind != "histogram":
            continue
        missing = {"bucket", "sum", "count"} - hist_suffixes.get(
            name, set())
        if missing:
            fail(f"{path}: histogram {name} missing "
                 f"{'/'.join(sorted(missing))} series")
    if not families:
        fail(f"{path}: no series at all")
    return families


def check_no_raw_tokens(paths) -> None:
    for path in paths:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            content = handle.read()
        match = _RAW_TOKEN_RE.search(content)
        if match:
            fail(f"{path}: raw token material leaked into export "
                 f"({match.group()[:12]}…)")


def check_families(families: dict, require_journal: bool) -> None:
    required = dict(REQUIRED_FAMILIES)
    if require_journal:
        required["journal"] = JOURNAL_FAMILIES
    for subsystem, candidates in required.items():
        if not any(name in families for name in candidates):
            fail(f"metrics cover no {subsystem} family (looked for "
                 f"{', '.join(candidates)})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("directory",
                        help="telemetry dir written by --telemetry")
    parser.add_argument("--require-journal", action="store_true",
                        help="also require journal_* families (the run "
                             "used --journal)")
    args = parser.parse_args(argv)

    for name in ("metrics.prom", "metrics.json", "trace.json",
                 "spans.txt"):
        if not os.path.isfile(os.path.join(args.directory, name)):
            fail(f"missing artifact {name} in {args.directory}")

    spans = check_trace(os.path.join(args.directory, "trace.json"))
    families = check_prometheus(
        os.path.join(args.directory, "metrics.prom"))
    check_no_raw_tokens(
        os.path.join(args.directory, name)
        for name in ("metrics.prom", "metrics.json", "trace.json",
                     "spans.txt"))
    check_families(families, args.require_journal)

    with open(os.path.join(args.directory, "metrics.json"),
              encoding="utf-8") as handle:
        fingerprint = json.load(handle)["fingerprint"]
    print(f"telemetry-smoke: OK — {len(families)} metric families, "
          f"{spans} spans, fingerprint {fingerprint}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
