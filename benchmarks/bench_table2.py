"""Table 2 — rank the 50 collusion-network sites by traffic.

Paper: hublaa.me ranks ~8K globally, official-liker.net ~17K; the top 8
networks sit inside the global top 100K; India dominates visitor shares
(Turkey for begeniyor.com, Vietnam for autolike.vn, Egypt for
arabfblike.com).
"""

from repro.experiments import table2


def test_bench_table2(benchmark, bench_artifacts):
    world = bench_artifacts["world"]

    result = benchmark(table2.run, world)

    rows = result.rows
    assert rows[0][0] == "hublaa.me"
    assert rows[1][0] == "official-liker.net"
    # Top 8 inside the global top ~100K.
    assert all(rank <= 140_000 for _, rank, _, _ in rows[:8])
    by_domain = {r[0]: r for r in rows}
    assert by_domain["hublaa.me"][2] == "IN"
    assert by_domain["begeniyor.com"][2] == "TR"
    assert by_domain["autolike.vn"][2] == "VN"
    assert by_domain["arabfblike.com"][2] == "EG"
    # India is the modal top country across the list.
    top_countries = [r[2] for r in rows if r[2]]
    assert top_countries.count("IN") > len(top_countries) * 0.7
    print()
    print(result.render())
