"""Ablation — the scaling methodology itself.

EXPERIMENTS.md compares paper numbers against runs at reduced `scale`,
on the claim that per-request quotas, orderings and coverage ratios are
scale-invariant.  This bench runs the same milking campaign at two
scales and checks that claim: quotas identical, membership proportional
to scale, ordering unchanged, coverage ratio (observed / target) equal.
"""

import pytest

from conftest import once
from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.honeypot.milker import MilkingCampaign

SCALES = (0.005, 0.01)
NETWORKS = 6
DAYS = 10


def _milk_at(scale: float):
    world = World(StudyConfig(scale=scale, seed=2024, milking_days=DAYS))
    AppCatalog(world.apps, world.rng.stream("catalog"),
               tail_apps=0).build()
    ecosystem = build_ecosystem(world, network_limit=NETWORKS)
    results = MilkingCampaign(world, ecosystem).run(DAYS)
    out = {}
    for domain, r in results.per_network.items():
        target = ecosystem.network(domain).profile.membership_target
        out[domain] = {
            "avg_likes": r.avg_likes_per_post,
            "membership": r.membership_estimate,
            "coverage": r.membership_estimate / (target * scale),
        }
    return out


def test_bench_scale_invariance(benchmark):
    def sweep():
        return {scale: _milk_at(scale) for scale in SCALES}

    table = once(benchmark, sweep)

    small, large = (table[s] for s in SCALES)
    print()
    for domain in small:
        print(f"  {domain:<22} avg likes {small[domain]['avg_likes']:.0f}"
              f" / {large[domain]['avg_likes']:.0f}   coverage "
              f"{small[domain]['coverage']:.2f} / "
              f"{large[domain]['coverage']:.2f}")

    big_networks = ("hublaa.me", "official-liker.net", "mg-likers.com",
                    "monkeyliker.com")
    for domain in big_networks:
        # Per-request quotas are identical across scales...
        assert small[domain]["avg_likes"] == pytest.approx(
            large[domain]["avg_likes"], rel=0.05), domain
        # ...and calibrated coverage holds at both (within 15%).
        assert small[domain]["coverage"] == pytest.approx(1.0, abs=0.15)
        assert large[domain]["coverage"] == pytest.approx(1.0, abs=0.15)
        # Membership scales with `scale`.
        ratio = large[domain]["membership"] / small[domain]["membership"]
        assert ratio == pytest.approx(SCALES[1] / SCALES[0], rel=0.2)
    # Ordering is preserved across scales.
    order_small = sorted(small, key=lambda d: -small[d]["membership"])
    order_large = sorted(large, key=lambda d: -large[d]["membership"])
    assert order_small[:4] == order_large[:4]
