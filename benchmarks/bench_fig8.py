"""Figure 8 — source IPs and ASes behind the like traffic.

Paper: a few IPs carry the vast majority of official-liker.net's likes
(hence per-IP limits kill it); hublaa.me spreads across >6,000 addresses
— all inside two bulletproof-hosting ASes (hence AS blocking).
"""

from repro.collusion.profiles import BULLETPROOF_ASNS
from repro.experiments import fig8


def test_bench_fig8(benchmark, bench_artifacts):
    world = bench_artifacts["world"]
    campaign = bench_artifacts["campaign"]

    result = benchmark(fig8.run, world, campaign)

    official = result.breakdowns["official-liker.net"]
    hublaa = result.breakdowns["hublaa.me"]

    # official-liker.net: single-digit IP pool, heavy concentration.
    assert official.distinct_ips <= 10
    assert official.top_ip_share(top_n=3) > 0.6
    assert official.distinct_asns == 1

    # hublaa.me: two orders of magnitude more IPs, no concentration,
    # exactly the two bulletproof ASes.
    assert hublaa.distinct_ips > 30 * official.distinct_ips
    assert hublaa.top_ip_share(top_n=3) < 0.15
    assert hublaa.distinct_asns == 2
    asns = {int(s.source[2:]) for s in hublaa.per_as}
    assert asns == set(BULLETPROOF_ASNS)
    for stats in hublaa.per_as:
        assert world.as_registry.get(
            int(stats.source[2:])).is_bulletproof
    print()
    print(result.render())
