"""Ablation — honeypot count vs milking coverage (§6.5).

The paper notes a honeypot's very frequent like requests could expose
it, and proposes spreading the workload over multiple honeypots.  The
sweep shows coverage is a function of total draws, not honeypot count:
N honeypots splitting the same request budget observe the same
membership while each individual account requests N-times less often.
"""

import pytest

from conftest import once
from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.honeypot.account import create_honeypot

TOTAL_REQUESTS = 60
HONEYPOT_COUNTS = (1, 3, 6)


def _coverage_with(n_honeypots):
    world = World(StudyConfig(scale=0.004, seed=66))
    AppCatalog(world.apps, world.rng.stream("catalog"),
               tail_apps=0).build()
    ecosystem = build_ecosystem(world, network_limit=1)
    network = ecosystem.network("hublaa.me")
    honeypots = [create_honeypot(world, network)
                 for _ in range(n_honeypots)]
    seen = set()
    for i in range(TOTAL_REQUESTS):
        honeypot = honeypots[i % n_honeypots]
        post = world.platform.create_post(honeypot.account_id, f"p{i}")
        network.submit_like_request(honeypot.account_id, post.post_id)
        seen.update(world.platform.get_post(post.post_id).liker_ids())
    per_honeypot = TOTAL_REQUESTS // n_honeypots
    return {"observed": len(seen), "requests_each": per_honeypot,
            "pool": network.member_count()}


def test_bench_ablation_honeypots(benchmark):
    def sweep():
        return {n: _coverage_with(n) for n in HONEYPOT_COUNTS}

    table = once(benchmark, sweep)

    print()
    for n, row in table.items():
        print(f"  {n} honeypot(s): observed {row['observed']:,} of "
              f"{row['pool']:,} members "
              f"({row['requests_each']} requests each)")

    single = table[1]["observed"]
    for n in HONEYPOT_COUNTS[1:]:
        # Same total budget, same coverage (within sampling noise)...
        assert table[n]["observed"] == pytest.approx(single, rel=0.1)
        # ...but each honeypot's own request volume drops linearly.
        assert table[n]["requests_each"] <= TOTAL_REQUESTS // n
