"""Figure 7 — hourly likes performed by honeypot accounts.

Paper: networks spread each token's outgoing likes over time — the
honeypots' hourly like counts sit in a 5-10/hour band around the clock,
with no burst hours (the behaviour that defeats temporal clustering).
"""

from repro.experiments import fig7


def test_bench_fig7(benchmark, bench_artifacts):
    world = bench_artifacts["world"]
    campaign = bench_artifacts["campaign"]

    result = benchmark(fig7.run, world, campaign)

    per_hour_target = campaign.config.outgoing_per_hour
    for domain, series in result.series.items():
        assert series.total_actions > 100, domain
        # The mean hourly rate tracks the configured spreading rate.
        assert 0.3 * per_hour_target < series.mean < 2.0 * per_hour_target
        # Activity covers the whole day with no binge hour: the peak
        # stays within a small multiple of the mean.
        active_hours = sum(1 for v in series.hourly_average if v > 0)
        assert active_hours == 24
        assert series.peak < 3.0 * series.mean
    print()
    print(result.render())
