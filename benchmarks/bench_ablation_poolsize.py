"""Ablation — token-pool size is the collusion networks' core defense.

Sweeps the member-pool size of a synthetic network and measures (a) how
long honeypot milking takes to reach 90% membership coverage and (b) the
fraction of accounts a SynchroTrap pass flags.  Big pools are exactly
why the paper's honeypots needed months and why temporal clustering
failed — small pools lose on both fronts.
"""

from conftest import once
from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import (
    register_extra_apps,
    register_infrastructure,
)
from repro.collusion.network import CollusionNetwork, MemberDirectory
from repro.collusion.profiles import HTC_SENSE, CollusionNetworkProfile
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.detection.actions import actions_from_request_log
from repro.detection.synchrotrap import SynchroTrap
from repro.honeypot.account import create_honeypot

POOL_SIZES = (200, 800, 3200)
LIKES_PER_REQUEST = 100
FIXED_REQUESTS = 60


def _make_network(world, pool_size):
    profile = CollusionNetworkProfile(
        domain=f"pool{pool_size}.example", app_id=HTC_SENSE,
        posts_milked=100, likes_per_request=LIKES_PER_REQUEST,
        membership_target=pool_size, outgoing_activities=0,
        outgoing_target_accounts=0, outgoing_target_pages=0,
        ip_pool_size=4, asns=(64510,))
    directory = MemberDirectory(world.platform, world.geo,
                                world.rng.stream("members"))
    pool = world.ip_allocator.allocate(
        f"pool:{pool_size}", "10.60.0.0", 4)
    network = CollusionNetwork(world, profile, directory, pool)
    network.build_membership(pool_size)
    return network


def _measure(pool_size):
    world = World(StudyConfig(scale=1.0, seed=55))
    AppCatalog(world.apps, world.rng.stream("catalog"),
               tail_apps=0).build()
    register_infrastructure(world)
    register_extra_apps(world)
    network = _make_network(world, pool_size)
    honeypot = create_honeypot(world, network)
    seen = set()
    requests_to_cover = None
    # Fixed request budget: coverage speed and detectability are both
    # measured over the same 60-request milking run.
    for i in range(FIXED_REQUESTS):
        post = world.platform.create_post(honeypot.account_id, f"p{i}")
        network.submit_like_request(honeypot.account_id, post.post_id)
        seen.update(world.platform.get_post(post.post_id).liker_ids())
        if requests_to_cover is None and len(seen) >= 0.9 * min(
                pool_size, FIXED_REQUESTS * LIKES_PER_REQUEST):
            requests_to_cover = i + 1
    actions = actions_from_request_log(world.api.log)
    flagged = SynchroTrap(min_cluster_size=10,
                          max_bucket_actors=120).detect(actions)
    return {
        "requests_to_90pct": requests_to_cover or FIXED_REQUESTS + 1,
        "flagged_fraction": len(flagged.flagged_accounts) / pool_size,
    }


def test_bench_ablation_poolsize(benchmark):
    def sweep():
        return {size: _measure(size) for size in POOL_SIZES}

    table = once(benchmark, sweep)

    print()
    for size, row in table.items():
        print(f"  pool {size:>5}: requests to 90% coverage = "
              f"{row['requests_to_90pct']:>4}, SynchroTrap flags "
              f"{row['flagged_fraction']:.1%} of members")

    coverage = [table[s]["requests_to_90pct"] for s in POOL_SIZES]
    # Bigger pools take strictly more milking effort...
    assert coverage[0] < coverage[1] < coverage[2]
    # ...and keep members under the clustering radar, while tiny pools
    # force enough account reuse to get caught.
    assert table[POOL_SIZES[0]]["flagged_fraction"] > 0.5
    assert table[POOL_SIZES[-1]]["flagged_fraction"] < 0.05
