"""Table 5 — short-URL analytics.

Paper: 13 goo.gl links; goo.gl/jZ7Nyl (June 2014, mg-likers.com) leads
with ~148M clicks; several links share the HTC Sense dialog long URL
totalling 236M clicks; distinct long URLs sum past 289M.
"""

from repro.experiments import table5


def test_bench_table5(benchmark, bench_artifacts):
    world = bench_artifacts["world"]
    ecosystem = bench_artifacts["ecosystem"]

    result = benchmark(table5.run, world, ecosystem)

    assert len(result.rows) == 13
    top = result.rows[0]
    assert top.label == "goo.gl/jZ7Nyl"
    assert top.report.short_url_clicks >= 147_959_735
    assert top.report.top_referrer == "mg-likers.com"
    assert top.app_name == "HTC Sense"
    # Shared long URL: the HTC dialog totals 236M+ across its links.
    assert top.report.long_url_clicks >= 236_194_576
    # Paper: the sum of clicks over unique long URLs exceeds 289M.
    assert result.total_long_url_clicks() > 289_000_000
    # Click geolocation is dominated by the paper's visitor countries.
    assert top.report.top_countries[0][0] == "IN"
    print()
    print(result.render())
