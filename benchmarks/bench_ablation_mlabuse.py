"""Ablation — §8 future work: ML abuse detection vs temporal clustering.

Runs both detectors over the same mixed trace (collusion + organic app
traffic).  Temporal clustering misses the collusion accounts (§6.3);
the feature-based classifier separates them almost perfectly because it
keys on infrastructure (IP co-tenancy, datacenter origin) instead of
timing — the paper's proposed next step, quantified.
"""

from conftest import once
from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.collusion.profiles import HTC_SENSE
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.detection.actions import actions_from_request_log
from repro.detection.mlabuse import (
    LogisticAbuseClassifier,
    detect_abusive_tokens,
    extract_token_features,
    train_test_split,
)
from repro.detection.synchrotrap import SynchroTrap
from repro.honeypot.account import create_honeypot
from repro.sim.clock import DAY
from repro.workloads.organic import OrganicWorkload


def _build_trace():
    world = World(StudyConfig(scale=0.004, seed=88))
    AppCatalog(world.apps, world.rng.stream("catalog"),
               tail_apps=0).build()
    ecosystem = build_ecosystem(world, network_limit=2)
    network = ecosystem.network("official-liker.net")
    honeypot = create_honeypot(world, network)
    organic = OrganicWorkload(world, [HTC_SENSE],
                              likes_per_user_per_day=3.0)
    organic.create_users(80)
    for day in range(6):
        for i in range(4):
            post = world.platform.create_post(honeypot.account_id,
                                              f"d{day}p{i}")
            network.submit_like_request(honeypot.account_id,
                                        post.post_id)
        organic.run_day()
        world.clock.advance(DAY)
    colluding = set(network.token_db) | network.dead_members
    organic_users = {u.account_id for u in organic.users}
    return world, colluding, organic_users


def _evaluate(world, colluding, organic_users):
    # Temporal clustering over the full trace.
    synchrotrap = SynchroTrap(min_cluster_size=10, max_bucket_actors=120)
    st_result = synchrotrap.detect(
        actions_from_request_log(world.api.log))
    st_collusion_recall = (len(st_result.flagged_accounts & colluding)
                           / len(colluding))

    # Feature-based classifier, honest train/test split.
    features = [f for f in extract_token_features(world.api.log)
                if f.user_id in colluding or f.user_id in organic_users]
    labels = [1 if f.user_id in colluding else 0 for f in features]
    train_x, train_y, test_x, test_y = train_test_split(
        features, labels, test_fraction=0.3, seed=9)
    classifier = LogisticAbuseClassifier().fit(train_x, train_y)
    result = detect_abusive_tokens(classifier, test_x)
    positives = {s.token for s, label in zip(test_x, test_y) if label}
    negatives = {s.token for s, label in zip(test_x, test_y) if not label}
    ml_recall = (len(result.flagged_tokens & positives)
                 / max(1, len(positives)))
    ml_false_positive_rate = (len(result.flagged_tokens & negatives)
                              / max(1, len(negatives)))
    return {
        "synchrotrap_collusion_recall": st_collusion_recall,
        "ml_recall": ml_recall,
        "ml_false_positive_rate": ml_false_positive_rate,
    }


def test_bench_ablation_mlabuse(benchmark):
    def run():
        world, colluding, organic_users = _build_trace()
        return _evaluate(world, colluding, organic_users)

    metrics = once(benchmark, run)

    print()
    for key, value in metrics.items():
        print(f"  {key}: {value:.1%}")

    # §6.3 replication: temporal clustering misses the colluders.
    assert metrics["synchrotrap_collusion_recall"] < 0.05
    # §8 proposal: infrastructure features catch them with near-zero
    # collateral damage on organic app users.
    assert metrics["ml_recall"] > 0.9
    assert metrics["ml_false_positive_rate"] < 0.05
