"""Figure 4 — cumulative likes vs cumulative unique accounts.

Paper: like totals grow linearly with post index (fixed likes/request)
while the unique-account curve flattens — repetition rises as the token
pool gets milked dry.
"""

import pytest

from repro.experiments import fig4


def test_bench_fig4(benchmark, bench_artifacts):
    milking = bench_artifacts["milking"]

    result = benchmark(fig4.run, milking)

    for domain, curve in result.curves.items():
        likes = curve.cumulative_likes
        unique = curve.cumulative_unique
        posts = curve.posts
        assert posts >= 4, domain
        # Likes grow linearly: the middle of the curve sits where a
        # straight line would put it.
        mid = posts // 2
        linear_estimate = likes[-1] * (mid + 1) / posts
        assert likes[mid] == pytest.approx(linear_estimate, rel=0.15)
        # The unique curve is concave: the first half contributes more
        # new accounts than the second half.
        first_half = unique[mid]
        second_half = unique[-1] - unique[mid]
        assert first_half > second_half, domain
        # And the tail keeps finding *some* new accounts but at a rate
        # well below one-per-like.
        assert 0 <= curve.new_unique_rate() < 0.9
    print()
    print(result.render())
