"""Table 4 — the milking campaign statistics.

Paper (at 1:1 scale): 11,751 posts, 2.75M likes, 238 avg likes/post;
membership ordering hublaa.me (295K) > official-liker.net (233K) >
mg-likers.com (178K) > ... > fast-liker.com (834); ~12% of memberships
are accounts colluding in more than one network.

The bench times the *full milking campaign* (the expensive pipeline
stage) on a fresh world, then checks the table against the session run.
"""

import pytest

from conftest import once
from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.collusion.profiles import MILKED_PROFILES
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.experiments import table4
from repro.honeypot.milker import MilkingCampaign


def test_bench_table4_milking_campaign(benchmark):
    """Time a compact milking campaign end to end."""
    def milk():
        world = World(StudyConfig(scale=0.004, seed=1, milking_days=10))
        AppCatalog(world.apps, world.rng.stream("catalog"),
                   tail_apps=0).build()
        ecosystem = build_ecosystem(world, network_limit=6)
        return world, MilkingCampaign(world, ecosystem).run(10)

    world, results = once(benchmark, milk)
    assert results.total_likes() > 0


def test_bench_table4_shape(benchmark, bench_artifacts):
    milking = bench_artifacts["milking"]
    scale = bench_artifacts["config"].scale

    result = benchmark(table4.run, milking, scale)

    # --- membership ordering matches the paper ----------------------
    domains = [r.domain for r in result.rows]
    assert domains[:3] == ["hublaa.me", "official-liker.net",
                           "mg-likers.com"]
    assert domains[-1] in ("fast-liker.com", "arabfblike.com")

    # --- absolute numbers land within 20% of scaled paper values ----
    paper = {p.domain: p for p in MILKED_PROFILES}
    for row in result.rows:
        target = paper[row.domain].membership_target * scale
        assert row.membership_size == pytest.approx(target, rel=0.25), \
            row.domain

    # --- fixed likes-per-request behaviour --------------------------
    for domain in ("hublaa.me", "official-liker.net", "mg-likers.com"):
        row = result.row_for(domain)
        quota = paper[domain].likes_per_request
        assert row.avg_likes_per_post == pytest.approx(quota, rel=0.1)

    # --- overall volume: ~238 avg likes/post, ~12% overlap ----------
    overall_avg = result.total_likes / result.total_posts
    assert overall_avg == pytest.approx(238, rel=0.15)
    overlap = 1 - result.unique_accounts / result.total_memberships
    assert 0.03 < overlap < 0.25
    print()
    print(result.render())
