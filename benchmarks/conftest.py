"""Shared state for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables or figures
(plus shape assertions against the paper's qualitative results) and
times the regeneration with pytest-benchmark.  The expensive shared
pipeline — world build, milking campaign, countermeasure campaign — runs
once per session at ``BENCH_SCALE`` and is reused by the per-experiment
benches; the heavyweight stages are themselves timed by dedicated
benches with ``rounds=1``.
"""

from __future__ import annotations

import pytest

from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.countermeasures.campaign import (
    CampaignConfig,
    CountermeasureCampaign,
)
from repro.honeypot.milker import MilkingCampaign

#: Benchmark scale: 1/100th of the paper.  Shapes (orderings, ratios,
#: crossovers) are scale-invariant; absolute counts scale linearly.
BENCH_SCALE = 0.01
BENCH_SEED = 2017
MILKING_DAYS = 30
CAMPAIGN_DAYS = 75


@pytest.fixture(scope="session")
def bench_artifacts():
    """Build + milk + campaign, once per benchmark session."""
    config = StudyConfig(scale=BENCH_SCALE, seed=BENCH_SEED,
                         milking_days=MILKING_DAYS,
                         campaign_days=CAMPAIGN_DAYS)
    world = World(config)
    catalog = AppCatalog(world.apps, world.rng.stream("catalog"))
    catalog.build()
    ecosystem = build_ecosystem(world)
    milking = MilkingCampaign(world, ecosystem).run(MILKING_DAYS)
    campaign = CountermeasureCampaign(
        world, ecosystem, CampaignConfig(days=CAMPAIGN_DAYS)).run()
    return {
        "config": config,
        "world": world,
        "catalog": catalog,
        "ecosystem": ecosystem,
        "milking": milking,
        "campaign": campaign,
    }


def once(benchmark, func, *args, **kwargs):
    """Time ``func`` exactly once (for non-repeatable pipeline stages)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
