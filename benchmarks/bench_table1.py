"""Table 1 — scan the top-100 apps for token-leakage susceptibility.

Paper: 55/100 susceptible; 46 short-term, 9 long-term; the long-term
list is headed by Spotify (50M MAU) and every entry has >=1M MAU.
"""

from repro.experiments import table1


def test_bench_table1(benchmark, bench_artifacts):
    world = bench_artifacts["world"]
    catalog = bench_artifacts["catalog"]

    result = benchmark(table1.run, world, catalog)

    # --- shape assertions against the paper -------------------------
    assert result.scanned == 100
    assert result.susceptible == 55
    assert result.susceptible_short_term == 46
    assert result.susceptible_long_term == 9
    assert len(result.rows) == 9
    assert result.rows[0][1] == "Spotify"
    assert result.rows[0][2] == 50_000_000
    assert all(mau >= 1_000_000 for _, _, mau in result.rows)
    print()
    print(result.render())
