"""Table 6 — lexical analysis of auto-comments.

Paper: 7 networks provide auto-comments; only 187 of 12,959 comments are
unique (1.4%); lexical richness 1.4% overall (max 8.8%); ARI 13-25;
20.6% of words are not English dictionary words.
"""

from repro.experiments import table6


def test_bench_table6(benchmark, bench_artifacts):
    milking = bench_artifacts["milking"]

    result = benchmark(table6.run, milking)

    assert len(result.per_network) == 7
    overall = result.overall
    # Tiny unique-comment share: finite dictionaries, heavy repetition.
    assert overall.unique_comment_pct < 15
    assert overall.lexical_richness_pct < 15
    # Roughly a fifth of tokens are non-dictionary junk.
    assert 8 < overall.non_dictionary_pct < 40
    # ARI lands in the paper's teens-to-twenties band.
    assert 8 < overall.ari < 30
    for domain, a in result.per_network.items():
        assert a.unique_comments <= 60, domain  # small fixed dictionary
        assert a.comments > a.unique_comments, domain
    # kdliker provides the most comments/post (47), arabfblike least (2).
    per_post = {d: a.avg_comments_per_post
                for d, a in result.per_network.items()}
    assert max(per_post, key=per_post.get) == "kdliker.com"
    assert min(per_post, key=per_post.get) == "arabfblike.com"
    print()
    print(result.render())
