"""Ablation — three detector families on the same collusion trace.

Head-to-head over identical mixed traffic (collusion likes + organic app
users):

* SynchroTrap temporal clustering — the §6.3 deployment (evaded);
* PCA residual anomaly detection — the §7.3 prior-work baseline
  (evaded by low per-account volume mixed with normal rhythm);
* feature-based ML classifier — the §8 proposal (succeeds on
  infrastructure features).
"""

from conftest import once
from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.collusion.profiles import HTC_SENSE
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.detection.actions import actions_from_request_log
from repro.detection.mlabuse import (
    LogisticAbuseClassifier,
    detect_abusive_tokens,
    extract_token_features,
    train_test_split,
)
from repro.detection.pca_anomaly import (
    PcaAnomalyDetector,
    account_daily_vectors,
)
from repro.detection.synchrotrap import SynchroTrap
from repro.honeypot.account import create_honeypot
from repro.sim.clock import DAY
from repro.workloads.organic import OrganicWorkload

DAYS = 10


def _build():
    world = World(StudyConfig(scale=0.004, seed=99))
    AppCatalog(world.apps, world.rng.stream("catalog"),
               tail_apps=0).build()
    ecosystem = build_ecosystem(world, network_limit=2)
    network = ecosystem.network("official-liker.net")
    honeypot = create_honeypot(world, network)
    organic = OrganicWorkload(world, [HTC_SENSE],
                              likes_per_user_per_day=3.0)
    organic.create_users(80)
    for day in range(DAYS):
        for i in range(4):
            post = world.platform.create_post(honeypot.account_id,
                                              f"d{day}p{i}")
            network.submit_like_request(honeypot.account_id,
                                        post.post_id)
        organic.run_day()
        world.clock.advance(DAY)
    colluding = set(network.token_db) | network.dead_members
    organic_users = {u.account_id for u in organic.users}
    return world, colluding, organic_users


def _recalls(world, colluding, organic_users):
    actions = actions_from_request_log(world.api.log)

    # SynchroTrap.
    st = SynchroTrap(min_cluster_size=10, max_bucket_actors=120)
    st_flagged = st.detect(actions).flagged_accounts
    st_recall = len(st_flagged & colluding) / len(colluding)

    # PCA anomaly detection: train on organic, score everyone.
    vectors = account_daily_vectors(actions, DAYS)
    organic_vectors = [vectors[u] for u in organic_users if u in vectors]
    pca = PcaAnomalyDetector().fit(organic_vectors)
    pca_result = pca.detect(
        {a: v for a, v in vectors.items() if a in colluding})
    pca_recall = len(pca_result.flagged_accounts) / len(colluding)

    # Feature-based classifier (held-out split).
    features = [f for f in extract_token_features(world.api.log)
                if f.user_id in colluding or f.user_id in organic_users]
    labels = [1 if f.user_id in colluding else 0 for f in features]
    train_x, train_y, test_x, test_y = train_test_split(
        features, labels, test_fraction=0.3, seed=4)
    classifier = LogisticAbuseClassifier().fit(train_x, train_y)
    flagged = detect_abusive_tokens(classifier, test_x).flagged_tokens
    positives = {s.token for s, label in zip(test_x, test_y) if label}
    ml_recall = len(flagged & positives) / max(1, len(positives))
    return {"synchrotrap": st_recall, "pca": pca_recall,
            "ml_features": ml_recall}


def test_bench_ablation_detectors(benchmark):
    def run():
        world, colluding, organic_users = _build()
        return _recalls(world, colluding, organic_users)

    recalls = once(benchmark, run)

    print()
    for name, recall in recalls.items():
        print(f"  {name:<12} collusion recall: {recall:6.1%}")

    # Timing- and volume-based detectors barely touch the colluders...
    assert recalls["synchrotrap"] < 0.05
    assert recalls["pca"] < 0.20
    # ...while infrastructure features catch nearly all of them.
    assert recalls["ml_features"] > 0.9
    assert recalls["ml_features"] > 4 * max(recalls["synchrotrap"],
                                            recalls["pca"])
