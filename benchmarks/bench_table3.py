"""Table 3 — usage stats of the applications collusion networks exploit.

Paper: HTC Sense (1M DAU, DAU rank 40, MAU rank 85), Nokia Account
(100K DAU, rank 249; MAU rank 213), Sony Xperia smartphone (10K DAU,
rank 866; MAU rank 1563) — a strict ordering HTC > Nokia > Sony on both
axes, with HTC inside the DAU top ~50.
"""

from repro.experiments import table3


def test_bench_table3(benchmark, bench_artifacts):
    world = bench_artifacts["world"]

    result = benchmark(table3.run, world)

    rows = {r.name: r for r in result.rows}
    htc = rows["HTC Sense"]
    nokia = rows["Nokia Account"]
    sony = rows["Sony Xperia smartphone"]
    # DAU buckets: 1M / 100K / 10K.
    assert htc.dau >= 1_000_000
    assert 100_000 <= nokia.dau < 1_000_000
    assert 10_000 <= sony.dau < 100_000
    # Rank ordering on both axes.
    assert htc.dau_rank < nokia.dau_rank < sony.dau_rank
    assert htc.mau_rank <= nokia.mau_rank < sony.mau_rank
    # HTC Sense is a top-50 app by daily usage.
    assert htc.dau_rank <= 50
    # Nokia/Sony rank in the hundreds-to-thousands, as in the paper.
    assert 100 <= nokia.dau_rank <= 500
    assert 500 <= sony.dau_rank <= 2500
    print()
    print(result.render())
