"""Ablation — the §6.2 invalidation-policy ladder.

Sweeps the invalidation policy (none / half-once / all-once / daily-all)
over identical campaigns and separates the *immediate dip* (the day
after the policy fires) from the *sustained tail*: one-shot
invalidations dip and recover as the pool replenishes and dead tokens
are pruned, while only the daily policy sustains suppression — and even
it never reaches zero.
"""

import pytest

from conftest import once
from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.countermeasures.campaign import (
    CampaignConfig,
    CountermeasureCampaign,
)

DAYS = 16
POLICY_DAY = 8


def _campaign_config(policy: str) -> CampaignConfig:
    """A config whose only active countermeasure is the chosen rung."""
    off = DAYS + 10  # a day that never arrives
    base = dict(
        days=DAYS, posts_per_day=6,
        rate_limit_day=off, ip_limit_day=off, clustering_start_day=off,
        as_block_day=off, hublaa_outage=None, outgoing_per_hour=1.0,
        enable_rate_limit=False, enable_ip_limits=False,
        enable_clustering=False, enable_as_block=False,
        # hublaa.me with bulk serving off: its tight retry budget makes
        # the half-kill dip visible before dead tokens get pruned.
        background_serving=False,
        networks=("hublaa.me",),
    )
    days_by_policy = {
        "none": (off, off, off, off),
        "half-once": (POLICY_DAY, off, off, off),
        "all-once": (off, POLICY_DAY, off, off),
        "daily-all": (off, POLICY_DAY, off, POLICY_DAY + 1),
    }
    half, full, daily_half, daily_all = days_by_policy[policy]
    return CampaignConfig(**base,
                          enable_invalidation=(policy != "none"),
                          invalidate_half_day=half,
                          invalidate_all_day=full,
                          daily_half_start_day=daily_half,
                          daily_all_start_day=daily_all)


def _run_policy(policy: str) -> dict:
    world = World(StudyConfig(scale=0.004, seed=33))
    AppCatalog(world.apps, world.rng.stream("catalog"),
               tail_apps=0).build()
    ecosystem = build_ecosystem(world, network_limit=1)
    campaign = CountermeasureCampaign(world, ecosystem,
                                      _campaign_config(policy))
    results = campaign.run()
    series = results.series["hublaa.me"]
    return {
        "dip": series.window_average(POLICY_DAY + 1, POLICY_DAY + 1),
        "tail": series.window_average(POLICY_DAY + 1, DAYS),
    }


def test_bench_ablation_invalidation(benchmark):
    def sweep():
        return {policy: _run_policy(policy)
                for policy in ("none", "half-once", "all-once",
                               "daily-all")}

    table = once(benchmark, sweep)

    print()
    for policy, row in table.items():
        print(f"  {policy:<10} day-after dip: {row['dip']:7.1f}   "
              f"tail avg: {row['tail']:7.1f}")

    # Immediate dip deepens down the ladder.
    assert table["none"]["dip"] == pytest.approx(350, rel=0.05)
    assert table["half-once"]["dip"] < 0.9 * table["none"]["dip"]
    assert table["all-once"]["dip"] < table["half-once"]["dip"]
    # One-shot policies recover (tail well above their dip); the daily
    # policy alone sustains the suppression...
    assert table["all-once"]["tail"] > 1.5 * table["all-once"]["dip"]
    assert table["daily-all"]["tail"] < 0.5 * table["none"]["tail"]
    assert table["daily-all"]["tail"] < table["all-once"]["tail"]
    # ...but can never fully stop the network (§6.2's conclusion).
    assert table["daily-all"]["tail"] > 0
