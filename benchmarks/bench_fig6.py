"""Figure 6 — posts liked per colluding account.

Paper: account rotation means most colluding accounts like very few of
the honeypot's posts — 76% of hublaa.me accounts and 30% of
official-liker.net accounts like at most one post; official-liker.net's
(smaller-pool) distribution is shifted right of hublaa.me's.
"""

from repro.experiments import fig6


def test_bench_fig6(benchmark, bench_artifacts):
    world = bench_artifacts["world"]
    campaign = bench_artifacts["campaign"]
    ecosystem = bench_artifacts["ecosystem"]

    result = benchmark(fig6.run, world, campaign, ecosystem)

    hublaa = result.histograms["hublaa.me"]
    official = result.histograms["official-liker.net"]
    # Most accounts touch at most a couple of posts.
    assert hublaa.share_at_most(2) > 0.5
    # hublaa.me's bigger pool repeats accounts less than
    # official-liker.net's (76% vs 30% at <=1 post in the paper).
    assert hublaa.share_at_most(1) > official.share_at_most(1)
    # Only a small minority of accounts appear on 10+ posts.
    assert hublaa.shares.get(10, 0.0) < 0.25
    print()
    print(result.render())
