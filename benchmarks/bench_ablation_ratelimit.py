"""Ablation — token rate-limit depth vs pool sampling (§6.1).

Why did the rate-limit countermeasure fail?  Because per-token demand
under pool sampling is tiny.  The sweep measures delivered likes at
several per-token daily budgets for (a) a uniform-sampling network and
(b) a hot-set-reuse network, showing the crossover the paper observed:
only the hot-set network is hurt, and only until it adapts.
"""

from conftest import once
from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.honeypot.account import create_honeypot

LIMITS = (600, 40, 10)
REQUESTS = 25


def _delivered_under_limit(domain: str, limit: int) -> float:
    world = World(StudyConfig(scale=0.004, seed=44))
    AppCatalog(world.apps, world.rng.stream("catalog"),
               tail_apps=0).build()
    ecosystem = build_ecosystem(world, network_limit=2)
    network = ecosystem.network(domain)
    world.policy.token_actions_per_day = limit
    honeypot = create_honeypot(world, network)
    # Background request pressure concentrates hot-set usage.
    network.serve_background_requests(30)
    delivered = 0
    for i in range(REQUESTS):
        post = world.platform.create_post(honeypot.account_id, f"p{i}")
        report = network.submit_like_request(honeypot.account_id,
                                             post.post_id)
        delivered += report.delivered
    return delivered / REQUESTS


def test_bench_ablation_token_rate_limit(benchmark):
    def sweep():
        return {
            domain: {limit: _delivered_under_limit(domain, limit)
                     for limit in LIMITS}
            for domain in ("hublaa.me", "official-liker.net")
        }

    table = once(benchmark, sweep)

    print()
    for domain, by_limit in table.items():
        cells = "  ".join(f"{limit}/day: {avg:6.1f}"
                          for limit, avg in by_limit.items())
        print(f"  {domain:<22} {cells}")

    hublaa = table["hublaa.me"]
    official = table["official-liker.net"]
    # Uniform sampling shrugs off even a 60x reduction...
    assert hublaa[40] > 0.95 * hublaa[600]
    # ...while hot-set reuse collapses under it...
    assert official[40] < 0.8 * official[600]
    # ...and an extreme limit eventually bites everyone (the false-
    # positive-laden regime the paper refused to enter).
    assert official[10] <= official[40]
