"""Figure 5 — the countermeasure campaign timeline.

Paper shape:
* reduced token rate limit: official-liker.net dips (<200 from ~390)
  for about a week, then adapts back; hublaa.me unaffected;
* invalidate-all: sharp drop for both, partial bounce-back;
* daily invalidation: sustained suppression, never a full stop;
* IP limits (day 46): official-liker.net effectively dead immediately;
* AS blocking (day 70): hublaa.me ceases entirely.

The heavy campaign itself is timed once; shape checks run against the
session campaign.
"""

import pytest

from conftest import once
from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.countermeasures.campaign import (
    CampaignConfig,
    CountermeasureCampaign,
)
from repro.experiments import fig5


def test_bench_fig5_campaign(benchmark):
    """Time a compact countermeasure campaign end to end."""
    def run_campaign():
        world = World(StudyConfig(scale=0.005, seed=2))
        AppCatalog(world.apps, world.rng.stream("catalog"),
                   tail_apps=0).build()
        ecosystem = build_ecosystem(world, network_limit=2)
        config = CampaignConfig(
            days=20, posts_per_day=6, rate_limit_day=4,
            invalidate_half_day=7, invalidate_all_day=9,
            daily_half_start_day=10, daily_all_start_day=12,
            ip_limit_day=14, clustering_start_day=16,
            clustering_interval_days=2, as_block_day=18,
            hublaa_outage=None, outgoing_per_hour=2.0)
        return CountermeasureCampaign(world, ecosystem, config).run()

    results = once(benchmark, run_campaign)
    assert results.tokens_invalidated > 0


def test_bench_fig5_shape(benchmark, bench_artifacts):
    campaign = bench_artifacts["campaign"]

    result = benchmark(fig5.run, campaign)

    official = "official-liker.net"
    hublaa = "hublaa.me"
    base_o = result.phase_avg(official, "baseline")
    base_h = result.phase_avg(hublaa, "baseline")
    assert base_o == pytest.approx(390, rel=0.05)
    assert base_h == pytest.approx(350, rel=0.05)

    # Token rate limit: hurts the hot-set network only.
    rl_o = result.phase_avg(official, "reduced token rate limit")
    rl_h = result.phase_avg(hublaa, "reduced token rate limit")
    assert rl_o < 0.85 * base_o
    assert rl_h > 0.95 * base_h

    # Adaptation: by the end of the rate-limit phase official-liker.net
    # has bounced back to its full quota.
    series_o = result.series[official]
    config = campaign.config
    assert max(series_o[config.rate_limit_day:
                        config.invalidate_half_day - 1]) > 0.9 * base_o

    # Invalidation: sharp drop, then sustained suppression under daily
    # invalidation — but never a complete stop.
    daily_o = result.phase_avg(official, "daily full invalidation")
    daily_h = result.phase_avg(hublaa, "daily full invalidation")
    assert daily_o < 0.4 * base_o
    assert 0 < daily_h < 0.6 * base_h

    # IP limits kill official-liker.net, not hublaa.me.
    ip_o = result.phase_avg(official, "IP rate limits")
    ip_h = result.phase_avg(hublaa, "IP rate limits")
    assert ip_o < 0.1 * base_o
    assert ip_h > 0.1 * base_h

    # AS blocking finally stops hublaa.me.
    as_h = result.phase_avg(hublaa, "AS blocking")
    assert as_h == 0.0

    # Clustering achieved essentially nothing (§6.3).
    killed_by_clustering = sum(
        o.tokens_invalidated for _, o in campaign.clustering_outcomes)
    assert killed_by_clustering < 100
    print()
    print(result.render())
