"""Ablation — SynchroTrap sensitivity vs collusion-network evasion (§6.3).

Sweeps the detector's similarity threshold and matched-action floor over
(a) a lockstep botnet and (b) a pool-sampling collusion trace.  The
paper's negative result is robust: no setting both catches the botnet
and touches the collusion accounts without collapsing into
flag-everything territory.
"""

import random

from conftest import once
from repro.detection.actions import Action
from repro.detection.evaluation import evaluate_detection
from repro.detection.synchrotrap import SynchroTrap


def _botnet_trace(n_bots=30, n_targets=15):
    bots = [f"bot{i}" for i in range(n_bots)]
    actions = [Action(bot, f"t{t}", t * 3600 + i)
               for t in range(n_targets)
               for i, bot in enumerate(bots)]
    return bots, actions


def _collusion_trace(pool=8000, n_targets=40, likes=250, seed=5):
    rng = random.Random(seed)
    members = [f"m{i}" for i in range(pool)]
    actions = [Action(member, f"c{t}", t * 3600)
               for t in range(n_targets)
               for member in rng.sample(members, likes)]
    return members, actions


def test_bench_ablation_synchrotrap(benchmark):
    def sweep():
        bots, botnet = _botnet_trace()
        members, collusion = _collusion_trace()
        rows = []
        for threshold in (0.3, 0.5, 0.7):
            for min_matches in (2, 5, 8):
                detector = SynchroTrap(
                    similarity_threshold=threshold,
                    min_matched_actions=min_matches,
                    min_cluster_size=10, max_bucket_actors=120)
                botnet_recall = evaluate_detection(
                    detector.detect(botnet), bots).recall
                collusion_recall = evaluate_detection(
                    detector.detect(collusion), members).recall
                rows.append((threshold, min_matches, botnet_recall,
                             collusion_recall))
        return rows

    rows = once(benchmark, sweep)

    print()
    print("  thresh  min_matches  botnet_recall  collusion_recall")
    for threshold, min_matches, bot_recall, coll_recall in rows:
        print(f"  {threshold:>6}  {min_matches:>11}  {bot_recall:>13.1%}"
              f"  {coll_recall:>16.1%}")

    # Every botnet-catching configuration stays far from catching the
    # collusion network; at the paper-like operating point (0.5 / 5) the
    # collusion recall is essentially zero.
    for threshold, min_matches, bot_recall, coll_recall in rows:
        if bot_recall > 0.9:
            assert coll_recall < 0.15, (threshold, min_matches)
        if threshold >= 0.5 and min_matches >= 5:
            assert coll_recall < 0.01, (threshold, min_matches)
    # And at least one configuration does catch the botnet.
    assert any(bot_recall > 0.9 for _, _, bot_recall, _ in rows)
