"""Ablation — the §6 tradeoff: targeted vs blunt countermeasures.

The paper rejects app suspension and mandatory app secrets because of
collateral damage to legitimate users, and instead builds the targeted
ladder (invalidation, IP limits, AS blocking).  This bench quantifies
the tradeoff on one trace: every option stops the collusion network,
but only the targeted one leaves organic app users untouched.
"""

from conftest import once
from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.collusion.profiles import HTC_SENSE
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.countermeasures.blunt import (
    mandate_app_secret,
    measure_collateral,
    suspend_application,
)
from repro.honeypot.account import create_honeypot
from repro.workloads.organic import OrganicWorkload


def _measure(option: str):
    world = World(StudyConfig(scale=0.002, seed=77))
    AppCatalog(world.apps, world.rng.stream("catalog"),
               tail_apps=0).build()
    ecosystem = build_ecosystem(world, network_limit=1)
    network = ecosystem.network("hublaa.me")
    honeypot = create_honeypot(world, network)
    organic = OrganicWorkload(world, [HTC_SENSE])
    organic.create_users(40)

    baseline_post = world.platform.create_post(honeypot.account_id, "b")
    baseline = network.submit_like_request(honeypot.account_id,
                                           baseline_post.post_id)

    if option == "suspend-app":
        suspend_application(world, HTC_SENSE)
    elif option == "mandate-secret":
        mandate_app_secret(world, HTC_SENSE)
    elif option == "targeted-invalidation":
        for member, token in list(network.token_db.items()):
            world.tokens.invalidate(token, "targeted")
    else:
        raise ValueError(option)

    after_post = world.platform.create_post(honeypot.account_id, "a")
    after = network.submit_like_request(honeypot.account_id,
                                        after_post.post_id)
    return {
        "baseline_likes": baseline.delivered,
        "likes_after": after.delivered,
        "collateral": measure_collateral(world, organic.users),
    }


def test_bench_ablation_blunt_countermeasures(benchmark):
    def sweep():
        return {option: _measure(option)
                for option in ("suspend-app", "mandate-secret",
                               "targeted-invalidation")}

    table = once(benchmark, sweep)

    print()
    for option, row in table.items():
        print(f"  {option:<22} likes {row['baseline_likes']} -> "
              f"{row['likes_after']}; organic users broken: "
              f"{row['collateral']:.0%}")

    for option, row in table.items():
        assert row["baseline_likes"] > 0
        assert row["likes_after"] == 0  # all three stop the abuse
    # But only the targeted option avoids collateral damage (§6).
    assert table["suspend-app"]["collateral"] == 1.0
    assert table["mandate-secret"]["collateral"] == 1.0
    assert table["targeted-invalidation"]["collateral"] == 0.0
