#!/usr/bin/env python3
"""OAuth token leakage, step by step (§2).

Walks both RFC 6749 flows against the simulated authorization server and
shows precisely why the Fig. 2 security settings decide exploitability:

* implicit flow + no app-secret requirement  ->  token abusable;
* implicit flow + app-secret required        ->  leaked token useless;
* client-side flow disabled                  ->  nothing leaks at all.

Usage:  python examples/token_leakage_demo.py
"""

from repro.core.config import StudyConfig
from repro.core.world import World
from repro.graphapi.errors import AppSecretRequiredError
from repro.oauth.apps import AppSecuritySettings
from repro.oauth.errors import FlowDisabledError
from repro.oauth.scopes import PermissionScope
from repro.oauth.server import AuthorizationRequest
from repro.oauth.tokens import TokenLifetime


def demo_app(world, name, client_flow, require_secret):
    return world.apps.register(
        name, f"https://{name.lower().replace(' ', '')}.example/callback",
        security=AppSecuritySettings(
            client_side_flow_enabled=client_flow,
            require_app_secret=require_secret),
        approved_permissions=PermissionScope.full(),
        token_lifetime=TokenLifetime.LONG_TERM,
    )


def attack(world, app, victim, target_post):
    """Play the collusion network: leak a token, then abuse it."""
    request = AuthorizationRequest(
        app_id=app.app_id, redirect_uri=app.redirect_uri,
        response_type="token", scope=app.approved_permissions)
    try:
        result = world.auth_server.authorize(request, victim.account_id)
    except FlowDisabledError:
        return "SAFE: client-side flow disabled -- no token ever reaches " \
               "the browser"
    token = result.token_from_fragment()
    print(f"    token leaked via redirect fragment: {token[:18]}…")
    try:
        world.api.like_post(token, target_post.post_id,
                            source_ip="10.60.0.99")
    except AppSecretRequiredError:
        return ("SAFE: Graph API demands appsecret_proof -- the bare "
                "token is useless to the attacker")
    return "EXPLOITED: fake like placed with the victim's leaked token"


def main() -> None:
    world = World(StudyConfig(scale=0.01, seed=1))
    victim = world.platform.register_account("Victim User")
    author = world.platform.register_account("Target Author")
    scenarios = [
        ("Susceptible app (implicit flow, no secret required)",
         demo_app(world, "Weak Player", True, False)),
        ("Hardened app (implicit flow, appsecret_proof required)",
         demo_app(world, "Proofed Player", True, True)),
        ("Server-side-only app (client flow disabled)",
         demo_app(world, "Server Player", False, False)),
    ]
    for title, app in scenarios:
        print(title)
        post = world.platform.create_post(author.account_id, "a post")
        print(f"    -> {attack(world, app, victim, post)}\n")

    # The server-side flow never exposes the token: the code is
    # exchanged app-server-to-platform, authenticated by the secret.
    app = scenarios[2][1]
    result = world.auth_server.authorize(
        AuthorizationRequest(app.app_id, app.redirect_uri, "code",
                             app.approved_permissions),
        victim.account_id)
    print("Server-side flow redirect carries only a single-use code:")
    print(f"    {result.redirect_url}")
    token = world.auth_server.exchange_code(
        app.app_id, app.redirect_uri, result.authorization_code,
        app.secret)
    print(f"    exchanged (with app secret) for token {token.token[:18]}… "
          f"on the app server, invisible to the browser")


if __name__ == "__main__":
    main()
