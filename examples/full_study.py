#!/usr/bin/env python3
"""Reproduce the entire paper: every table, every figure, one command.

Runs build -> milk -> countermeasures -> report and prints the full
reproduction of Tables 1-6 and Figures 4-8.  At --scale 1.0 the milking
campaign reproduces the paper's absolute membership numbers (requires
several GB of RAM and a long coffee); the default 0.02 keeps the run to
a couple of minutes while preserving every result's shape.

Usage:  python examples/full_study.py [--scale 0.02] [--out report.txt]
"""

import argparse
import sys
import time

from repro import Study, StudyConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--milking-days", type=int, default=60)
    parser.add_argument("--campaign-days", type=int, default=75)
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    args = parser.parse_args()

    config = StudyConfig(scale=args.scale, seed=args.seed,
                         milking_days=args.milking_days,
                         campaign_days=args.campaign_days)
    study = Study(config)

    t0 = time.time()
    print(f"[1/4] building world (scale={args.scale:g}) ...",
          file=sys.stderr)
    study.build()
    print(f"[2/4] milking {len(study.ecosystem.networks)} collusion "
          f"networks for {args.milking_days} days ...", file=sys.stderr)
    study.milk()
    print(f"[3/4] running the {args.campaign_days}-day countermeasure "
          f"campaign ...", file=sys.stderr)
    study.run_countermeasures()
    print("[4/4] generating tables and figures ...", file=sys.stderr)
    report = study.report()
    text = report.render()
    print(f"done in {time.time() - t0:.1f}s\n", file=sys.stderr)

    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n(report written to {args.out})", file=sys.stderr)


if __name__ == "__main__":
    main()
