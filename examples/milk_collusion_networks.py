#!/usr/bin/env python3
"""Milk the collusion networks with honeypots (§4 / Table 4 / Fig. 4).

Deploys one honeypot per network, posts status updates for a simulated
month, requests likes and comments, and prints the Table 4 statistics,
the Fig. 4 diminishing-returns curves and the Table 6 lexical analysis.

Usage:  python examples/milk_collusion_networks.py [--scale 0.01] [--days 30]
"""

import argparse

from repro import Study, StudyConfig
from repro.experiments import fig4, table4, table6


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.01,
                        help="fraction of paper scale (1.0 = paper)")
    parser.add_argument("--days", type=int, default=30,
                        help="milking campaign length in days")
    parser.add_argument("--seed", type=int, default=2017)
    args = parser.parse_args()

    study = Study(StudyConfig(scale=args.scale, seed=args.seed,
                              milking_days=args.days))
    study.build()
    results = study.milk()

    print(table4.run(results, scale=args.scale).render())
    print()
    print(fig4.run(results).render())
    print()
    print(table6.run(results).render())
    print()
    print(f"CAPTCHAs solved while milking: {results.captcha.solved:,} "
          f"(${results.captcha.total_cost_usd:,.2f})")
    multi = results.ledger.multi_network_accounts()
    print(f"Accounts observed in more than one network: {len(multi):,}")


if __name__ == "__main__":
    main()
