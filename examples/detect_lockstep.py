#!/usr/bin/env python3
"""Why temporal clustering misses collusion networks (§6.3).

Feeds two abuse traces to the same SynchroTrap detector:

* a naive lockstep botnet — the same 40 accounts like every target
  within minutes of each other; and
* a collusion-network trace — every request served by a fresh random
  sample from a large token pool.

The botnet is flagged wholesale; the collusion accounts evade.

Usage:  python examples/detect_lockstep.py
"""

import random

from repro.detection.actions import Action
from repro.detection.evaluation import evaluate_detection
from repro.detection.lockstep import LockstepDetector
from repro.detection.synchrotrap import SynchroTrap


def botnet_trace(n_bots=40, n_targets=25):
    bots = [f"bot{i}" for i in range(n_bots)]
    actions = []
    for t in range(n_targets):
        base = t * 7200
        for i, bot in enumerate(bots):
            actions.append(Action(bot, f"victim-post-{t}", base + i * 3))
    return bots, actions


def collusion_trace(pool=20_000, n_targets=25, likes_per_target=350,
                    seed=7):
    rng = random.Random(seed)
    members = [f"member{i}" for i in range(pool)]
    actions = []
    for t in range(n_targets):
        base = t * 7200
        for member in rng.sample(members, likes_per_target):
            actions.append(Action(member, f"customer-post-{t}", base))
    return members, actions


def report(name, detector, truth, actions):
    result = detector.detect(actions)
    metrics = evaluate_detection(result, truth)
    print(f"  {name:<24} flagged {result.flagged_count:>6,} accounts   "
          f"recall {metrics.recall:6.1%}   precision {metrics.precision:6.1%}")


def main() -> None:
    synchrotrap = SynchroTrap(min_cluster_size=10)
    lockstep = LockstepDetector(min_common_targets=5, min_cluster_size=10)

    bots, botnet_actions = botnet_trace()
    members, collusion_actions = collusion_trace()

    print("Lockstep botnet (same 40 accounts on every target):")
    report("SynchroTrap", synchrotrap, bots, botnet_actions)
    report("Lockstep baseline", lockstep, bots, botnet_actions)
    print()
    print("Collusion network (random samples from a 20,000-token pool):")
    report("SynchroTrap", synchrotrap, members, collusion_actions)
    report("Lockstep baseline", lockstep, members, collusion_actions)
    print()
    print("Same detector, same thresholds: pool sampling plus per-token "
          "spreading keeps every pairwise similarity below threshold — "
          "the paper's §6.3 negative result.")


if __name__ == "__main__":
    main()
