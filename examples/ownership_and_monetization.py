#!/usr/bin/env python3
"""Follow the money and the operators (§5).

Builds the ecosystem and walks the paper's §5 analyses: monetization
(ad networks behind redirect domains, anti-adblock, premium plans) and
ownership (WHOIS privacy, registrant countries, the operators' inflated
social presence fed by member tokens).

Usage:  python examples/ownership_and_monetization.py
"""

from repro import Study, StudyConfig
from repro.collusion.economics import (
    demonetization_impact,
    estimate_economics,
)
from repro.collusion.ownership import ownership_report


def main() -> None:
    study = Study(StudyConfig(scale=0.01, seed=2017, network_limit=6))
    study.build()
    world = study.world
    ecosystem = study.ecosystem

    # --- §5.1 monetization -------------------------------------------
    print("Monetization (§5.1)")
    for domain, network in list(ecosystem.networks.items())[:4]:
        scan = world.ad_scanner.scan(domain)
        plans = network.monetization.premium_plans
        nets = ", ".join(sorted(n.value for n in scan.networks_seen))
        print(f"  {domain}:")
        print(f"    ad networks: {nets} "
              f"(reputable ones only after a redirect: "
              f"{scan.uses_redirect_monetization}; anti-adblock: "
              f"{scan.anti_adblock_detected})")
        ladder = " / ".join(f"{p.name} ${p.monthly_price_usd:.2f} -> "
                            f"{p.likes_per_request} likes"
                            for p in plans)
        print(f"    premium ladder: {ladder}")

    # A member upgrades and immediately gets a bigger burst.
    network = ecosystem.network("mg-likers.com")
    member = network.join()
    free_post = world.platform.create_post(member, "free tier post")
    network.submit_like_request(member, free_post.post_id)
    network.monetization.subscribe(member, "ultimate")
    paid_post = world.platform.create_post(member, "ultimate tier post")
    network.submit_like_request(member, paid_post.post_id)
    free_likes = world.platform.get_post(free_post.post_id).like_count
    paid_likes = world.platform.get_post(paid_post.post_id).like_count
    print(f"\n  free plan delivered {free_likes} likes; 'ultimate' "
          f"($29.99/mo) delivered {paid_likes}")

    # --- §5.2 ownership ----------------------------------------------
    print()
    # Let the networks spend some member tokens promoting their owners.
    for domain, net in ecosystem.networks.items():
        for m in list(net.token_db)[:30]:
            net.use_member_token_for_background(m, 5)
    print(ownership_report(world, ecosystem).render())

    # --- §8: the money, and the demonetization lever ------------------
    print("\nEconomics (monthly, modeled):")
    for domain in ("hublaa.me", "official-liker.net", "monkeyliker.com"):
        network = ecosystem.network(domain)
        pnl = estimate_economics(world, network)
        impact = demonetization_impact(world, network)
        print(f"  {domain:<22} ads ${pnl.ad_revenue_monthly:>9,.0f}  "
              f"premium ${pnl.premium_revenue_monthly:>7,.0f}  "
              f"costs ${pnl.cost_monthly:>7,.0f}  "
              f"profit ${pnl.profit_monthly:>9,.0f}")
        print(f"  {'':<22} if ad networks blacklist the redirect "
              f"domains: profit ${impact['profit_after']:>9,.0f}")


if __name__ == "__main__":
    main()
