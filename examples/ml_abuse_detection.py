#!/usr/bin/env python3
"""The paper's §8 future work, implemented: ML token-abuse detection.

Generates a mixed Graph API trace — collusion-network likes plus
legitimate app users — then compares the temporal-clustering detector
the paper evaluated (and found evadable, §6.3) against a feature-based
classifier keyed on infrastructure signals.

Usage:  python examples/ml_abuse_detection.py
"""

from repro import Study, StudyConfig
from repro.collusion.profiles import HTC_SENSE
from repro.detection import (
    LogisticAbuseClassifier,
    SynchroTrap,
    actions_from_request_log,
    detect_abusive_tokens,
    extract_token_features,
)
from repro.detection.mlabuse import FEATURE_NAMES, train_test_split
from repro.honeypot.account import create_honeypot
from repro.sim.clock import DAY
from repro.workloads.organic import OrganicWorkload


def main() -> None:
    study = Study(StudyConfig(scale=0.005, seed=2017, network_limit=2))
    study.build()
    world = study.world
    network = study.ecosystem.network("official-liker.net")
    honeypot = create_honeypot(world, network)
    organic = OrganicWorkload(world, [HTC_SENSE],
                              likes_per_user_per_day=3.0)
    organic.create_users(100)

    print("Generating one simulated week of mixed traffic ...")
    for day in range(7):
        for i in range(5):
            post = world.platform.create_post(honeypot.account_id,
                                              f"day{day} post{i}")
            network.submit_like_request(honeypot.account_id,
                                        post.post_id)
        organic.run_day()
        world.clock.advance(DAY)

    colluding = set(network.token_db) | network.dead_members
    organic_users = {u.account_id for u in organic.users}

    # Temporal clustering (the §6.3 result).
    st = SynchroTrap(min_cluster_size=10, max_bucket_actors=120)
    st_result = st.detect(actions_from_request_log(world.api.log))
    caught = len(st_result.flagged_accounts & colluding)
    print(f"\nSynchroTrap: flagged {caught:,} of {len(colluding):,} "
          f"colluding accounts ({caught / len(colluding):.1%})")

    # Feature-based classifier (the §8 proposal).
    features = [f for f in extract_token_features(world.api.log)
                if f.user_id in colluding or f.user_id in organic_users]
    labels = [1 if f.user_id in colluding else 0 for f in features]
    train_x, train_y, test_x, test_y = train_test_split(
        features, labels, test_fraction=0.3, seed=7)
    classifier = LogisticAbuseClassifier().fit(train_x, train_y)
    result = detect_abusive_tokens(classifier, test_x)
    positives = {s.token for s, label in zip(test_x, test_y) if label}
    negatives = {s.token for s, label in zip(test_x, test_y) if not label}
    recall = len(result.flagged_tokens & positives) / len(positives)
    fpr = len(result.flagged_tokens & negatives) / max(1, len(negatives))
    print(f"Feature classifier: recall {recall:.1%}, false-positive "
          f"rate on organic users {fpr:.1%}")

    print("\nLearned feature weights (standardized):")
    for name, weight in zip(FEATURE_NAMES, classifier.weights):
        print(f"  {name:<24} {weight:+.2f}")
    print("\nIP co-tenancy and datacenter origin do the separating — "
          "timing-based evasion does not help against infrastructure "
          "features.")


if __name__ == "__main__":
    main()
