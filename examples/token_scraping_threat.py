#!/usr/bin/env python3
"""Beyond fake likes: what else a leaked-token database enables (§8).

The paper warns that leaked tokens also expose personal data and the
social graph ("attackers can steal personal information of collusion
network members as well as exploit their social graph to propagate
malware").  This example plays that attacker against the simulation,
then shows the defender's view: the scraping spike is plainly visible in
the Graph API request log and dies with token invalidation.

Usage:  python examples/token_scraping_threat.py
"""

from repro import Study, StudyConfig
from repro.collusion.scraping import DataHarvester
from repro.countermeasures.invalidation import TokenInvalidator
from repro.honeypot.ledger import MilkedTokenLedger


def main() -> None:
    study = Study(StudyConfig(scale=0.01, seed=2017, network_limit=2))
    study.build()
    world = study.world
    network = study.ecosystem.network("hublaa.me")
    print(f"{network.domain}'s token DB holds "
          f"{len(network.token_db):,} live member tokens.\n")

    # The attacker: read profiles with the members' own tokens.
    harvester = DataHarvester(world, source_ip="10.62.66.6")
    report = harvester.harvest(network.token_db, limit=400)
    print(f"Scraped {report.accounts_exposed:,} member profiles "
          f"({report.tokens_dead} tokens were already dead).")
    top = sorted(report.countries.items(), key=lambda kv: -kv[1])[:4]
    print("Exposed users by country: "
          + ", ".join(f"{c}: {n}" for c, n in top))
    print(f"Second-hop reach via friend edges: "
          f"{report.reachable_via_friend_graph:,} accounts\n")

    # The defender: the scrape is one IP hammering GET_PROFILE.
    records = world.api.log.for_ip("10.62.66.6")
    print(f"Defender's view: {len(records):,} profile reads from a "
          f"single IP in the request log.")

    # Invalidate every token the attacker demonstrated, then re-run.
    ledger = MilkedTokenLedger()
    day = world.clock.day()
    for profile in report.profiles:
        ledger.observe(profile.account_id, network.domain,
                       world.clock.now(), day,
                       app_id=network.profile.app_id)
    invalidator = TokenInvalidator(world.tokens, ledger)
    killed = invalidator.invalidate_all_observed(day)
    print(f"Invalidated {killed:,} abused tokens.")
    retry = harvester.harvest(
        {p.account_id: network.token_db[p.account_id]
         for p in report.profiles if p.account_id in network.token_db})
    print(f"Attacker retry: {retry.accounts_exposed} profiles readable "
          f"({retry.tokens_dead} dead tokens).")


if __name__ == "__main__":
    main()
