#!/usr/bin/env python3
"""Quickstart: build the world, scan apps, milk one collusion network.

Runs in a few seconds at a tiny scale and shows the three core moves of
the paper: (1) find susceptible applications, (2) harvest an OAuth token
through a susceptible app's implicit flow, (3) buy likes from a collusion
network and watch them arrive.

Usage:  python examples/quickstart.py
"""

from repro import Study, StudyConfig
from repro.experiments import table1


def main() -> None:
    study = Study(StudyConfig(scale=0.01, seed=2017, network_limit=4))
    artifacts = study.build()
    world = artifacts.world

    # 1. Scan the top-100 applications (§2.2 / Table 1).
    scan = table1.run(world, artifacts.catalog)
    print(scan.render())
    print()

    # 2. Join a collusion network: the OAuth implicit flow hands the
    #    browser an access token in the redirect fragment; the user
    #    pastes it into the network's site (§3).
    hublaa = artifacts.ecosystem.network("hublaa.me")
    victim = world.platform.register_account("Quickstart User")
    member = hublaa.join(victim.account_id)
    token = hublaa.token_db[member]
    print(f"Joined {hublaa.domain} as {member}; "
          f"leaked token {token[:14]}… now sits in the network's DB "
          f"({hublaa.member_count():,} members).")

    # 3. Request likes on a post and watch the burst arrive.
    post = world.platform.create_post(member, "my first status update")
    report = hublaa.submit_like_request(member, post.post_id)
    fetched = world.platform.get_post(post.post_id)
    print(f"Requested likes: received {report.delivered} from "
          f"{len(set(fetched.liker_ids()))} distinct colluding accounts "
          f"in under a minute.")
    sample = fetched.likes[0]
    print(f"Every like is attributed to the exploited app "
          f"({world.apps.get(sample.via_app_id).name}) and a network "
          f"server IP ({sample.source_ip}).")


if __name__ == "__main__":
    main()
