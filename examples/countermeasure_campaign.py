#!/usr/bin/env python3
"""Run the §6 countermeasure campaign (Fig. 5-8).

Builds the ecosystem, then escalates through the paper's intervention
ladder against hublaa.me and official-liker.net, printing the daily
avg-likes series, per-phase summaries and the source-IP/AS analyses.

Usage:  python examples/countermeasure_campaign.py [--scale 0.02] [--days 75]
"""

import argparse

from repro import Study, StudyConfig
from repro.countermeasures.campaign import CampaignConfig
from repro.experiments import fig5, fig6, fig7, fig8


def sparkline(values, width=75):
    """Render a series as a coarse text sparkline."""
    blocks = " ▁▂▃▄▅▆▇█"
    if not values:
        return ""
    peak = max(values) or 1.0
    step = max(1, len(values) // width)
    cells = [values[i] for i in range(0, len(values), step)]
    return "".join(blocks[min(8, int(9 * v / (peak * 1.01)))]
                   for v in cells)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--days", type=int, default=75)
    parser.add_argument("--seed", type=int, default=2017)
    args = parser.parse_args()

    study = Study(StudyConfig(scale=args.scale, seed=args.seed,
                              network_limit=2))
    study.build()
    campaign = study.run_countermeasures(CampaignConfig(days=args.days))

    result = fig5.run(campaign)
    for domain, series in result.series.items():
        print(f"{domain:<22} {sparkline(series)}")
    print()
    print(result.render())
    print()
    world = study.world
    print(fig6.run(world, campaign, ecosystem=study.ecosystem).render())
    print()
    print(fig7.run(world, campaign).render())
    print()
    print(fig8.run(world, campaign).render())


if __name__ == "__main__":
    main()
