"""Property/fuzz tests for the journal frame codec and frame scanner.

``encode_row``/``decode_row`` must round-trip any request-log row of
JSON-safe scalars — including strings full of newlines, quotes, NULs
and non-ASCII — and the WAL frame scanner must treat every possible
truncation or garbage tail as a clean stop, never an exception
(that is exactly the torn-tail recovery contract).
"""

import os
import tempfile

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.journal.codec import ROW_TAG, decode_row, encode_row
from repro.journal.wal import _DIGEST_SIZE, _LEN, EventJournal, _chain

# Anything the request log exports: JSON-safe scalars.  Text excludes
# lone surrogates (not encodable to UTF-8, which the log never
# produces) but deliberately includes newlines, quotes and NULs.
_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(alphabet=st.characters(exclude_categories=("Cs",)),
            max_size=40),
)
_row = st.tuples(*([_scalar] * 3)) | st.tuples(_scalar) | \
    st.lists(_scalar, min_size=0, max_size=8).map(tuple)


@given(_row)
@example(("line\nbreak", "cr\r\nlf", 1))
@example(("quote'\"triple\"\"\"", None, -0.0))
@example(("nul\x00byte", "\x1b[31mansi", True))
@settings(max_examples=300)
def test_encode_decode_round_trip(row):
    payload = encode_row(row)
    assert payload.startswith(ROW_TAG)
    assert b"\n" not in payload or decode_row(payload) == row
    assert decode_row(payload) == row


@given(st.binary(min_size=1, max_size=64))
def test_decode_rejects_garbage_instead_of_guessing(blob):
    """Arbitrary bytes after the tag either literal-eval back to a
    value or raise a clean parse/decode error — never something
    outside the ValueError/SyntaxError/UnicodeDecodeError family."""
    try:
        decode_row(ROW_TAG + blob)
    except (ValueError, SyntaxError, UnicodeDecodeError,
            MemoryError, RecursionError):
        pass


def test_decode_rejects_non_utf8_payload():
    import pytest

    with pytest.raises(UnicodeDecodeError):
        decode_row(ROW_TAG + b"\xff\xfe\x00broken")


def _write_frames(path, payloads, genesis):
    chain = genesis
    with open(path, "wb") as handle:
        for payload in payloads:
            chain = _chain(chain, payload)
            handle.write(_LEN.pack(len(payload)) + payload + chain)


@given(payloads=st.lists(st.binary(max_size=48), min_size=0,
                         max_size=5),
       drop=st.integers(min_value=0, max_value=200))
@settings(max_examples=150)
def test_truncated_frame_stream_yields_verified_prefix(payloads, drop):
    """Chopping any number of bytes off the tail loses at most the
    frames the chop touched; everything before scans verbatim and the
    scanner never raises."""
    genesis = b"\x00" * _DIGEST_SIZE
    fd, path = tempfile.mkstemp(suffix=".wal")
    os.close(fd)
    try:
        _write_frames(path, payloads, genesis)
        full = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(0, full - drop))
        scanned = [payload for _offset, payload, _chain
                   in EventJournal._scan_frames(path, genesis)]
    finally:
        os.unlink(path)
    survivors = len(payloads) if drop == 0 else 0
    if drop:
        # Count how many whole frames fit in the truncated size.
        remaining = full - drop
        offset = 0
        for payload in payloads:
            end = offset + _LEN.size + len(payload) + _DIGEST_SIZE
            if end > remaining:
                break
            survivors += 1
            offset = end
    assert scanned == list(payloads)[:survivors]


@given(length=st.integers(min_value=0, max_value=2 ** 32 - 1),
       tail=st.binary(max_size=32))
@settings(max_examples=150)
def test_length_prefix_never_reads_past_the_file(length, tail):
    """A hostile length prefix (larger than the file, larger than the
    payload cap, or zero) stops the scan instead of raising."""
    genesis = b"\x00" * _DIGEST_SIZE
    fd, path = tempfile.mkstemp(suffix=".wal")
    os.close(fd)
    try:
        with open(path, "wb") as handle:
            handle.write(_LEN.pack(length) + tail)
        scanned = list(EventJournal._scan_frames(path, genesis))
    finally:
        os.unlink(path)
    for _offset, payload, _chain_after in scanned:
        assert len(payload) == length


@given(payloads=st.lists(st.binary(max_size=32), min_size=1,
                         max_size=4),
       flip=st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=150)
def test_bitflip_breaks_the_chain_cleanly(payloads, flip):
    """Corrupting any byte invalidates that frame's chain digest (and
    everything after), but never produces an exception or a frame the
    chain did not verify."""
    genesis = b"\x00" * _DIGEST_SIZE
    fd, path = tempfile.mkstemp(suffix=".wal")
    os.close(fd)
    try:
        _write_frames(path, payloads, genesis)
        size = os.path.getsize(path)
        position = flip % size
        with open(path, "r+b") as handle:
            handle.seek(position)
            byte = handle.read(1)
            handle.seek(position)
            handle.write(bytes([byte[0] ^ 0xFF]))
        scanned = [payload for _offset, payload, _chain
                   in EventJournal._scan_frames(path, genesis)]
    finally:
        os.unlink(path)
    # The scan is a verified prefix of the original payload list.
    assert scanned == list(payloads)[:len(scanned)]
