"""Shared fixtures.

Unit tests get cheap, empty worlds; integration tests share a
session-scoped mini study (built once) to keep the suite fast.
"""

from __future__ import annotations

import pytest

from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World


@pytest.fixture
def world() -> World:
    """A fresh, empty world (no apps, no networks)."""
    return World(StudyConfig(scale=0.01, seed=42))


@pytest.fixture
def catalog_world():
    """A world with the full top-100 app catalog registered."""
    w = World(StudyConfig(scale=0.01, seed=42))
    catalog = AppCatalog(w.apps, w.rng.stream("catalog"))
    catalog.build()
    return w, catalog


@pytest.fixture(scope="session")
def mini_study():
    """A built world + small ecosystem, shared across integration tests.

    Uses a tiny scale and only the four largest networks so the session
    fixture builds in a couple of seconds.
    """
    w = World(StudyConfig(scale=0.005, seed=7, milking_days=10))
    catalog = AppCatalog(w.apps, w.rng.stream("catalog"))
    catalog.build()
    ecosystem = build_ecosystem(w, network_limit=4)
    return w, catalog, ecosystem
