"""Regression: the real tree is clean under the shipped baseline.

This is the live gate behind the determinism contract: any new
wall-clock read, global-random call, unordered iteration, entropy leak
or broad swallow in ``src/repro`` fails this test (and the CI ``lint``
job) unless it is pragma-annotated or deliberately baselined.
"""

from pathlib import Path

import repro
from repro.lint import LintEngine
from repro.lint.baseline import Baseline
from repro.lint.findings import Severity

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "tools" / "reprolint_baseline.json"
PACKAGE = Path(repro.__file__).resolve().parent


def test_shipped_baseline_exists_and_loads():
    baseline = Baseline.load(BASELINE)
    # The tree was fully fixed in the PR that introduced reprolint; the
    # baseline should only ever shrink from empty.
    assert len(baseline) == 0


def test_real_tree_is_clean_under_shipped_baseline():
    engine = LintEngine()
    report = engine.run([PACKAGE], baseline=Baseline.load(BASELINE))
    failing = report.failing(Severity.WARNING)
    details = "\n".join(f.render() for f in failing)
    assert not failing, f"reprolint regressions:\n{details}"
    assert report.exit_code(Severity.WARNING) == 0
    # Sanity: the walk really covered the tree.
    assert report.files_scanned > 100


def test_allowlisted_shells_are_the_only_wall_clock_users():
    """The perf shell exists and would be flagged without the allowlist
    — proving the allowlist is load-bearing, not dead config."""
    engine = LintEngine(allowlist={})
    report = engine.run([PACKAGE])
    wall_clock_paths = {f.path for f in report.findings
                        if f.rule == "RL001"}
    # bench.py's perf_counter calls live inside its subprocess-script
    # template string, so the only AST-level wall-clock user is the
    # StageTimer.
    assert wall_clock_paths == {"repro/perf/instrumentation.py"}
    environ_paths = {f.path for f in report.findings
                     if f.rule == "RL004"}
    assert environ_paths == {"repro/perf/bench.py"}
