"""Regression: the real tree is clean under the shipped baseline.

This is the live gate behind the determinism contract: any new
wall-clock read, global-random call, unordered iteration, entropy leak
or broad swallow in ``src/repro`` fails this test (and the CI ``lint``
job) unless it is pragma-annotated or deliberately baselined.
"""

from pathlib import Path

import repro
from repro.lint import LintEngine
from repro.lint.baseline import Baseline
from repro.lint.findings import Severity

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "tools" / "reprolint_baseline.json"
PACKAGE = Path(repro.__file__).resolve().parent


def test_shipped_baseline_exists_and_loads():
    baseline = Baseline.load(BASELINE)
    # The tree was fully fixed in the PR that introduced reprolint; the
    # baseline should only ever shrink from empty.
    assert len(baseline) == 0


def test_real_tree_is_clean_under_shipped_baseline():
    engine = LintEngine()
    report = engine.run([PACKAGE], baseline=Baseline.load(BASELINE))
    failing = report.failing(Severity.WARNING)
    details = "\n".join(f.render() for f in failing)
    assert not failing, f"reprolint regressions:\n{details}"
    assert report.exit_code(Severity.WARNING) == 0
    # Sanity: the walk really covered the tree.
    assert report.files_scanned > 100


def test_default_rules_cover_all_shipped_families():
    from repro.lint import default_rules
    from repro.lint.rules import ProjectRule

    rules = default_rules()
    ids = {rule.rule_id for rule in rules}
    assert {"RL001", "RL002", "RL003", "RL004", "RL005",
            "RL101", "RL201", "RL202", "RL203",
            "RL301", "RL302",
            "RL401", "RL402", "RL403",
            "RL601", "RL602", "RL603", "RL604"} <= ids
    assert any(isinstance(rule, ProjectRule) for rule in rules)


def test_rl301_pragmas_are_load_bearing():
    """Stripping the justification pragmas resurfaces the direct
    platform writes — the annotations are doing real work."""
    import re

    from repro.lint import lint_source

    source = (PACKAGE / "collusion" / "ownership.py").read_text(
        encoding="utf-8")
    stripped = re.sub(r"#\s*reprolint:\s*disable[^\n]*", "", source)
    findings = lint_source(stripped, path="repro/collusion/ownership.py")
    assert [f.rule for f in findings] == ["RL301"] * 3
    assert lint_source(source,
                       path="repro/collusion/ownership.py") == []


def test_token_redaction_in_api_is_load_bearing():
    """Undoing the redact_token() routing in graphapi/api.py brings the
    RL102 token-leak findings straight back."""
    from repro.lint import lint_source

    source = (PACKAGE / "graphapi" / "api.py").read_text(
        encoding="utf-8")
    assert source.count("redact_token(") >= 4
    unredacted = source.replace("redact_token(token.token)",
                                "token.token")
    unredacted = unredacted.replace("redact_token(access_token)",
                                    "access_token")
    findings = lint_source(unredacted, path="repro/graphapi/api.py")
    assert {f.rule for f in findings} == {"RL102"}
    assert len(findings) == 4
    assert lint_source(source, path="repro/graphapi/api.py") == []


def test_allowlisted_shells_are_the_only_wall_clock_users():
    """The perf shell exists and would be flagged without the allowlist
    — proving the allowlist is load-bearing, not dead config."""
    engine = LintEngine(allowlist={})
    report = engine.run([PACKAGE])
    wall_clock_paths = {f.path for f in report.findings
                        if f.rule == "RL001"}
    # bench.py's perf_counter calls live inside its subprocess-script
    # template string, so the only AST-level wall-clock users are the
    # StageTimer and the span tracer's wall-time axis.
    assert wall_clock_paths == {"repro/perf/instrumentation.py",
                                "repro/telemetry/tracing.py"}
    environ_paths = {f.path for f in report.findings
                     if f.rule == "RL004"}
    assert environ_paths == {"repro/perf/bench.py"}
