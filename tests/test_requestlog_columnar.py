"""Tests for the columnar RequestLog (views, selectors, interning)."""

from __future__ import annotations

import pytest

from repro.graphapi.log import RecordsView, RequestLog, RequestRecord
from repro.graphapi.request import ApiAction


def _fill(log: RequestLog) -> None:
    log.append_row(10, ApiAction.LIKE_POST, "tokA", "u1", "app1", "p1",
                   "1.1.1.1", 64500, "ok")
    log.append_row(20, ApiAction.LIKE_POST, "tokB", "u2", "app1", "p2",
                   "2.2.2.2", None, "rate_limited")
    log.append_row(20, ApiAction.CREATE_POST, "tokA", "u1", "app2", None,
                   "1.1.1.1", 64500, "ok")
    log.append_row(30, ApiAction.LIKE_PAGE, "tokC", "u3", "app2", "pg1",
                   None, None, "ok")
    log.append_row(40, ApiAction.LIKE_POST, "tokA", "u1", "app1", "p3",
                   "1.1.1.1", 64500, "ok")


@pytest.fixture
def log() -> RequestLog:
    log = RequestLog()
    _fill(log)
    return log


def test_record_roundtrip(log):
    record = log.all()[0]
    assert record == RequestRecord(
        timestamp=10, action=ApiAction.LIKE_POST, token="tokA",
        user_id="u1", app_id="app1", target_id="p1",
        source_ip="1.1.1.1", asn=64500, outcome="ok")


def test_append_record_compatibility(log):
    clone = RequestLog()
    for record in log.all():
        clone.append(record)
    assert list(clone.all()) == list(log.all())


def test_views_are_lazy_and_sliceable(log):
    view = log.all()
    assert isinstance(view, RecordsView)
    assert len(view) == 5
    assert [r.timestamp for r in view[1:3]] == [20, 20]
    assert view[-1].token == "tokA"


def test_for_ip_view_is_live_not_a_copy(log):
    view = log.for_ip("1.1.1.1")
    assert len(view) == 3
    log.append_row(50, ApiAction.LIKE_POST, "tokD", "u4", "app1", "p9",
                   "1.1.1.1", 64500, "ok")
    # The view reads through to the log's index: no defensive copy.
    assert len(view) == 4
    assert view[-1].token == "tokD"


def test_for_app_selects_rows(log):
    assert [r.token for r in log.for_app("app2")] == ["tokA", "tokC"]


def test_successes_exclude_failures(log):
    assert all(r.outcome == "ok" for r in log.successes())
    assert len(log.successes()) == 4


def test_like_requests_successful_only_default(log):
    likes = log.like_requests()
    assert [r.timestamp for r in likes] == [10, 30, 40]
    everything = log.like_requests(successful_only=False)
    assert [r.timestamp for r in everything] == [10, 20, 30, 40]


def test_like_requests_since_is_inclusive(log):
    assert [r.timestamp for r in log.like_requests(since=30)] == [30, 40]
    assert [r.timestamp for r in log.like_requests(since=31)] == [40]


def test_like_columns_matches_records(log):
    timestamps, tokens, actions = log.like_columns(
        ("timestamp", "token", "action"))
    records = list(log.like_requests())
    assert timestamps == [r.timestamp for r in records]
    assert tokens == [r.token for r in records]
    assert actions == [r.action for r in records]
    assert all(isinstance(a, ApiAction) for a in actions)


def test_like_columns_since_and_failures(log):
    (ips,) = log.like_columns(("source_ip",), since=20,
                              successful_only=False)
    assert ips == ["2.2.2.2", None, "1.1.1.1"]


def test_like_columns_rejects_unknown_field(log):
    with pytest.raises(KeyError):
        log.like_columns(("timestamp", "nope"))


def test_filter_predicate(log):
    rate_limited = log.filter(lambda r: r.outcome == "rate_limited")
    assert [r.token for r in rate_limited] == ["tokB"]
