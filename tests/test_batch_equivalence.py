"""Wave delivery must be byte-identical to the scalar path.

The collusion networks deliver likes through planned delivery waves
(``GraphApi.delivery_wave``) with memoized per-(key, wave-timestamp)
rate-limit transitions; a study run with batching disabled walks the
scalar per-request path instead, so both runs must produce the exact
same request log, rate-limit history and report.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core.config import StudyConfig
from repro.experiments import export, runner


def _log_digest(log) -> str:
    h = hashlib.sha256()
    for r in log.all():
        h.update(repr((r.action.name, r.timestamp, r.token, r.user_id,
                       r.app_id, r.target_id, r.source_ip, r.asn,
                       r.outcome)).encode())
    return h.hexdigest()


def _run_study(batching: bool):
    config = StudyConfig(scale=0.002, seed=13, milking_days=6,
                         campaign_days=12)
    artifacts = runner.build_world(config)
    for network in artifacts.ecosystem.networks.values():
        network.batch_requests_enabled = batching
    api = artifacts.world.api
    calls = {"delivery_wave": 0}
    original_delivery_wave = api.delivery_wave

    def counting_delivery_wave(post_id=None):
        calls["delivery_wave"] += 1
        return original_delivery_wave(post_id)

    api.delivery_wave = counting_delivery_wave
    runner.run_milking(artifacts)
    runner.run_campaign(artifacts)
    artifacts.wave_calls = calls
    return artifacts


@pytest.fixture(scope="module")
def batched_artifacts():
    return _run_study(batching=True)


@pytest.fixture(scope="module")
def scalar_artifacts():
    return _run_study(batching=False)


def test_batched_study_matches_scalar_study(batched_artifacts,
                                            scalar_artifacts):
    batched_log = batched_artifacts.world.api.log
    scalar_log = scalar_artifacts.world.api.log
    assert len(batched_log.all()) == len(scalar_log.all())
    assert _log_digest(batched_log) == _log_digest(scalar_log)
    assert (batched_artifacts.world.api.charge_counters
            == scalar_artifacts.world.api.charge_counters)


def test_batched_report_matches_scalar_report(batched_artifacts,
                                              scalar_artifacts):
    batched = runner.run_experiments(batched_artifacts)
    scalar = runner.run_experiments(scalar_artifacts)
    assert batched.render() == scalar.render()
    assert (export.report_to_json(batched)
            == export.report_to_json(scalar))


def test_waves_actually_ran(batched_artifacts, scalar_artifacts):
    # Guard against the wave path silently never engaging (which would
    # make the equivalence assertions vacuous).
    assert batched_artifacts.wave_calls["delivery_wave"] > 0
    assert scalar_artifacts.wave_calls["delivery_wave"] == 0


def test_parallel_experiments_match_serial(batched_artifacts):
    serial = runner.run_experiments(batched_artifacts, parallel=False)
    parallel = runner.run_experiments(batched_artifacts, parallel=True)
    assert parallel.render() == serial.render()
    assert (export.report_to_json(parallel)
            == export.report_to_json(serial))
