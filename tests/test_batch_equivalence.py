"""Wave delivery must be byte-identical to the scalar path.

The collusion networks deliver likes through planned delivery waves
(``GraphApi.delivery_wave``) with memoized per-(key, wave-timestamp)
rate-limit transitions; a study run with batching disabled walks the
scalar per-request path instead, so both runs must produce the exact
same request log, rate-limit history and report.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core.config import StudyConfig
from repro.experiments import export, runner
from repro.faults.plan import FaultPlan, FaultRule

#: An actively hostile plan for the fault-equivalence tests: transient
#: errors on the delivery and charge paths, occasional mid-flight token
#: invalidation, and chunk failures that trip the wave circuit breaker.
FAULT_PLAN = FaultPlan((
    FaultRule(kind="transient", probability=0.01,
              actions=frozenset({"LIKE_POST", "CHARGE_LIKE"})),
    FaultRule(kind="invalidate_token", probability=0.0005,
              actions=frozenset({"LIKE_POST"})),
    FaultRule(kind="chunk", probability=0.02),
))


def _log_digest(log) -> str:
    h = hashlib.sha256()
    for r in log.all():
        h.update(repr((r.action.name, r.timestamp, r.token, r.user_id,
                       r.app_id, r.target_id, r.source_ip, r.asn,
                       r.outcome)).encode())
    return h.hexdigest()


def _run_study(batching: bool, fault_plan: FaultPlan = FaultPlan()):
    config = StudyConfig(scale=0.002, seed=13, milking_days=6,
                         campaign_days=12, fault_plan=fault_plan)
    artifacts = runner.build_world(config)
    for network in artifacts.ecosystem.networks.values():
        network.batch_requests_enabled = batching
    api = artifacts.world.api
    calls = {"delivery_wave": 0}
    original_delivery_wave = api.delivery_wave

    def counting_delivery_wave(post_id=None):
        calls["delivery_wave"] += 1
        return original_delivery_wave(post_id)

    api.delivery_wave = counting_delivery_wave
    runner.run_milking(artifacts)
    runner.run_campaign(artifacts)
    artifacts.wave_calls = calls
    return artifacts


@pytest.fixture(scope="module")
def batched_artifacts():
    return _run_study(batching=True)


@pytest.fixture(scope="module")
def scalar_artifacts():
    return _run_study(batching=False)


def test_batched_study_matches_scalar_study(batched_artifacts,
                                            scalar_artifacts):
    batched_log = batched_artifacts.world.api.log
    scalar_log = scalar_artifacts.world.api.log
    assert len(batched_log.all()) == len(scalar_log.all())
    assert _log_digest(batched_log) == _log_digest(scalar_log)
    assert (batched_artifacts.world.api.charge_counters
            == scalar_artifacts.world.api.charge_counters)


def test_batched_report_matches_scalar_report(batched_artifacts,
                                              scalar_artifacts):
    batched = runner.run_experiments(batched_artifacts)
    scalar = runner.run_experiments(scalar_artifacts)
    assert batched.render() == scalar.render()
    assert (export.report_to_json(batched)
            == export.report_to_json(scalar))


def test_waves_actually_ran(batched_artifacts, scalar_artifacts):
    # Guard against the wave path silently never engaging (which would
    # make the equivalence assertions vacuous).
    assert batched_artifacts.wave_calls["delivery_wave"] > 0
    assert scalar_artifacts.wave_calls["delivery_wave"] == 0


def test_parallel_experiments_match_serial(batched_artifacts):
    serial = runner.run_experiments(batched_artifacts, parallel=False)
    parallel = runner.run_experiments(batched_artifacts, parallel=True)
    assert parallel.render() == serial.render()
    assert (export.report_to_json(parallel)
            == export.report_to_json(serial))


# ----------------------------------------------------------------------
# Equivalence under an active fault plan
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def faulted_batched():
    return _run_study(batching=True, fault_plan=FAULT_PLAN)


@pytest.fixture(scope="module")
def faulted_scalar():
    return _run_study(batching=False, fault_plan=FAULT_PLAN)


def test_faulted_wave_matches_scalar(faulted_batched, faulted_scalar):
    """Chunk faults pace the wave into segments, transients trip retries
    and mid-flight invalidations kill tokens — and the wave path must
    still replay the scalar trajectory byte for byte: same fault
    decisions (the scalar stream is shared; chunk rolls live on their
    own dedicated stream), same log rows, same charges."""
    batched_world = faulted_batched.world
    scalar_world = faulted_scalar.world
    assert len(batched_world.api.log) == len(scalar_world.api.log)
    assert (_log_digest(batched_world.api.log)
            == _log_digest(scalar_world.api.log))
    assert (batched_world.api.charge_counters
            == scalar_world.api.charge_counters)
    # Identical per-kind scalar fault decisions; chunk decisions are
    # wave-only by design (the scalar path never opens a chunk).
    batched_counts = dict(batched_world.faults.counters)
    scalar_counts = dict(scalar_world.faults.counters)
    batched_counts.pop("chunk", None)
    scalar_counts.pop("chunk", None)
    assert batched_counts == scalar_counts
    # Per-network RNG streams ended in the same state.
    for domain, network in faulted_batched.ecosystem.networks.items():
        scalar_network = faulted_scalar.ecosystem.networks[domain]
        assert network.rng.getstate() == scalar_network.rng.getstate(), domain


def test_faulted_report_matches_scalar(faulted_batched, faulted_scalar):
    batched = runner.run_experiments(faulted_batched)
    scalar = runner.run_experiments(faulted_scalar)
    assert batched.render() == scalar.render()
    assert (export.report_to_json(batched)
            == export.report_to_json(scalar))


def test_faults_actually_fired(faulted_batched, faulted_scalar):
    # Non-vacuous: the plan injected faults in both runs, and the wave
    # run rolled its chunk rules.
    assert faulted_scalar.world.faults.total_injected() > 0
    assert faulted_batched.world.faults.counters.get("transient", 0) > 0
    assert faulted_batched.world.faults.counters.get("chunk", 0) > 0


def test_delivery_attempts_stay_within_budget(faulted_batched,
                                              faulted_scalar):
    """Attempt accounting regression: a delivery round's ``attempts``
    is bounded by its retry budget and never below ``delivered`` — a
    chunk fallback must not double-count the entries it re-walks
    through the scalar loop.  Both studies left identical state, so one
    further request must also produce field-identical reports."""
    probes = {}
    for name, artifacts in (("wave", faulted_batched),
                            ("scalar", faulted_scalar)):
        domain, network = next(iter(
            artifacts.ecosystem.networks.items()))
        member = network._member_list[0]
        post = artifacts.world.platform.create_post(
            member, "attempt accounting probe")
        report = network.submit_like_request(member, post.post_id)
        budget = max(1, int(report.requested * network.profile.retry_factor))
        assert report.attempts <= budget
        assert report.delivered <= report.attempts
        probes[name] = (domain, report.requested, report.delivered,
                        report.attempts, report.halted)
    assert probes["wave"] == probes["scalar"]
