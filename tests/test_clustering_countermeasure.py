"""Tests for the clustering-based invalidation countermeasure (§6.3)."""

import random


from repro.countermeasures.clustering import ClusteringCountermeasure
from repro.countermeasures.invalidation import TokenInvalidator
from repro.detection.synchrotrap import SynchroTrap
from repro.graphapi.log import RequestLog, RequestRecord
from repro.graphapi.request import ApiAction
from repro.honeypot.ledger import MilkedTokenLedger
from repro.oauth.scopes import PermissionScope
from repro.oauth.tokens import TokenLifetime, TokenStore
from repro.sim.clock import DAY, HOUR, SimClock


def _like_record(user, target, timestamp, token="t"):
    return RequestRecord(
        timestamp=timestamp, action=ApiAction.LIKE_POST, token=token,
        user_id=user, app_id="app", target_id=target,
        source_ip="10.0.0.1", asn=None, outcome="ok")


def _world_state(accounts):
    clock = SimClock()
    store = TokenStore(clock)
    ledger = MilkedTokenLedger()
    for account in accounts:
        store.issue(account, "app", PermissionScope.full(),
                    TokenLifetime.LONG_TERM)
        ledger.observe(account, "net", 0, day=0, app_id="app")
    return store, ledger


def test_clustering_kills_lockstep_tokens():
    bots = [f"bot{i}" for i in range(20)]
    store, ledger = _world_state(bots)
    log = RequestLog()
    for t in range(12):
        for i, bot in enumerate(bots):
            log.append(_like_record(bot, f"post{t}", t * HOUR + i))
    countermeasure = ClusteringCountermeasure(
        SynchroTrap(min_cluster_size=10), window_days=7)
    invalidator = TokenInvalidator(store, ledger, random.Random(1))
    outcome = countermeasure.run(log, invalidator, now=2 * DAY)
    assert outcome.detection.flagged_count == 20
    assert outcome.tokens_invalidated == 20
    assert all(store.live_token_for(b, "app") is None for b in bots)


def test_clustering_misses_pool_sampling():
    members = [f"m{i}" for i in range(2000)]
    store, ledger = _world_state(members)
    rng = random.Random(2)
    log = RequestLog()
    for t in range(30):
        for member in rng.sample(members, 150):
            log.append(_like_record(member, f"post{t}", t * HOUR))
    countermeasure = ClusteringCountermeasure(
        SynchroTrap(min_cluster_size=10, max_bucket_actors=100),
        window_days=7)
    invalidator = TokenInvalidator(store, ledger, random.Random(3))
    outcome = countermeasure.run(log, invalidator, now=2 * DAY)
    assert outcome.tokens_invalidated == 0


def test_clustering_window_excludes_old_actions():
    bots = [f"bot{i}" for i in range(20)]
    store, ledger = _world_state(bots)
    log = RequestLog()
    # All the lockstep activity happened 30 days ago.
    for t in range(12):
        for i, bot in enumerate(bots):
            log.append(_like_record(bot, f"post{t}", t * HOUR + i))
    countermeasure = ClusteringCountermeasure(
        SynchroTrap(min_cluster_size=10), window_days=7)
    invalidator = TokenInvalidator(store, ledger, random.Random(4))
    outcome = countermeasure.run(log, invalidator, now=30 * DAY)
    assert outcome.detection.flagged_count == 0
    assert outcome.tokens_invalidated == 0
