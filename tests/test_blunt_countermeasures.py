"""Tests for the rejected blunt countermeasures (§6)."""

import pytest

from repro.collusion.profiles import HTC_SENSE
from repro.countermeasures.blunt import (
    mandate_app_secret,
    measure_collateral,
    suspend_application,
)
from repro.honeypot.account import create_honeypot
from repro.oauth.errors import FlowDisabledError
from repro.oauth.server import AuthorizationRequest
from repro.workloads.organic import OrganicWorkload


@pytest.fixture()
def blunt_world():
    from repro.apps.catalog import AppCatalog
    from repro.collusion.ecosystem import build_ecosystem
    from repro.core.config import StudyConfig
    from repro.core.world import World

    w = World(StudyConfig(scale=0.002, seed=37))
    AppCatalog(w.apps, w.rng.stream("catalog"), tail_apps=0).build()
    eco = build_ecosystem(w, network_limit=1)
    network = eco.network("hublaa.me")
    honeypot = create_honeypot(w, network)
    organic = OrganicWorkload(w, [HTC_SENSE])
    organic.create_users(30)
    return w, network, honeypot, organic


def test_suspension_stops_collusion_and_breaks_users(blunt_world):
    w, network, honeypot, organic = blunt_world
    impact = suspend_application(w, HTC_SENSE)
    assert impact.tokens_invalidated > 0
    post = w.platform.create_post(honeypot.account_id, "x")
    report = network.submit_like_request(honeypot.account_id,
                                         post.post_id)
    assert report.delivered == 0
    # ...and every legitimate user of the app is broken too.
    assert measure_collateral(w, organic.users) == 1.0
    # New logins are refused as well.
    app = w.apps.get(HTC_SENSE)
    victim = w.platform.register_account("V")
    with pytest.raises(FlowDisabledError):
        w.auth_server.authorize(
            AuthorizationRequest(app.app_id, app.redirect_uri, "token",
                                 app.approved_permissions),
            victim.account_id)


def test_mandated_secret_stops_collusion_and_breaks_client_apps(blunt_world):
    w, network, honeypot, organic = blunt_world
    mandate_app_secret(w, HTC_SENSE)
    post = w.platform.create_post(honeypot.account_id, "x")
    report = network.submit_like_request(honeypot.account_id,
                                         post.post_id)
    assert report.delivered == 0  # bare tokens cannot compute the proof
    # Client-side-only legitimate apps fail identically.
    assert measure_collateral(w, organic.users) == 1.0
    # A proper app *server* holding the secret still works.
    from repro.oauth.proof import compute_appsecret_proof

    app = w.apps.get(HTC_SENSE)
    user = organic.users[0]
    target = w.platform.create_post(user.account_id, "server-side like")
    proof = compute_appsecret_proof(app.secret, user.token)
    w.api.like_post(user.token, target.post_id, appsecret_proof=proof,
                    source_ip=user.home_ip)


def test_targeted_countermeasures_have_no_collateral(blunt_world):
    """The paper's chosen path: invalidate abused tokens only."""
    w, network, honeypot, organic = blunt_world
    for member, token in list(network.token_db.items()):
        w.tokens.invalidate(token, "targeted")
    post = w.platform.create_post(honeypot.account_id, "x")
    report = network.submit_like_request(honeypot.account_id,
                                         post.post_id)
    assert report.delivered == 0
    assert measure_collateral(w, organic.users) == 0.0


def test_measure_collateral_empty():
    assert measure_collateral(None, []) == 0.0
