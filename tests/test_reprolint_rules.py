"""Per-rule unit tests for the reprolint analyzers (RL001-RL005)."""

import textwrap

from repro.lint import lint_source
from repro.lint.findings import Severity
from repro.lint.rules import DEFAULT_ALLOWLIST


def rules_of(source, path="repro/module.py", allowlist=None):
    findings = lint_source(textwrap.dedent(source), path=path,
                           allowlist=allowlist)
    return [finding.rule for finding in findings]


# ----------------------------------------------------------------------
# RL001 — wall clock
# ----------------------------------------------------------------------
def test_rl001_flags_time_and_datetime_calls():
    assert rules_of("""
        import time
        from datetime import datetime

        def f():
            a = time.time()
            b = time.monotonic()
            time.sleep(1)
            return a, b, datetime.now(), datetime.utcnow()
    """) == ["RL001"] * 5


def test_rl001_sees_through_aliases():
    assert rules_of("""
        import time as t
        from time import perf_counter as pc

        def f():
            return t.time() + pc()
    """) == ["RL001", "RL001"]


def test_rl001_ignores_shadowing_locals():
    # A parameter named ``time`` is not the time module.
    assert rules_of("""
        def f(time):
            return time.time()
    """) == []


def test_rl001_allowlists_the_perf_shell():
    source = """
        import time

        def f():
            return time.perf_counter()
    """
    assert rules_of(source, path="repro/perf/bench.py",
                    allowlist=DEFAULT_ALLOWLIST) == []
    assert rules_of(source, path="repro/sim/clock.py",
                    allowlist=DEFAULT_ALLOWLIST) == ["RL001"]


# ----------------------------------------------------------------------
# RL002 — global / unseeded randomness
# ----------------------------------------------------------------------
def test_rl002_flags_module_level_random_calls():
    assert rules_of("""
        import random
        from random import randint

        def f(xs):
            random.shuffle(xs)
            return random.choice(xs), randint(0, 5)
    """) == ["RL002"] * 3


def test_rl002_flags_unseeded_and_system_random():
    # The unseeded construction also draws RL601: any raw Random is
    # invisible to the sanitizer, seeded or not.
    assert rules_of("""
        import random

        def f():
            return random.Random(), random.SystemRandom()
    """) == ["RL002", "RL601", "RL002"]


def test_rl002_accepts_seeded_random_and_streams():
    # RL002 accepts the explicit seed; the RL6xx sanitizer family still
    # flags the raw construction (its draws bypass the shadow trace).
    assert rules_of("""
        import random

        def f(world, seed):
            rng = world.rng.stream("net")
            backup = random.Random(seed)
            return rng.random() + backup.random()
    """) == ["RL601"]


def test_rl002_flags_numpy_global_state():
    assert rules_of("""
        import numpy as np

        def f():
            np.random.seed(0)
            return np.random.rand(3), np.random.default_rng()
    """) == ["RL002"] * 3
    assert rules_of("""
        import numpy as np

        def f(seed):
            return np.random.default_rng(seed)
    """) == []


# ----------------------------------------------------------------------
# RL003 — nondeterministic ordering
# ----------------------------------------------------------------------
def test_rl003_flags_set_iteration_and_listdir():
    assert rules_of("""
        import os

        def f(cb, d, xs):
            for x in {1, 2, 3}:
                cb(x)
            for name in os.listdir(d):
                cb(name)
            return list(set(xs))
    """) == ["RL003"] * 3


def test_rl003_flags_id_keyed_sorts():
    assert rules_of("""
        def f(xs):
            xs.sort(key=id)
            return sorted(xs, key=lambda x: id(x))
    """) == ["RL003", "RL003"]


def test_rl003_accepts_sorted_wrapping_and_membership():
    assert rules_of("""
        import os

        def f(cb, d, xs):
            for x in sorted({1, 2, 3}):
                cb(x)
            for name in sorted(os.listdir(d)):
                cb(name)
            seen = set(xs)
            return ("a" in seen, len(set(xs)), sorted(xs, key=str))
    """) == []


def test_rl003_set_comprehension_source_flagged():
    assert rules_of("""
        def f(xs):
            return [x for x in set(xs)]
    """) == ["RL003"]


# ----------------------------------------------------------------------
# RL004 — entropy / environment
# ----------------------------------------------------------------------
def test_rl004_flags_uuid_secrets_urandom_environ_hash():
    assert rules_of("""
        import os
        import secrets
        import uuid

        def f():
            a = uuid.uuid4()
            b = secrets.token_hex(8)
            c = os.urandom(8)
            d = os.environ.get("HOME")
            e = os.getenv("HOME")
            return a, b, c, d, e, hash("x")
    """) == ["RL004"] * 6


def test_rl004_accepts_stable_digests_and_uuid5():
    assert rules_of("""
        import hashlib
        import uuid

        def f(ns, name):
            stable = uuid.uuid5(ns, name)
            return stable, hashlib.blake2b(name.encode()).hexdigest()
    """) == []


def test_rl004_hash_shadowed_by_local_def_is_fine():
    assert rules_of("""
        def hash(x):
            return 7

        def f():
            return hash("x")
    """) == []


def test_rl004_environ_allowlisted_in_perf_shell():
    source = """
        import os

        def f():
            return os.environ.get("PYTHONHASHSEED")
    """
    assert rules_of(source, path="repro/perf/bench.py",
                    allowlist=DEFAULT_ALLOWLIST) == []


# ----------------------------------------------------------------------
# RL005 — exception discipline
# ----------------------------------------------------------------------
def test_rl005_flags_bare_and_broad_swallowers():
    findings = lint_source(textwrap.dedent("""
        def f(x):
            try:
                return x()
            except:
                pass

        def g(x):
            try:
                return x()
            except Exception:
                return None
    """))
    assert [f.rule for f in findings] == ["RL005", "RL005"]
    assert findings[0].severity == Severity.WARNING


def test_rl005_accepts_reraise_use_logging_and_narrow():
    assert rules_of("""
        import warnings

        def f(x):
            try:
                return x()
            except ValueError:
                return None

        def g(x):
            try:
                return x()
            except Exception:
                raise

        def h(x):
            try:
                return x()
            except Exception as error:
                return repr(error)

        def k(x):
            try:
                return x()
            except Exception as error:
                warnings.warn(f"boom {error}", stacklevel=2)
                return None
    """) == []


def test_rl005_broad_inside_tuple_is_still_broad():
    assert rules_of("""
        def f(x):
            try:
                return x()
            except (ValueError, Exception):
                return None
    """) == ["RL005"]
