"""RetryPolicy / CircuitBreaker behaviour on the sim clock."""

from __future__ import annotations

import pytest

from repro.faults.retry import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
    deterministic_jitter,
)


# ----------------------------------------------------------------------
# Jitter and backoff
# ----------------------------------------------------------------------
def test_jitter_is_deterministic_and_bounded():
    a = deterministic_jitter("like_post", "member:1", 1, 1000)
    b = deterministic_jitter("like_post", "member:1", 1, 1000)
    assert a == b
    assert 0.0 <= a < 1.0
    assert a != deterministic_jitter("like_post", "member:1", 2, 1000)
    assert a != deterministic_jitter("comment", "member:1", 1, 1000)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_delay=2, max_delay=300, jitter=0.0)
    delays = [policy.backoff_delay("e", "k", attempt, 0)
              for attempt in range(1, 12)]
    assert delays[:4] == [2, 4, 8, 16]
    assert max(delays) == 300
    assert delays == sorted(delays)


def test_backoff_jitter_inflates_within_bounds():
    plain = RetryPolicy(jitter=0.0).backoff_delay("e", "k", 3, 50)
    jittered = RetryPolicy(jitter=0.5).backoff_delay("e", "k", 3, 50)
    assert plain <= jittered <= int(plain * 1.5) + 1


def test_policy_validates_args():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=0)
    with pytest.raises(ValueError):
        RetryPolicy(max_delay=1, base_delay=2)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=-0.1)


# ----------------------------------------------------------------------
# Retry loop
# ----------------------------------------------------------------------
def test_retry_recovers_after_transient_codes():
    policy = RetryPolicy(max_retries=3)
    codes = iter(["transient", None])
    result = policy.retry("like", "k", 0, lambda: next(codes),
                          "transient")
    assert result is None
    assert policy.counters["retries"] == 2
    assert policy.counters["recoveries"] == 1
    assert policy.counters["giveups"] == 0
    assert policy.counters["backoff_seconds"] > 0


def test_retry_gives_up_after_budget():
    policy = RetryPolicy(max_retries=2)
    result = policy.retry("like", "k", 0, lambda: "timeout", "transient")
    assert result == "timeout"
    assert policy.counters["retries"] == 2
    assert policy.counters["giveups"] == 1


def test_retry_passes_through_terminal_codes():
    policy = RetryPolicy(max_retries=3)
    result = policy.retry("like", "k", 0, lambda: "invalid_token",
                          "transient")
    assert result == "invalid_token"
    assert policy.counters["retries"] == 1
    assert policy.counters["recoveries"] == 1


def test_run_wrapper_skips_retry_on_success():
    policy = RetryPolicy()
    assert policy.run("like", "k", 0, lambda: None) is None
    assert policy.counters["retries"] == 0


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
def test_breaker_opens_after_threshold_failures():
    breaker = CircuitBreaker(threshold=3, cooldown=100)
    for _ in range(2):
        breaker.record_failure("e", now=0)
        assert breaker.state_of("e") == CLOSED
    breaker.record_failure("e", now=0)
    assert breaker.state_of("e") == OPEN
    assert breaker.opens == 1
    assert not breaker.allow("e", now=50)


def test_breaker_half_open_probe_then_close():
    breaker = CircuitBreaker(threshold=1, cooldown=100)
    breaker.record_failure("e", now=0)
    assert not breaker.allow("e", now=99)
    assert breaker.allow("e", now=100)  # half-open probe
    assert breaker.state_of("e") == HALF_OPEN
    breaker.record_success("e")
    assert breaker.state_of("e") == CLOSED


def test_breaker_half_open_failure_reopens():
    breaker = CircuitBreaker(threshold=2, cooldown=100)
    breaker.record_failure("e", now=0)
    breaker.record_failure("e", now=0)
    assert breaker.allow("e", now=100)
    breaker.record_failure("e", now=100)
    assert breaker.state_of("e") == OPEN
    assert not breaker.allow("e", now=150)


def test_open_breaker_fast_fails_retry():
    policy = RetryPolicy(max_retries=1, breaker_threshold=1,
                         breaker_cooldown=1000)
    policy.retry("like", "k", 0, lambda: "transient", "transient")
    assert policy.breaker.state_of("like") == OPEN
    calls = []
    result = policy.retry("like", "k", 10,
                          lambda: calls.append(1) or None, "transient")
    assert result == "transient"  # initial code returned untouched
    assert not calls
    assert policy.counters["fast_fails"] == 1


def test_breaker_endpoints_independent():
    policy = RetryPolicy(max_retries=1, breaker_threshold=1)
    policy.retry("like", "k", 0, lambda: "transient", "transient")
    assert policy.breaker.state_of("like") == OPEN
    assert policy.breaker.state_of("comment") == CLOSED
    assert policy.allow("comment", 0)


# ----------------------------------------------------------------------
# Elapsed-time budget (deadline vs attempts exhaustion)
# ----------------------------------------------------------------------
def test_attempt_exhaustion_is_recorded_as_attempts():
    policy = RetryPolicy(max_retries=2)
    policy.retry("like", "k", 0, lambda: "timeout", "transient")
    assert policy.last_giveup_reason == "attempts"
    assert policy.counters["giveups"] == 1
    assert policy.counters["giveups_attempts"] == 1
    assert policy.counters["giveups_deadline"] == 0


def test_deadline_budget_stops_before_attempts_run_out():
    # With jitter off, delays are 2, 4, 8...: a 5-second elapsed budget
    # admits attempts 1 (2s) but not attempt 2 (2+4 > 5).
    policy = RetryPolicy(max_retries=10, base_delay=2, jitter=0.0,
                         max_elapsed=5)
    result = policy.retry("like", "k", 0, lambda: "timeout", "transient")
    assert result == "timeout"
    assert policy.counters["retries"] == 1
    assert policy.counters["backoff_seconds"] == 2
    assert policy.last_giveup_reason == "deadline"
    assert policy.counters["giveups"] == 1
    assert policy.counters["giveups_deadline"] == 1
    assert policy.counters["giveups_attempts"] == 0


def test_deadline_budget_tighter_than_first_delay_fails_immediately():
    policy = RetryPolicy(max_retries=3, base_delay=2, jitter=0.0,
                         max_elapsed=1)
    result = policy.retry("like", "k", 0, lambda: "timeout", "transient")
    # call() never ran: the initial code passes through unchanged.
    assert result == "transient"
    assert policy.counters["retries"] == 0
    assert policy.last_giveup_reason == "deadline"


def test_generous_deadline_budget_changes_nothing():
    tight = RetryPolicy(max_retries=3, jitter=0.0)
    roomy = RetryPolicy(max_retries=3, jitter=0.0, max_elapsed=10**6)
    for policy in (tight, roomy):
        policy.retry("like", "k", 0, lambda: "timeout", "transient")
    assert tight.counters == roomy.counters
    assert roomy.last_giveup_reason == "attempts"


def test_max_elapsed_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_elapsed=0)
    with pytest.raises(ValueError):
        RetryPolicy(max_elapsed=-5)
