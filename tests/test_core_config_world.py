"""Tests for StudyConfig and World wiring."""

import pytest

from repro.core.config import StudyConfig
from repro.core.world import World
from repro.sim.clock import DAY


def test_config_validation():
    with pytest.raises(ValueError):
        StudyConfig(scale=0)
    with pytest.raises(ValueError):
        StudyConfig(scale=-0.5)
    with pytest.raises(ValueError):
        StudyConfig(seed=-1)


def test_config_scaled():
    config = StudyConfig(scale=0.01)
    assert config.scaled(1000) == 10
    assert config.scaled(10) == 1       # minimum floor
    assert config.scaled(10, minimum=0) == 0
    assert config.scaled(149) == 1
    assert config.scaled(151) == 2


def test_world_shares_one_clock():
    world = World(StudyConfig(scale=0.01))
    assert world.platform.clock is world.clock
    assert world.api.clock is world.clock
    # Advancing via the world moves every subsystem's view of time.
    world.advance_days(2)
    assert world.clock.day() == 2


def test_world_policy_shared_with_api():
    world = World(StudyConfig(scale=0.01))
    assert world.api.policy is world.policy


def test_world_advance_runs_scheduled_events():
    world = World(StudyConfig(scale=0.01))
    fired = []
    world.scheduler.at(DAY // 2, lambda: fired.append(world.clock.now()))
    world.advance_days(1)
    assert fired == [DAY // 2]


def test_worlds_with_same_seed_are_identical():
    def fingerprint():
        world = World(StudyConfig(scale=0.01, seed=77))
        account = world.platform.register_account("A")
        return (account.account_id,
                world.rng.stream("x").random())

    assert fingerprint() == fingerprint()


def test_worlds_with_different_seeds_differ():
    a = World(StudyConfig(scale=0.01, seed=1)).rng.stream("x").random()
    b = World(StudyConfig(scale=0.01, seed=2)).rng.stream("x").random()
    assert a != b
