"""reprosan acceptance: the identity contract (a sanitized run is
byte-identical to an unsanitized one), shard-vs-serial trace equality,
and divergence bisection down to the exact event.

The campaign fixtures run the same compressed two-network study as
``tests/test_sharded_campaign.py`` — once plain, once traced, once
sharded-and-traced — so every trace comparison here is over a real
workload, not synthetic draws; the synthetic traces below pin the
differ's bisection mechanics instead.
"""

from __future__ import annotations

import sys

import pytest

from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.countermeasures.campaign import (
    CampaignConfig,
    CountermeasureCampaign,
)
from repro.sanitizer import SANITIZER, diff_manifests
from repro.sanitizer.trace import MAX_SAMPLES, SanitizerTrace

NETWORKS = ("fb-autolikers.com", "autolike.vn")
SCALE = 0.004
DAYS = 12
SEED = 31


def _campaign(shards, sanitize):
    """One compressed campaign; returns (digest, rows, manifest)."""
    SANITIZER.reset()
    if sanitize:
        SANITIZER.enable()
    else:
        SANITIZER.disable()
    try:
        world = World(StudyConfig(scale=SCALE, seed=SEED))
        AppCatalog(world.apps, world.rng.stream("catalog"),
                   tail_apps=0).build()
        ecosystem = build_ecosystem(world, build_membership=False,
                                    network_limit=13)
        for domain in NETWORKS:
            network = ecosystem.network(domain)
            network.build_membership(network.profile.pool_size(SCALE))
        config = CampaignConfig.compressed(
            DAYS, networks=NETWORKS, outgoing_per_hour=0.0,
            shards=shards, hublaa_outage=None)
        CountermeasureCampaign(world, ecosystem, config).run()
        manifest = SANITIZER.manifest() if sanitize else None
        return world.api.log.digest(), len(world.api.log), manifest
    finally:
        SANITIZER.reset()
        SANITIZER.disable()


@pytest.fixture(scope="module")
def plain():
    return _campaign(shards=1, sanitize=False)


@pytest.fixture(scope="module")
def traced():
    return _campaign(shards=1, sanitize=True)


@pytest.fixture(scope="module")
def sharded_traced():
    return _campaign(shards=2, sanitize=True)


# ----------------------------------------------------------------------
# Identity contract
# ----------------------------------------------------------------------
def test_sanitized_run_is_byte_identical(plain, traced):
    """The tentpole invariant: hooks observe, never perturb."""
    assert traced[0] == plain[0]
    assert traced[1] == plain[1]


def test_trace_covers_the_determinism_surface(traced):
    manifest = traced[2]
    assert manifest["format"] == "reprosan-trace"
    names = set(manifest["streams"])
    assert {"clock", "limiter"} <= names
    assert any(name.startswith("rng:") for name in names)
    # The fused-admission hot loops draw raw (hot_draw_bindings), so
    # the trace stays in the thousands, not the millions of draws.
    assert manifest["events"] > 1_000
    # Serial run: no fork/merge markers.
    assert "shard" not in names


# ----------------------------------------------------------------------
# Shard-vs-serial trace equality
# ----------------------------------------------------------------------
def test_sharded_trace_matches_serial_event_for_event(traced,
                                                      sharded_traced):
    assert sharded_traced[0] == traced[0]
    diff = diff_manifests(traced[2], sharded_traced[2],
                          ignore=("shard", "clock"))
    assert diff.equal, diff.render()
    assert diff.streams_compared > 5
    assert diff.events_a == diff.events_b > 1_000


def test_shard_stream_marks_the_execution_strategy(sharded_traced):
    names = set(sharded_traced[2]["streams"])
    assert "shard" in names
    # Without the ignore the execution-strategy stream is itself the
    # divergence — exactly why cross-mode diffs exclude it.
    diff = diff_manifests(sharded_traced[2], sharded_traced[2],
                          ignore=())
    assert diff.equal


# ----------------------------------------------------------------------
# Bisection mechanics (synthetic traces)
# ----------------------------------------------------------------------
def _drive(schedule, stream="campaign"):
    trace = SanitizerTrace()
    trace.enable()
    frame = sys._getframe()
    for day, payload in schedule:
        trace.set_day(day)
        trace.record_draw(stream, payload, "random()", frame)
    return trace


def _daily(days, per_day):
    return [(day, b"draw:%d:%d" % (day, seq))
            for day in range(days) for seq in range(per_day)]


def test_extra_event_bisects_to_the_exact_seq():
    base = _daily(3, 120)
    divergent = list(base)
    divergent.insert(120 + 78, (1, b"extra-draw"))
    diff = diff_manifests(_drive(base).manifest(),
                          _drive(divergent).manifest())
    assert not diff.equal
    (found,) = diff.divergences
    assert (found.stream, found.day, found.seq) == ("rng:campaign", 1, 78)
    assert found.kind == "event"
    assert "extra-draw" not in found.detail_a  # a has the original
    assert "events this day" in found.detail_b


def test_same_count_byte_difference_bisects_exactly():
    base = _daily(1, 40)
    mutated = list(base)
    mutated[20] = (0, b"flipped")
    diff = diff_manifests(_drive(base).manifest(),
                          _drive(mutated).manifest())
    (found,) = diff.divergences
    assert (found.day, found.seq, found.kind) == (0, 20, "event")


def test_thinned_sampling_brackets_instead_of_guessing():
    """Past MAX_SAMPLES the stride doubles; the differ reports the
    honest bracket rather than a fabricated exact seq."""
    per_day = MAX_SAMPLES + 200  # thins once: stride 2, odd-seq samples
    base = _daily(1, per_day)
    mutated = list(base)
    mutated[300] = (0, b"flipped")
    diff = diff_manifests(_drive(base).manifest(),
                          _drive(mutated).manifest())
    (found,) = diff.divergences
    assert found.kind == "interval"
    assert found.seq is None
    assert (found.seq_lo, found.seq_hi) == (299, 301)


def test_stream_present_on_one_side_is_the_divergence():
    base = _drive(_daily(1, 10))
    extra = _drive(_daily(1, 10))
    extra.record_limiter("saturate", "deadbeef")
    diff = diff_manifests(base.manifest(), extra.manifest())
    (found,) = diff.divergences
    assert found.kind == "missing-stream"
    assert found.stream == "limiter"


# ----------------------------------------------------------------------
# Trace plumbing invariants
# ----------------------------------------------------------------------
def test_capture_replay_reproduces_the_live_chain():
    """The shard transfer path (capture → slice → replay) must land on
    the same per-stream chains as live recording."""
    schedule = _daily(2, 30)
    live = _drive(schedule)

    replayed = SanitizerTrace()
    replayed.enable()
    frame = sys._getframe()
    base = replayed.begin_capture()
    for day, payload in schedule:
        replayed.set_day(day)
        replayed.record_draw("campaign", payload, "random()", frame)
    events = replayed.capture_slice(base, replayed.capture_mark())
    replayed.end_capture()
    replayed.replay(events)

    assert replayed.fingerprint() == live.fingerprint()
    assert diff_manifests(live.manifest(), replayed.manifest()).equal


def test_export_install_mid_run_is_digest_neutral():
    """Checkpointing folds pending bytes early; fold points depend
    only on event counts, so chains stay comparable."""
    schedule = _daily(2, 45)
    straight = _drive(schedule)

    first = _drive(schedule[:45])
    handoff = SanitizerTrace()
    handoff.enable()
    handoff.install_state(first.export_state())
    frame = sys._getframe()
    for day, payload in schedule[45:]:
        handoff.set_day(day)
        handoff.record_draw("campaign", payload, "random()", frame)

    assert handoff.fingerprint() == straight.fingerprint()
    assert diff_manifests(straight.manifest(), handoff.manifest()).equal


def test_clock_reads_deduplicate_by_value():
    trace = SanitizerTrace()
    trace.enable()
    trace.record_clock(5)
    trace.record_clock(5)
    trace.record_clock(6)
    trace.record_clock(5)
    assert trace._streams["clock"].total == 3


def test_hooks_are_gated_at_the_call_site():
    """A disabled sanitizer costs one attribute check per hook site —
    nothing is recorded until ``enable()``."""
    from repro.sim.clock import SimClock

    SANITIZER.reset()
    SANITIZER.disable()
    try:
        clock = SimClock()
        clock.now()
        assert SANITIZER.stream_names() == []
        SANITIZER.enable()
        clock.now()
        assert SANITIZER.stream_names() == ["clock"]
    finally:
        SANITIZER.reset()
        SANITIZER.disable()


def test_reset_preserves_the_enabled_flag():
    trace = SanitizerTrace()
    trace.enable()
    trace.reset()
    assert trace.enabled
