"""Tests for the app catalog and the §2.2 susceptibility scanner."""

import pytest

from repro.apps.catalog import (
    COLLUSION_APPS,
    NAMED_SUSCEPTIBLE_APPS,
    AppCatalog,
    mau_bucket,
)
from repro.apps.scanner import AppScanner, ScanVerdict
from repro.oauth.tokens import TokenLifetime


def test_mau_bucket():
    assert mau_bucket(50_000_000) == 50_000_000
    assert mau_bucket(1_900_000) == 1_000_000
    assert mau_bucket(999_999) == 900_000
    assert mau_bucket(104_018) == 100_000
    assert mau_bucket(7) == 7
    assert mau_bucket(0) == 0


def test_catalog_builds_expected_population(catalog_world):
    world, catalog = catalog_world
    top = catalog.top_100()
    assert len(top) == 100
    named_ids = {spec.app_id for spec in NAMED_SUSCEPTIBLE_APPS}
    assert named_ids <= {a.app_id for a in top}
    # Nokia and Sony exist but sit below the leaderboard.
    top_ids = {a.app_id for a in top}
    for spec in COLLUSION_APPS[1:]:
        assert catalog.get(spec.app_id) is not None
        assert spec.app_id not in top_ids


def test_catalog_build_is_single_shot(catalog_world):
    world, catalog = catalog_world
    with pytest.raises(RuntimeError):
        catalog.build()


def test_catalog_has_long_tail(catalog_world):
    world, catalog = catalog_world
    assert len(world.apps) > 1000


def test_catalog_rejects_bad_config(world):
    with pytest.raises(ValueError):
        AppCatalog(world.apps, world.rng.stream("x"),
                   top_n=10, susceptible_short_term=46)
    with pytest.raises(ValueError):
        AppCatalog(world.apps, world.rng.stream("x"), tail_apps=-1)


def test_scan_reproduces_table1_split(catalog_world):
    world, catalog = catalog_world
    scanner = AppScanner(world.platform, world.auth_server, world.api)
    reports = scanner.scan_all(catalog.top_100())
    summary = AppScanner.summarize(reports)
    assert summary == {
        "scanned": 100,
        "susceptible": 55,
        "susceptible_short_term": 46,
        "susceptible_long_term": 9,
    }


def test_scan_identifies_named_apps_as_susceptible(catalog_world):
    world, catalog = catalog_world
    scanner = AppScanner(world.platform, world.auth_server, world.api)
    for spec in NAMED_SUSCEPTIBLE_APPS:
        report = scanner.scan(catalog.get(spec.app_id))
        assert report.verdict is ScanVerdict.SUSCEPTIBLE
        assert report.token_lifetime is TokenLifetime.LONG_TERM


def test_scan_verdicts_for_secure_apps(catalog_world):
    world, catalog = catalog_world
    scanner = AppScanner(world.platform, world.auth_server, world.api)
    reports = scanner.scan_all(catalog.top_100())
    verdicts = {r.verdict for r in reports if not r.susceptible}
    # Both defense mechanisms appear among the non-susceptible apps.
    assert ScanVerdict.CLIENT_FLOW_DISABLED in verdicts
    assert ScanVerdict.APP_SECRET_REQUIRED in verdicts


def test_scanner_actually_exercises_the_flow(catalog_world):
    """The scanner must retrieve a working token and perform a like."""
    world, catalog = catalog_world
    scanner = AppScanner(world.platform, world.auth_server, world.api)
    spec = NAMED_SUSCEPTIBLE_APPS[0]
    scanner.scan(catalog.get(spec.app_id))
    likes = [r for r in world.api.log.successes()
             if r.action.is_like and r.app_id == spec.app_id]
    assert likes, "scanner never performed its probe like"


def test_scan_deterministic_across_runs():
    from repro.core.config import StudyConfig
    from repro.core.world import World

    def run_once():
        w = World(StudyConfig(scale=0.01, seed=99))
        catalog = AppCatalog(w.apps, w.rng.stream("catalog"))
        catalog.build()
        scanner = AppScanner(w.platform, w.auth_server, w.api)
        return [(r.app_id, r.verdict) for r in
                scanner.scan_all(catalog.top_100())]

    assert run_once() == run_once()
