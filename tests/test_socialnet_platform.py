"""Tests for the social platform core."""

import pytest

from repro.socialnet.account import AccountStatus
from repro.socialnet.errors import (
    AccountSuspendedError,
    DuplicateLikeError,
    UnknownAccountError,
    UnknownPageError,
    UnknownPostError,
)


def test_register_account(world):
    account = world.platform.register_account("Alice", country="IN")
    assert account.account_id.startswith("acct:")
    assert account.country == "IN"
    assert account.is_active


def test_honeypot_flag(world):
    account = world.platform.register_account("Bait", is_honeypot=True)
    assert account.is_honeypot


def test_unknown_account_raises(world):
    with pytest.raises(UnknownAccountError):
        world.platform.get_account("acct:999")


def test_create_post_and_timeline(world):
    alice = world.platform.register_account("Alice")
    post = world.platform.create_post(alice.account_id, "hello")
    timeline = world.platform.timeline(alice.account_id)
    assert [p.post_id for p in timeline] == [post.post_id]
    assert post.text == "hello"


def test_like_post_records_attribution(world):
    alice = world.platform.register_account("Alice")
    bob = world.platform.register_account("Bob")
    post = world.platform.create_post(alice.account_id, "x")
    like = world.platform.like_post(bob.account_id, post.post_id,
                                    via_app_id="app:1",
                                    source_ip="10.0.0.1")
    assert like.via_app_id == "app:1"
    assert like.source_ip == "10.0.0.1"
    assert post.liked_by(bob.account_id)


def test_duplicate_like_rejected(world):
    alice = world.platform.register_account("Alice")
    bob = world.platform.register_account("Bob")
    post = world.platform.create_post(alice.account_id, "x")
    world.platform.like_post(bob.account_id, post.post_id)
    with pytest.raises(DuplicateLikeError):
        world.platform.like_post(bob.account_id, post.post_id)


def test_like_unknown_post(world):
    bob = world.platform.register_account("Bob")
    with pytest.raises(UnknownPostError):
        world.platform.like_post(bob.account_id, "post:404")


def test_comment_on_post(world):
    alice = world.platform.register_account("Alice")
    bob = world.platform.register_account("Bob")
    post = world.platform.create_post(alice.account_id, "x")
    comment = world.platform.comment_on_post(bob.account_id, post.post_id,
                                             "nice")
    assert comment.text == "nice"
    assert post.comment_count == 1


def test_page_likes(world):
    owner = world.platform.register_account("Owner")
    fan = world.platform.register_account("Fan")
    page = world.platform.create_page(owner.account_id, "My Page")
    world.platform.like_page(fan.account_id, page.page_id)
    assert page.like_count == 1
    with pytest.raises(DuplicateLikeError):
        world.platform.like_page(fan.account_id, page.page_id)


def test_unknown_page(world):
    fan = world.platform.register_account("Fan")
    with pytest.raises(UnknownPageError):
        world.platform.like_page(fan.account_id, "page:404")


def test_suspended_account_cannot_act(world):
    alice = world.platform.register_account("Alice")
    bob = world.platform.register_account("Bob")
    post = world.platform.create_post(alice.account_id, "x")
    world.platform.suspend_account(bob.account_id)
    with pytest.raises(AccountSuspendedError):
        world.platform.like_post(bob.account_id, post.post_id)
    world.platform.reinstate_account(bob.account_id)
    world.platform.like_post(bob.account_id, post.post_id)


def test_suspension_status(world):
    alice = world.platform.register_account("Alice")
    world.platform.suspend_account(alice.account_id)
    assert alice.status is AccountStatus.SUSPENDED


def test_befriend_mutual(world):
    a = world.platform.register_account("A")
    b = world.platform.register_account("B")
    world.platform.befriend(a.account_id, b.account_id)
    assert b.account_id in a.friend_ids
    assert a.account_id in b.friend_ids


def test_remove_like(world):
    alice = world.platform.register_account("Alice")
    bob = world.platform.register_account("Bob")
    post = world.platform.create_post(alice.account_id, "x")
    world.platform.like_post(bob.account_id, post.post_id)
    assert world.platform.remove_like(post.post_id, bob.account_id)
    assert post.like_count == 0
    assert not world.platform.remove_like(post.post_id, bob.account_id)
    # After removal the account may like again.
    world.platform.like_post(bob.account_id, post.post_id)


def test_activity_log_records_actions(world):
    alice = world.platform.register_account("Alice")
    bob = world.platform.register_account("Bob")
    post = world.platform.create_post(alice.account_id, "x")
    world.platform.like_post(bob.account_id, post.post_id)
    records = world.platform.activity_log.for_actor(bob.account_id)
    assert len(records) == 1
    assert records[0].verb == "like"
    assert records[0].target_owner_id == alice.account_id


def test_activity_log_merged_sorted(world):
    alice = world.platform.register_account("Alice")
    bob = world.platform.register_account("Bob")
    post = world.platform.create_post(alice.account_id, "x")
    world.clock.advance(10)
    world.platform.like_post(bob.account_id, post.post_id)
    merged = world.platform.activity_log.for_actors(
        [alice.account_id, bob.account_id])
    assert [r.verb for r in merged] == ["post", "like"]
    assert merged[0].created_at <= merged[1].created_at
