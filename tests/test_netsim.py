"""Tests for the network substrate: IPs, ASes, geolocation, pools."""

import random

import pytest

from repro.netsim.asn import AsRegistry
from repro.netsim.geo import GeoDatabase
from repro.netsim.ip import cidr_range, int_to_ip, ip_to_int
from repro.netsim.pools import IpPoolAllocator


def test_ip_round_trip():
    for address in ("0.0.0.0", "10.50.1.200", "255.255.255.255"):
        assert int_to_ip(ip_to_int(address)) == address


def test_ip_to_int_validates():
    for bad in ("1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"):
        with pytest.raises(ValueError):
            ip_to_int(bad)


def test_int_to_ip_range():
    with pytest.raises(ValueError):
        int_to_ip(-1)
    with pytest.raises(ValueError):
        int_to_ip(2 ** 32)


def test_cidr_range():
    start, end = cidr_range("10.50.0.0", 16)
    assert end - start + 1 == 2 ** 16
    assert int_to_ip(start) == "10.50.0.0"
    assert int_to_ip(end) == "10.50.255.255"


def test_cidr_masks_host_bits():
    start, _ = cidr_range("10.50.3.7", 16)
    assert int_to_ip(start) == "10.50.0.0"


def test_as_registry_lookup():
    registry = AsRegistry()
    registry.register(64500, "BulletShield", "RU", is_bulletproof=True)
    registry.announce(64500, "10.50.0.0", 16)
    system = registry.lookup("10.50.4.4")
    assert system.asn == 64500
    assert system.is_bulletproof
    assert registry.lookup("10.51.0.1") is None
    assert registry.asn_of("10.50.0.1") == 64500


def test_as_registry_rejects_overlap():
    registry = AsRegistry()
    registry.register(1, "A")
    registry.register(2, "B")
    registry.announce(1, "10.0.0.0", 16)
    with pytest.raises(ValueError):
        registry.announce(2, "10.0.128.0", 17)


def test_as_registry_duplicate_asn():
    registry = AsRegistry()
    registry.register(1, "A")
    with pytest.raises(ValueError):
        registry.register(1, "A again")


def test_as_registry_unknown_asn():
    registry = AsRegistry()
    with pytest.raises(KeyError):
        registry.get(9999)


def test_geo_assignment_and_lookup():
    geo = GeoDatabase()
    geo.assign("1.2.3.4", "IN")
    assert geo.country_of("1.2.3.4") == "IN"
    assert geo.country_of("4.3.2.1") is None


def test_geo_sampling_follows_mix():
    geo = GeoDatabase()
    rng = random.Random(1)
    sample = [geo.sample_country(rng) for _ in range(4000)]
    top, share = GeoDatabase.top_country_share(sample)
    assert top == "IN"
    assert 0.35 < share < 0.55


def test_geo_mix_must_sum_to_one():
    with pytest.raises(ValueError):
        GeoDatabase(default_mix=(("IN", 0.5), ("US", 0.6)))


def test_top_country_share_empty():
    with pytest.raises(ValueError):
        GeoDatabase.top_country_share([])


def test_pool_allocation_sequential():
    registry = AsRegistry()
    registry.register(64500, "A")
    registry.announce(64500, "10.50.0.0", 16)
    allocator = IpPoolAllocator(registry)
    pool = allocator.allocate("p1", "10.50.0.0", 3, asn=64500)
    assert pool.addresses == ["10.50.0.0", "10.50.0.1", "10.50.0.2"]
    # Next allocation from the same base continues where we left off.
    pool2 = allocator.allocate("p2", "10.50.0.0", 2)
    assert pool2.addresses == ["10.50.0.3", "10.50.0.4"]


def test_pool_asn_validation():
    registry = AsRegistry()
    registry.register(64500, "A")
    registry.announce(64500, "10.50.0.0", 16)
    allocator = IpPoolAllocator(registry)
    with pytest.raises(ValueError):
        allocator.allocate("p", "10.99.0.0", 2, asn=64500)


def test_pool_split_across_bases():
    registry = AsRegistry()
    registry.register(1, "A")
    registry.register(2, "B")
    registry.announce(1, "10.50.0.0", 16)
    registry.announce(2, "10.51.0.0", 16)
    allocator = IpPoolAllocator(registry)
    pool = allocator.allocate_split("split", ["10.50.0.0", "10.51.0.0"], 5)
    assert len(pool) == 5
    first_as = {registry.asn_of(a) for a in pool.addresses[:3]}
    second_as = {registry.asn_of(a) for a in pool.addresses[3:]}
    assert first_as == {1}
    assert second_as == {2}


def test_pool_pick_uniform():
    registry = AsRegistry()
    registry.register(1, "A")
    registry.announce(1, "10.50.0.0", 16)
    allocator = IpPoolAllocator(registry)
    pool = allocator.allocate("p", "10.50.0.0", 4)
    rng = random.Random(3)
    picks = {pool.pick(rng) for _ in range(100)}
    assert picks == set(pool.addresses)


def test_pool_size_positive():
    registry = AsRegistry()
    allocator = IpPoolAllocator(registry)
    with pytest.raises(ValueError):
        allocator.allocate("p", "10.0.0.0", 0)
