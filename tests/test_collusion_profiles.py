"""Tests for the profile data and pool calibration."""

import math

import pytest

from repro.collusion.profiles import (
    MILKED_PROFILES,
    SHORT_URL_SEEDS,
    TABLE2_SITES,
    calibrate_pool_size,
    profile_for,
    unique_table2_sites,
)


def test_twenty_two_milked_networks():
    assert len(MILKED_PROFILES) == 22
    domains = [p.domain for p in MILKED_PROFILES]
    assert len(set(domains)) == 22
    assert domains[0] == "hublaa.me"


def test_table4_totals_match_paper():
    # The paper's "All" row prints 11,751 posts / 1,150,782 members, but
    # its own 22 rows sum to 11,749 / 1,150,685; we encode the rows.
    assert sum(p.posts_milked for p in MILKED_PROFILES) == 11_749
    assert sum(p.membership_target for p in MILKED_PROFILES) == 1_150_685


def test_membership_ordering_matches_paper():
    targets = [p.membership_target for p in MILKED_PROFILES]
    assert targets == sorted(targets, reverse=True)
    assert profile_for("hublaa.me").membership_target == 294_949
    assert profile_for("official-liker.net").membership_target == 233_161
    assert profile_for("fast-liker.com").membership_target == 834


def test_profile_for_unknown():
    with pytest.raises(KeyError):
        profile_for("unknown.example")


def test_table2_has_fifty_rows_with_paper_duplicates():
    assert len(TABLE2_SITES) == 50
    domains = [s.domain for s in TABLE2_SITES]
    # The paper's table repeats these two domains.
    assert domains.count("royaliker.net") == 2
    assert domains.count("autolikesub.com") == 2
    assert len(unique_table2_sites()) == 48


def test_table2_rank_ordering():
    ranks = [s.alexa_rank for s in TABLE2_SITES]
    assert ranks[0] == 8_000
    assert ranks[-1] == 1_379_000


def test_seven_comment_networks():
    comment_nets = [p for p in MILKED_PROFILES
                    if p.comment_style is not None]
    assert len(comment_nets) == 7
    assert {p.domain for p in comment_nets} == {
        "myliker.com", "monkeyliker.com", "mg-likers.com",
        "monsterlikes.com", "kdliker.com", "arabfblike.com",
        "djliker.com",
    }


def test_daily_limits_from_paper():
    assert profile_for("djliker.com").daily_request_limit == 10
    assert profile_for("monkeyliker.com").daily_request_limit == 10
    assert profile_for("hublaa.me").daily_request_limit is None


def test_hublaa_infrastructure():
    hublaa = profile_for("hublaa.me")
    assert hublaa.ip_pool_size == 6000
    assert len(hublaa.asns) == 2
    official = profile_for("official-liker.net")
    assert official.ip_pool_size < 20


def test_thirteen_short_urls():
    assert len(SHORT_URL_SEEDS) == 13
    clicks = [s.seed_clicks for s in SHORT_URL_SEEDS]
    assert max(clicks) == 147_959_735


# ----------------------------------------------------------------------
# Pool calibration
# ----------------------------------------------------------------------

def test_calibration_inverts_coverage():
    pool = calibrate_pool_size(unique_target=295_000, total_draws=497_000)
    observed = pool * (1 - math.exp(-497_000 / pool))
    assert observed == pytest.approx(295_000, rel=0.001)


def test_calibration_saturated_pool():
    # Heavy oversampling: the pool barely exceeds the observed uniques.
    pool = calibrate_pool_size(unique_target=834, total_draws=10_208)
    assert 834 <= pool <= 850


def test_calibration_validates():
    with pytest.raises(ValueError):
        calibrate_pool_size(0, 100)
    with pytest.raises(ValueError):
        calibrate_pool_size(200, 100)


def test_profile_pool_size_scales():
    hublaa = profile_for("hublaa.me")
    full = hublaa.pool_size(1.0)
    half = hublaa.pool_size(0.5)
    assert full > hublaa.membership_target  # true pool exceeds observed
    assert half == pytest.approx(full * 0.5, rel=0.05)


def test_pool_size_small_scale_degenerate():
    tiny = profile_for("fast-liker.com")
    # At tiny scales draws may not exceed the target; pool = draws.
    assert tiny.pool_size(0.001) >= 1
