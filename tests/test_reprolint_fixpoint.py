"""Fixpoint engine: deep-chain taint the one-level pass misses, SCC
convergence, and the mutation-effect lattice RL4xx builds on."""

import textwrap
from pathlib import Path

from repro.lint import lint_source
from repro.lint.graph import ProjectGraph
from repro.lint.rules import ModuleContext
from repro.lint.summaries import build_summaries_one_level

DATA = (Path(__file__).resolve().parent / "data" / "reprolint" /
        "taint")


def fixture_source(name, kind="violations"):
    return (DATA / kind / name).read_text(encoding="utf-8")


def graph_of(source, path="repro/oauth/helpers.py"):
    ctx = ModuleContext.build(path, textwrap.dedent(source))
    return ProjectGraph.build([ctx])


def summary(graph, suffix):
    for qname, fn_summary in graph.summaries.items():
        if qname.endswith(suffix):
            return fn_summary
    raise AssertionError(f"no summary for *{suffix}")


# ----------------------------------------------------------------------
# The acceptance chain: a 2-hop flow one-level summaries cannot see.
# ----------------------------------------------------------------------
def test_two_hop_fixture_pair():
    findings = lint_source(fixture_source("rl101_two_hop.py"),
                           path="repro/oauth/helpers.py")
    assert [f.rule for f in findings] == ["RL101"]
    # The call site in emit(), not the helpers.
    assert findings[0].line == 20
    assert lint_source(
        fixture_source("rl101_two_hop_redacted.py", kind="clean"),
        path="repro/oauth/helpers.py") == []


def test_fixpoint_beats_one_level_on_the_two_hop_chain():
    """Pinned: the old single pass leaves describe() summaryless about
    fmt() (defined later in the file), so the chain is invisible; the
    fixpoint iterates to convergence and carries it."""
    source = fixture_source("rl101_two_hop.py")
    deep = graph_of(source)
    assert summary(deep, ".describe").taint_through == {"value"}

    shallow = graph_of(source)
    shallow.summaries = {}
    build_summaries_one_level(shallow)
    assert summary(shallow, ".describe").taint_through == set()


# ----------------------------------------------------------------------
# Convergence
# ----------------------------------------------------------------------
def test_mutual_recursion_converges_and_propagates():
    # a <-> b form one SCC; the param-to-sink fact in a() must reach
    # callers of b() without the solver spinning forever.
    findings = lint_source(textwrap.dedent("""
        def a(value, log, n):
            if n == 0:
                log.warning("token %s", value)
                return
            b(value, log, n - 1)

        def b(value, log, n):
            a(value, log, n)

        def emit(access_token, log):
            b(access_token, log, 3)
    """), path="repro/oauth/helpers.py")
    assert [f.rule for f in findings] == ["RL101"]
    assert findings[0].line == 12


def test_self_recursion_terminates():
    graph = graph_of("""
        def spin(value, n):
            if n == 0:
                return value
            return spin(value, n - 1)
    """)
    assert summary(graph, ".spin").taint_through == {"value"}


# ----------------------------------------------------------------------
# Mutation-effect lattice
# ----------------------------------------------------------------------
def test_self_writes_inherit_through_self_calls():
    graph = graph_of("""
        class Counter:
            def __init__(self):
                self.count = 0

            def _bump(self):
                self.count += 1

            def record(self):
                self._bump()
    """)
    assert "count" in summary(graph, ".Counter.record").self_writes


def test_constructing_the_same_class_does_not_donate_writes():
    # Regression: Factory.child() builds a *new* instance; __init__'s
    # writes land on that object, not on self, so child() must not be
    # treated as mutating self.seed.
    graph = graph_of("""
        class Factory:
            def __init__(self, seed):
                self.seed = seed

            def child(self):
                return Factory(self.seed + 1)
    """)
    assert summary(graph, ".Factory.child").self_writes == set()


def test_global_writes_are_transitive():
    graph = graph_of("""
        REGISTRY = {}

        def _note(key):
            REGISTRY[key] = True

        def outer(key):
            _note(key)
    """)
    assert "REGISTRY" in summary(graph, ".outer").global_writes


def test_returns_taint_flows_through_implicit_dataclass_ctor():
    # The recovery.py shape: a token-table export is wrapped in a
    # record dataclass (no explicit __init__) and only then persisted.
    findings = lint_source(textwrap.dedent("""
        from dataclasses import dataclass


        @dataclass
        class DayImage:
            payload: dict
            day: int


        def capture(tokens, day):
            return DayImage(payload=tokens.export_state(), day=day)


        def persist(store, tokens, day):
            store.save("day", capture(tokens, day))
    """), path="repro/oauth/helpers.py")
    assert [f.rule for f in findings] == ["RL103"]
    assert findings[0].line == 16
