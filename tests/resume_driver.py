#!/usr/bin/env python3
"""Subprocess driver for the crash-recovery acceptance tests.

Runs the same compressed two-network campaign as
``test_sharded_campaign._run`` with an optional WAL journal, an optional
mid-day SIGKILL (the "pull the power cord" half of the contract) and an
optional ``torn_tail`` fault plan (the "disk ate the tail" half).
Prints the request-log digest and resume metadata for the test to
compare across processes; run with ``PYTHONHASHSEED=0`` so set layouts
agree between the reference and resumed runs.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys

from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.countermeasures.campaign import (
    CampaignConfig,
    CountermeasureCampaign,
)
from repro.countermeasures.recovery import CampaignRecovery
from repro.faults.plan import FaultPlan, FaultRule
from repro.sanitizer import SANITIZER, write_sanitizer
from repro.sim.clock import DAY
from repro.telemetry.registry import TELEMETRY

#: Families excluded from the printed fingerprint: ``shard_`` describes
#: the execution strategy, ``journal_`` counts WAL frames/recoveries —
#: both legitimately differ between a journal-less reference, a
#: journaled run and a crash-resumed run, while every workload-derived
#: series must match exactly.
FINGERPRINT_EXCLUDES = ("shard_", "journal_")

NETWORKS = ("fb-autolikers.com", "autolike.vn")
SCALE = 0.004
DAYS = 12
SEED = 31


def build(fault_plan=None):
    world = World(StudyConfig(scale=SCALE, seed=SEED,
                              fault_plan=fault_plan or FaultPlan()))
    AppCatalog(world.apps, world.rng.stream("catalog"),
               tail_apps=0).build()
    ecosystem = build_ecosystem(world, build_membership=False,
                                network_limit=13)
    for domain in NETWORKS:
        network = ecosystem.network(domain)
        network.build_membership(network.profile.pool_size(SCALE))
    config = CampaignConfig.compressed(
        DAYS, networks=NETWORKS, outgoing_per_hour=0.0, shards=1,
        hublaa_outage=None)
    return world, CountermeasureCampaign(world, ecosystem, config)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--journal", default=None)
    parser.add_argument("--kill-day", type=int, default=None,
                        help="SIGKILL this process halfway through the "
                             "given campaign day")
    parser.add_argument("--torn-day", type=int, default=None,
                        help="fault plan: tear the journal tail while "
                             "sealing this campaign day")
    parser.add_argument("--no-resume", action="store_true")
    parser.add_argument("--sanitize", default=None,
                        help="record a reprosan trace and write its "
                             "manifest to this directory")
    args = parser.parse_args()

    if args.sanitize:
        SANITIZER.reset()
        SANITIZER.enable()

    plan = None
    if args.torn_day is not None:
        plan = FaultPlan((FaultRule(kind="torn_tail", probability=1.0,
                                    start_day=args.torn_day,
                                    end_day=args.torn_day + 1),))
    world, campaign = build(plan)

    recovery = None
    if args.journal:
        recovery = CampaignRecovery(args.journal,
                                    resume=not args.no_resume)
        if args.kill_day is not None:
            kill_day = args.kill_day
            orig_begin = recovery.begin_day

            def begin_day(campaign, day):
                orig_begin(campaign, day)
                if day == kill_day:
                    campaign.world.scheduler.at(
                        campaign.world.clock.now() + DAY // 2,
                        lambda: os.kill(os.getpid(), signal.SIGKILL),
                        label="chaos: kill -9")

            recovery.begin_day = begin_day

    TELEMETRY.reset()
    TELEMETRY.enable()
    results = campaign.run(recovery=recovery)
    print("digest", world.api.log.digest())
    print("rows", len(world.api.log))
    print("resumed_from", results.resumed_from_day)
    print("telemetry_fingerprint",
          TELEMETRY.fingerprint(exclude_prefixes=FINGERPRINT_EXCLUDES))
    if recovery is not None:
        print("report", recovery.describe().replace("\n", " | "))
    if args.sanitize:
        write_sanitizer(args.sanitize)
        print("sanitizer_fingerprint", SANITIZER.fingerprint())
    return 0


if __name__ == "__main__":
    sys.exit(main())
