"""Facebook-style error envelope round-trips.

Each error is (where practical) raised by a *real* API call and then
rendered through :func:`error_envelope`, asserting the documented
numeric code / subcode / type triple of the Graph API wire format.
"""

from __future__ import annotations

import pytest

from repro.core.config import StudyConfig
from repro.core.world import World
from repro.faults.plan import transient_plan
from repro.graphapi.errors import (
    ApiTimeout,
    AppSecretRequiredError,
    BlockedSourceError,
    GraphApiError,
    IpRateLimitError,
    PermissionDeniedError,
    RateLimitExceededError,
    TransientApiError,
    error_envelope,
)
from repro.oauth.apps import AppSecuritySettings
from repro.oauth.errors import InvalidTokenError, OAuthError
from repro.oauth.scopes import PermissionScope
from repro.oauth.server import AuthorizationRequest
from repro.oauth.tokens import TokenLifetime
from repro.sim.clock import DAY


def _install(world, *, scope=None, settings=AppSecuritySettings(True, False),
             lifetime=TokenLifetime.LONG_TERM):
    scope = scope or PermissionScope.full()
    app = world.apps.register(
        "Envelope App", "https://envelope.example/cb",
        security=settings, approved_permissions=scope,
        token_lifetime=lifetime,
    )
    user = world.platform.register_account("User")
    target = world.platform.register_account("Target")
    post = world.platform.create_post(target.account_id, "content")
    result = world.auth_server.authorize(
        AuthorizationRequest(app.app_id, app.redirect_uri, "token", scope),
        user.account_id)
    return post, result.access_token.token


def _capture(call, *args, **kwargs):
    with pytest.raises(Exception) as info:
        call(*args, **kwargs)
    return info.value


# ----------------------------------------------------------------------
# OAuthException 190 family (token errors)
# ----------------------------------------------------------------------
def test_unknown_token_is_190_467(world):
    error = _capture(world.api.get_profile, "no-such-token")
    assert isinstance(error, InvalidTokenError)
    body = error_envelope(error)["error"]
    assert body["type"] == "OAuthException"
    assert body["code"] == 190
    assert body["error_subcode"] == 467
    assert not body["is_transient"]


def test_invalidated_token_is_190_466(world):
    post, token = _install(world)
    world.tokens.invalidate(token)
    error = _capture(world.api.like_post, token, post.post_id)
    body = error_envelope(error)["error"]
    assert (body["code"], body["error_subcode"]) == (190, 466)


def test_expired_token_is_190_463(world):
    post, token = _install(world, lifetime=TokenLifetime.SHORT_TERM)
    world.clock.advance(90 * DAY)
    error = _capture(world.api.like_post, token, post.post_id)
    assert "expired" in str(error)
    body = error_envelope(error)["error"]
    assert (body["code"], body["error_subcode"]) == (190, 463)


# ----------------------------------------------------------------------
# Remaining GraphApiError hierarchy
# ----------------------------------------------------------------------
def test_permission_denied_is_200(world):
    post, token = _install(world, scope=PermissionScope.basic())
    error = _capture(world.api.like_post, token, post.post_id)
    assert isinstance(error, PermissionDeniedError)
    body = error_envelope(error)["error"]
    assert body["code"] == 200
    assert body["type"] == "OAuthException"


def test_app_secret_required_is_104(world):
    post, token = _install(world,
                           settings=AppSecuritySettings(True, True))
    error = _capture(world.api.get_profile, token)
    assert isinstance(error, AppSecretRequiredError)
    assert error_envelope(error)["error"]["code"] == 104


def test_token_rate_limit_is_17_transient(world):
    post, token = _install(world)
    world.policy.token_actions_per_day = 1
    world.api.like_post(token, post.post_id)
    error = _capture(world.api.comment, token, post.post_id, "hi")
    assert isinstance(error, RateLimitExceededError)
    body = error_envelope(error)["error"]
    assert body["code"] == 17
    assert body["is_transient"]


def test_ip_rate_limit_is_613(world):
    post, token = _install(world)
    other = world.platform.create_post(
        world.platform.register_account("Other").account_id, "p2")
    world.policy.ip_likes_per_day = 1
    world.api.like_post(token, post.post_id, source_ip="10.1.2.3")
    error = _capture(world.api.like_post, token, other.post_id,
                     source_ip="10.1.2.3")
    assert isinstance(error, IpRateLimitError)
    body = error_envelope(error)["error"]
    assert body["code"] == 613
    assert body["is_transient"]


def test_blocked_source_is_368():
    body = error_envelope(BlockedSourceError("1.2.3.4", 64496))["error"]
    assert body["code"] == 368
    assert not body["is_transient"]


def test_injected_transient_is_code_2():
    world = World(StudyConfig(scale=0.01, seed=42,
                              fault_plan=transient_plan(1.0)))
    post, token = _install(world)
    error = _capture(world.api.like_post, token, post.post_id)
    assert isinstance(error, TransientApiError)
    body = error_envelope(error)["error"]
    assert body["code"] == 2
    assert body["is_transient"]
    assert "error_subcode" not in body


def test_timeout_carries_subcode_1342004():
    body = error_envelope(ApiTimeout())["error"]
    assert body["code"] == 2
    assert body["error_subcode"] == 1342004
    assert body["is_transient"]


# ----------------------------------------------------------------------
# Fallbacks
# ----------------------------------------------------------------------
def test_generic_oauth_error_is_code_1():
    body = error_envelope(OAuthError("flow rejected"))["error"]
    assert body["code"] == 1
    assert body["type"] == "OAuthException"


def test_generic_graph_error_defaults():
    body = error_envelope(GraphApiError("unknown method"))["error"]
    assert body["code"] == 1
    assert body["type"] == "GraphMethodException"


def test_non_api_error_is_rejected():
    with pytest.raises(TypeError):
        error_envelope(ValueError("not an API error"))
