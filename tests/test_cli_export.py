"""Tests for the CLI and the export helpers."""

import csv
import io
import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import export


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_scan_text(capsys):
    assert main(["scan", "--scale", "0.01", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "55 susceptible" in out
    assert "Spotify" in out


def test_cli_scan_json(capsys):
    assert main(["scan", "--scale", "0.01", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["susceptible"] == 55
    assert len(payload["rows"]) == 9


def test_cli_out_file(tmp_path, capsys):
    target = tmp_path / "scan.txt"
    assert main(["scan", "--scale", "0.01", "--out", str(target)]) == 0
    capsys.readouterr()
    assert "55 susceptible" in target.read_text()


def test_cli_milk_json(capsys):
    assert main(["milk", "--scale", "0.002", "--days", "3",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "table4" in payload and "table6" in payload
    domains = {row["domain"] for row in payload["table4"]["rows"]}
    assert "hublaa.me" in domains


# ----------------------------------------------------------------------
# Export helpers over a real mini report
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def mini_report():
    from repro import Study, StudyConfig
    from repro.countermeasures.campaign import CampaignConfig

    study = Study(StudyConfig(scale=0.002, seed=47, milking_days=3,
                              network_limit=3))
    study.build()
    study.milk()
    study.run_countermeasures(CampaignConfig(
        days=6, posts_per_day=4, rate_limit_day=2, invalidate_half_day=3,
        invalidate_all_day=4, daily_half_start_day=4,
        daily_all_start_day=5, ip_limit_day=5, clustering_start_day=6,
        as_block_day=6, hublaa_outage=None, outgoing_per_hour=0.5))
    return study.report()


def test_report_to_json_round_trips(mini_report):
    payload = json.loads(export.report_to_json(mini_report))
    assert payload["table1"]["susceptible"] == 55
    assert "rows" in payload["table4"]
    assert "series" in payload["fig5"]


def test_table4_csv(mini_report):
    text = export.table4_to_csv(mini_report.table4)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0][0] == "collusion_network"
    assert len(rows) == len(mini_report.table4.rows) + 1


def test_fig5_csv(mini_report):
    text = export.fig5_series_to_csv(mini_report.fig5)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0][0] == "day"
    assert len(rows) == 7  # header + 6 days


def test_fig4_csv(mini_report):
    text = export.fig4_curves_to_csv(mini_report.fig4)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["network", "post_index", "cumulative_likes",
                       "cumulative_unique_accounts"]
    assert len(rows) > 1


def test_cli_run_journal_summary_and_noop_resume(tmp_path, capsys):
    """`repro run --journal` prints the durability summary (checkpoint
    hits/misses, shard fallback reasons, journal state, log digest) and
    a --resume over a completed journal restores instead of re-running."""
    import json as _json

    journal = str(tmp_path / "journal")
    args = ["run", "--scale", "0.002", "--seed", "5",
            "--milking-days", "2", "--campaign-days", "10",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--journal", journal]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "run summary:" in out
    assert "experiment checkpoints:" in out
    assert "hit(s)" in out and "miss(es)" in out
    assert "sealed through day 10" in out
    assert "request log:" in out and "digest" in out
    digest = out.split("digest ")[-1].strip()

    assert main(args + ["--resume", "--json"]) == 0
    payload = _json.loads(capsys.readouterr().out)
    run = payload["run"]
    # Every campaign day was already sealed + checkpointed: the resumed
    # run restores the final day's state and re-executes nothing.
    assert run["resumed_from_day"] == 11
    assert run["checkpoint_hits"] > 0
    # The full-log digest legitimately differs here: experiment jobs
    # were checkpoint hits, so their API rows were never re-logged.
    # Byte-identical campaign convergence is test_campaign_resume.py's.
    assert len(run["log_digest"]) == 32
    assert run["log_digest"] != digest
    assert run["shard_blockers"] == []
