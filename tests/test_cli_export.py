"""Tests for the CLI and the export helpers."""

import csv
import io
import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import export


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_scan_text(capsys):
    assert main(["scan", "--scale", "0.01", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "55 susceptible" in out
    assert "Spotify" in out


def test_cli_scan_json(capsys):
    assert main(["scan", "--scale", "0.01", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["susceptible"] == 55
    assert len(payload["rows"]) == 9


def test_cli_out_file(tmp_path, capsys):
    target = tmp_path / "scan.txt"
    assert main(["scan", "--scale", "0.01", "--out", str(target)]) == 0
    capsys.readouterr()
    assert "55 susceptible" in target.read_text()


def test_cli_milk_json(capsys):
    assert main(["milk", "--scale", "0.002", "--days", "3",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "table4" in payload and "table6" in payload
    domains = {row["domain"] for row in payload["table4"]["rows"]}
    assert "hublaa.me" in domains


# ----------------------------------------------------------------------
# Export helpers over a real mini report
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def mini_report():
    from repro import Study, StudyConfig
    from repro.countermeasures.campaign import CampaignConfig

    study = Study(StudyConfig(scale=0.002, seed=47, milking_days=3,
                              network_limit=3))
    study.build()
    study.milk()
    study.run_countermeasures(CampaignConfig(
        days=6, posts_per_day=4, rate_limit_day=2, invalidate_half_day=3,
        invalidate_all_day=4, daily_half_start_day=4,
        daily_all_start_day=5, ip_limit_day=5, clustering_start_day=6,
        as_block_day=6, hublaa_outage=None, outgoing_per_hour=0.5))
    return study.report()


def test_report_to_json_round_trips(mini_report):
    payload = json.loads(export.report_to_json(mini_report))
    assert payload["table1"]["susceptible"] == 55
    assert "rows" in payload["table4"]
    assert "series" in payload["fig5"]


def test_table4_csv(mini_report):
    text = export.table4_to_csv(mini_report.table4)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0][0] == "collusion_network"
    assert len(rows) == len(mini_report.table4.rows) + 1


def test_fig5_csv(mini_report):
    text = export.fig5_series_to_csv(mini_report.fig5)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0][0] == "day"
    assert len(rows) == 7  # header + 6 days


def test_fig4_csv(mini_report):
    text = export.fig4_curves_to_csv(mini_report.fig4)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["network", "post_index", "cumulative_likes",
                       "cumulative_unique_accounts"]
    assert len(rows) > 1
