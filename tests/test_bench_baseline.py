"""Baseline-tree validation for the benchmark harness.

A bad ``--baseline`` (missing worktree, wrong directory, uncommitted
changes) must fail fast with an actionable message, not a traceback
halfway through a benchmark run.
"""

from __future__ import annotations

import subprocess

import pytest

from repro import cli
from repro.perf.bench import BaselineError, _git_root, validate_baseline


def _fake_src(tmp_path):
    src = tmp_path / "src"
    (src / "repro").mkdir(parents=True)
    (src / "repro" / "__init__.py").write_text("")
    return src


def test_missing_dir_suggests_git_worktree(tmp_path):
    with pytest.raises(BaselineError, match="git worktree add"):
        validate_baseline(str(tmp_path / "nope" / "src"))


def test_checkout_root_instead_of_src_dir(tmp_path):
    with pytest.raises(BaselineError, match="not the checkout root"):
        validate_baseline(str(tmp_path))  # exists but has no repro pkg


def test_clean_non_git_tree_passes(tmp_path):
    validate_baseline(str(_fake_src(tmp_path)))  # no error


def test_dirty_git_worktree_rejected(tmp_path):
    src = _fake_src(tmp_path)
    try:
        subprocess.run(["git", "init", "-q", str(tmp_path)], check=True,
                       timeout=30)
        subprocess.run(["git", "-C", str(tmp_path), "add", "-A"],
                       check=True, timeout=30)
        subprocess.run(
            ["git", "-C", str(tmp_path), "-c", "user.email=t@t",
             "-c", "user.name=t", "commit", "-qm", "baseline"],
            check=True, timeout=30)
    except (OSError, subprocess.CalledProcessError):
        pytest.skip("git unavailable")
    validate_baseline(str(src))  # clean: passes
    (src / "repro" / "__init__.py").write_text("# dirtied\n")
    with pytest.raises(BaselineError, match="uncommitted changes"):
        validate_baseline(str(src))


def test_git_root_walks_up(tmp_path):
    src = _fake_src(tmp_path)
    assert _git_root(str(src)) is None
    (tmp_path / ".git").mkdir()
    assert _git_root(str(src)) == str(tmp_path)


def test_cli_bench_reports_bad_baseline_cleanly(tmp_path, capsys):
    rc = cli.main(["bench", "--scale", "0.002",
                   "--baseline", str(tmp_path / "missing" / "src")])
    assert rc == 2
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "git worktree add" in captured.err
    assert "Traceback" not in captured.err
