"""Engine-level reprolint tests: pragmas, baseline, CLI, exit codes."""

import json
import shutil
import textwrap
from pathlib import Path

from repro.cli import main as repro_main
from repro.lint import LintEngine, lint_source
from repro.lint.baseline import Baseline
from repro.lint.cli import main as lint_main
from repro.lint.findings import Severity

FIXTURES = Path(__file__).parent / "data" / "reprolint"


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
def test_line_pragma_suppresses_only_that_line():
    findings = lint_source(textwrap.dedent("""
        import time

        def f():
            a = time.time()  # reprolint: disable=RL001 — perf probe
            b = time.time()
            return a, b
    """))
    assert [(f.rule, f.line) for f in findings] == [("RL001", 6)]


def test_file_pragma_and_disable_all():
    clean = lint_source(textwrap.dedent("""
        # reprolint: disable-file=RL001
        import time

        def f():
            return time.time()
    """))
    assert clean == []
    all_off = lint_source(textwrap.dedent("""
        import random

        def f():
            return random.random()  # reprolint: disable=all
    """))
    assert all_off == []


def test_pragma_for_other_rule_does_not_suppress():
    findings = lint_source(textwrap.dedent("""
        import time

        def f():
            return time.time()  # reprolint: disable=RL002
    """))
    assert [f.rule for f in findings] == ["RL001"]


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _violating_tree(tmp_path):
    tree = tmp_path / "fixture"
    shutil.copytree(FIXTURES / "violations", tree)
    return tree


def test_baseline_grandfathers_old_findings_fails_new(tmp_path):
    tree = _violating_tree(tmp_path)
    engine = LintEngine()
    first = engine.run([tree])
    assert first.failing(Severity.WARNING)

    baseline = Baseline.from_findings(first.findings)
    grandfathered = engine.run([tree], baseline=baseline)
    assert grandfathered.failing(Severity.WARNING) == []
    assert all(f.baselined for f in grandfathered.findings)
    assert grandfathered.exit_code(Severity.WARNING) == 0

    # A brand-new violation still fails against the old baseline.
    extra = tree / "new_module.py"
    extra.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    third = engine.run([tree], baseline=baseline)
    failing = third.failing(Severity.WARNING)
    assert [f.rule for f in failing] == ["RL001"]
    assert failing[0].path == "fixture/new_module.py"


def test_baseline_roundtrip_and_stale_entries(tmp_path):
    tree = _violating_tree(tmp_path)
    engine = LintEngine()
    report = engine.run([tree])
    path = tmp_path / "baseline.json"
    Baseline.from_findings(report.findings).dump(path)
    loaded = Baseline.load(path)
    assert len(loaded) == len(report.findings)

    # Fix one file: its baseline entries become stale, nothing fails.
    (tree / "rl005_exceptions.py").write_text("VALUE = 1\n")
    rerun = engine.run([tree], baseline=loaded)
    assert rerun.failing(Severity.WARNING) == []
    assert any(rule == "RL005" for _, rule, _ in rerun.stale_baseline)


# ----------------------------------------------------------------------
# CLI (both entry points share one implementation)
# ----------------------------------------------------------------------
def test_cli_nonzero_on_fixture_tree_with_every_rule(tmp_path, capsys):
    tree = _violating_tree(tmp_path)
    exit_code = lint_main([str(tree), "--no-baseline", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    seen = {row["rule"] for row in payload["findings"]}
    assert {"RL001", "RL002", "RL003", "RL004", "RL005"} <= seen
    assert payload["summary"]["failing"] > 0


def test_repro_cli_lint_subcommand(tmp_path, capsys):
    tree = _violating_tree(tmp_path)
    assert repro_main(["lint", str(tree), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out and "RL005" in out

    clean = FIXTURES / "clean"
    assert repro_main(["lint", str(clean), "--no-baseline"]) == 0


def test_cli_fail_on_thresholds(tmp_path):
    tree = tmp_path / "warn_only"
    tree.mkdir()
    (tree / "mod.py").write_text(textwrap.dedent("""
        def f(x):
            try:
                return x()
            except Exception:
                return None
    """))
    # RL005 is warning severity: fails at --fail-on warning, passes
    # at --fail-on error, passes at --fail-on never.
    assert lint_main([str(tree), "--no-baseline"]) == 1
    assert lint_main([str(tree), "--no-baseline",
                      "--fail-on", "error"]) == 0
    assert lint_main([str(tree), "--no-baseline",
                      "--fail-on", "never"]) == 0


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    tree = _violating_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert lint_main([str(tree), "--baseline", str(baseline),
                      "--write-baseline"]) == 0
    assert baseline.is_file()
    assert lint_main([str(tree), "--baseline", str(baseline)]) == 0
    capsys.readouterr()


def test_cli_missing_path_and_bad_baseline(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope")]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text("{\"version\": 99}")
    tree = tmp_path / "empty"
    tree.mkdir()
    assert lint_main([str(tree), "--baseline", str(bad)]) == 2
    capsys.readouterr()


def test_syntax_error_is_reported_not_crashed(tmp_path, capsys):
    tree = tmp_path / "broken"
    tree.mkdir()
    (tree / "mod.py").write_text("def f(:\n")
    assert lint_main([str(tree), "--no-baseline"]) == 1
    assert "RL000" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Parse cache: stat fast path, content-digest fallback, --json stats
# ----------------------------------------------------------------------
def test_parse_cache_content_hash_rescues_touched_files(tmp_path):
    import os

    engine = LintEngine(allowlist={})
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    pairs = [("repro/mod.py", target)]

    engine.run_files(pairs)                      # prime the cache
    second = engine.run_files(pairs)
    assert second.cache_stats["stat_hits"] == 1
    assert second.cache_stats["misses"] == 0

    # Same bytes, new mtime (a touch / fresh checkout): the digest
    # fallback rescues the hit instead of re-parsing.
    stat = target.stat()
    os.utime(target, ns=(stat.st_atime_ns + 10_000_000_000,
                         stat.st_mtime_ns + 10_000_000_000))
    third = engine.run_files(pairs)
    assert third.cache_stats["content_hits"] == 1
    assert third.cache_stats["misses"] == 0

    # And the refreshed signature serves the next run via stat alone.
    fourth = engine.run_files(pairs)
    assert fourth.cache_stats["stat_hits"] == 1
    assert fourth.cache_stats["content_hits"] == 0

    # An actual edit re-parses.
    target.write_text("y = 2\n", encoding="utf-8")
    fifth = engine.run_files(pairs)
    assert fifth.cache_stats["misses"] == 1


def test_json_output_reports_parse_cache_counts(tmp_path, capsys):
    target = tmp_path / "ok.py"
    target.write_text("x = 1\n", encoding="utf-8")
    assert lint_main([str(target), "--no-baseline", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    cache = payload["parse_cache"]
    assert set(cache) == {"stat_hits", "content_hits", "misses"}
    assert sum(cache.values()) == 1
