"""Tests for comment dictionaries and the word bank."""

import random

import pytest

from repro.collusion.comments import CommentDictionary, CommentStyle
from repro.collusion.wordbank import sample_phrase, spaced_out
from repro.lexical.analysis import analyze_comments
from repro.lexical.wordlist import is_dictionary_word


def test_spaced_out():
    assert spaced_out("awesome") == "AW E S O M E"


def test_sample_phrase_length():
    rng = random.Random(1)
    assert len(sample_phrase(rng, 4, 0.0)) == 4
    with pytest.raises(ValueError):
        sample_phrase(rng, 0, 0.0)


def test_sample_phrase_dictionary_purity():
    rng = random.Random(1)
    tokens = sample_phrase(rng, 200, 0.0)
    assert all(is_dictionary_word(t) for t in tokens)


def test_sample_phrase_junk_rate():
    rng = random.Random(1)
    tokens = sample_phrase(rng, 2000, 1.0)
    junk = sum(1 for t in tokens if not is_dictionary_word(t))
    assert junk / len(tokens) > 0.9


def test_dictionary_size_respected():
    style = CommentStyle(dictionary_size=25)
    dictionary = CommentDictionary(style, random.Random(2))
    assert len(dictionary) == 25
    assert len(set(dictionary.comments)) == 25


def test_dictionary_sampling_repeats():
    style = CommentStyle(dictionary_size=10)
    dictionary = CommentDictionary(style, random.Random(3))
    rng = random.Random(4)
    sample = dictionary.sample_many(rng, 500)
    assert set(sample) <= set(dictionary.comments)
    assert len(set(sample)) <= 10


def test_dictionary_validates():
    with pytest.raises(ValueError):
        CommentDictionary(CommentStyle(dictionary_size=0),
                          random.Random(1))


def test_generated_corpus_matches_table6_statistics():
    """Sampling from a small dictionary produces Table 6's signature:
    low unique-comment share, low lexical richness, non-trivial
    non-dictionary share."""
    style = CommentStyle(dictionary_size=40, mean_words=3,
                         non_dictionary_rate=0.2)
    dictionary = CommentDictionary(style, random.Random(5))
    rng = random.Random(6)
    comments = dictionary.sample_many(rng, 2000)
    analysis = analyze_comments(comments, posts=120)
    assert analysis.unique_comments <= 40
    assert analysis.unique_comment_pct < 5
    assert analysis.lexical_richness_pct < 10
    assert 5 < analysis.non_dictionary_pct < 45
    assert 5 < analysis.ari < 35
