"""Tests for evasion gates and monetization plumbing."""

import random

import pytest

from repro.collusion.evasion import CaptchaChallengeCounter, RequestGate
from repro.collusion.monetization import (
    MonetizationProfile,
    default_ad_profile,
    default_premium_plans,
)
from repro.webintel.adnetworks import AdNetwork


def test_gate_delay_range():
    gate = RequestGate(min_delay=100, max_delay=200)
    rng = random.Random(1)
    delays = [gate.delay_for(rng) for _ in range(100)]
    assert all(100 <= d <= 200 for d in delays)
    assert len(set(delays)) > 1


def test_gate_fixed_delay():
    gate = RequestGate(min_delay=300, max_delay=300)
    assert gate.delay_for(random.Random(2)) == 300


def test_gate_invalid_range():
    gate = RequestGate(min_delay=200, max_delay=100)
    with pytest.raises(ValueError):
        gate.delay_for(random.Random(3))


def test_captcha_counter():
    counter = CaptchaChallengeCounter()
    counter.challenge()
    counter.challenge()
    counter.record_solution()
    assert counter.issued == 2
    assert counter.solved == 1
    assert counter.outstanding == 1


def test_default_plans_ladder():
    plans = default_premium_plans(free_likes=100)
    assert [p.name for p in plans] == ["basic", "pro", "ultimate"]
    likes = [p.likes_per_request for p in plans]
    assert likes == sorted(likes)
    assert plans[-1].likes_per_request == 2000  # §5.1, mg-likers max plan


def test_monetization_unknown_plan():
    profile = MonetizationProfile("x.com", free_likes_per_request=50,
                                  premium_plans=default_premium_plans(50))
    with pytest.raises(KeyError):
        profile.plan("platinum")
    with pytest.raises(KeyError):
        profile.subscribe("m1", "platinum")


def test_monetization_free_tier_default():
    profile = MonetizationProfile("x.com", free_likes_per_request=50)
    assert profile.likes_per_request_for("anyone") == 50
    assert profile.monthly_revenue_usd() == 0.0


def test_default_ad_profile_shape():
    profile = default_ad_profile("liker.com", "redirect.example")
    assert AdNetwork.ADSENSE in profile.redirect_networks[
        "redirect.example"]
    assert profile.anti_adblock
    assert AdNetwork.ADSENSE not in profile.direct_networks


def test_auto_delivery_boosts_subscriber_posts():
    """§5.1: auto-delivery plans push likes without a manual request."""
    from repro.apps.catalog import AppCatalog
    from repro.collusion.ecosystem import build_ecosystem
    from repro.core.config import StudyConfig
    from repro.core.world import World

    w = World(StudyConfig(scale=0.002, seed=53))
    AppCatalog(w.apps, w.rng.stream("catalog"), tail_apps=0).build()
    eco = build_ecosystem(w, network_limit=1)
    network = eco.network("hublaa.me")
    member = network.join()
    network.monetization.subscribe(member, "pro")  # auto_delivery=True
    post = w.platform.create_post(member, "premium post")
    assert w.platform.get_post(post.post_id).like_count == 0
    network.daily_tick()
    boosted = w.platform.get_post(post.post_id).like_count
    assert boosted > 0
    # Same post is not boosted twice; a new post is.
    network.daily_tick()
    assert w.platform.get_post(post.post_id).like_count == boosted
    newer = w.platform.create_post(member, "another premium post")
    network.daily_tick()
    assert w.platform.get_post(newer.post_id).like_count > 0


def test_basic_plan_has_no_auto_delivery():
    from repro.apps.catalog import AppCatalog
    from repro.collusion.ecosystem import build_ecosystem
    from repro.core.config import StudyConfig
    from repro.core.world import World

    w = World(StudyConfig(scale=0.002, seed=54))
    AppCatalog(w.apps, w.rng.stream("catalog"), tail_apps=0).build()
    eco = build_ecosystem(w, network_limit=1)
    network = eco.network("hublaa.me")
    member = network.join()
    network.monetization.subscribe(member, "basic")
    post = w.platform.create_post(member, "basic-tier post")
    network.daily_tick()
    assert w.platform.get_post(post.post_id).like_count == 0
