"""Tests for the discrete-event scheduler."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler


def make():
    clock = SimClock()
    return clock, EventScheduler(clock)


def test_events_run_in_time_order():
    clock, sched = make()
    order = []
    sched.at(30, lambda: order.append("b"))
    sched.at(10, lambda: order.append("a"))
    sched.at(50, lambda: order.append("c"))
    sched.run_until(100)
    assert order == ["a", "b", "c"]
    assert clock.now() == 100


def test_ties_break_in_submission_order():
    clock, sched = make()
    order = []
    sched.at(10, lambda: order.append(1))
    sched.at(10, lambda: order.append(2))
    sched.run_until(10)
    assert order == [1, 2]


def test_clock_advances_to_event_time():
    clock, sched = make()
    seen = []
    sched.at(42, lambda: seen.append(clock.now()))
    sched.run_until(100)
    assert seen == [42]


def test_past_scheduling_rejected():
    clock, sched = make()
    clock.advance(100)
    with pytest.raises(ValueError):
        sched.at(50, lambda: None)


def test_after_is_relative():
    clock, sched = make()
    clock.advance(100)
    event = sched.after(20, lambda: None)
    assert event.when == 120


def test_cancelled_events_skipped():
    clock, sched = make()
    ran = []
    event = sched.at(10, lambda: ran.append(1))
    event.cancel()
    assert sched.run_until(20) == 0
    assert ran == []


def test_events_may_enqueue_events():
    clock, sched = make()
    order = []

    def first():
        order.append("first")
        sched.at(clock.now() + 5, lambda: order.append("second"))

    sched.at(10, first)
    sched.run_until(30)
    assert order == ["first", "second"]


def test_run_until_stops_at_boundary():
    clock, sched = make()
    ran = []
    sched.at(10, lambda: ran.append("early"))
    sched.at(40, lambda: ran.append("late"))
    sched.run_until(20)
    assert ran == ["early"]
    sched.run_until(50)
    assert ran == ["early", "late"]


def test_drain_runs_everything():
    clock, sched = make()
    ran = []
    sched.at(10, lambda: ran.append(1))
    sched.at(10_000, lambda: ran.append(2))
    assert sched.drain() == 2
    assert ran == [1, 2]


def test_executed_counter():
    clock, sched = make()
    sched.at(1, lambda: None)
    sched.at(2, lambda: None)
    sched.run_until(5)
    assert sched.executed == 2


def test_cancelled_event_at_queue_head_is_skipped():
    clock, sched = make()
    ran = []
    head = sched.at(5, lambda: ran.append("head"))
    sched.at(10, lambda: ran.append("tail"))
    head.cancel()
    # The cancelled head must not run, must not advance the clock to its
    # timestamp, and must not count as executed.
    assert sched.next_event_time() == 10
    executed = sched.run_until(20)
    assert ran == ["tail"]
    assert executed == 1
    assert sched.executed == 1


def test_cancelled_events_do_not_linger_in_pending():
    clock, sched = make()
    events = [sched.at(5 + i, lambda: None) for i in range(3)]
    for event in events:
        event.cancel()
    assert sched.next_event_time() is None
    assert sched.run_until(50) == 0
    assert sched.pending == 0


def test_drain_with_events_enqueueing_more_events():
    clock, sched = make()
    order = []

    def chain(depth):
        order.append(depth)
        if depth < 3:
            # Each event spawns its successor far beyond the previous
            # horizon, so drain must keep going until truly empty.
            sched.at(clock.now() + 1000, lambda: chain(depth + 1))

    sched.at(10, lambda: chain(0))
    assert sched.drain() == 4
    assert order == [0, 1, 2, 3]
    assert sched.pending == 0
    assert clock.now() == 10 + 3 * 1000


def test_run_until_clock_monotonicity():
    clock, sched = make()
    times = []
    sched.at(10, lambda: times.append(clock.now()))
    sched.at(10, lambda: times.append(clock.now()))
    sched.at(25, lambda: times.append(clock.now()))
    sched.run_until(30)
    # The clock moves to each event's timestamp before it fires, never
    # backwards, and ends at the run_until boundary.
    assert times == [10, 10, 25]
    assert clock.now() == 30
    # Scheduling into the past must be rejected outright.
    with pytest.raises(ValueError):
        sched.at(29, lambda: None)
    # run_until with a boundary in the past leaves the clock untouched.
    assert sched.run_until(30) == 0
    assert clock.now() == 30
