"""RL2xx RNG/clock-discipline and RL3xx API-contract rule tests."""

import textwrap
from pathlib import Path

from repro.lint import LintEngine, lint_source
from repro.lint.rules import DEFAULT_ALLOWLIST

DATA = (Path(__file__).resolve().parent / "data" / "reprolint" /
        "taint")


def fixture_rules(name, kind="violations", path="repro/collusion/x.py",
                  allowlist=None):
    source = (DATA / kind / name).read_text(encoding="utf-8")
    return [f.rule for f in lint_source(source, path=path,
                                        allowlist=allowlist)]


def rules_of(source, path="repro/collusion/x.py", allowlist=None):
    return [f.rule for f in lint_source(textwrap.dedent(source),
                                        path=path, allowlist=allowlist)]


# ----------------------------------------------------------------------
# RL201 — module-scope RNG construction
# ----------------------------------------------------------------------
def test_rl201_fixture_pair():
    assert fixture_rules("rl201_module_stream.py") == ["RL201"]
    assert fixture_rules("rl201_injected_stream.py", kind="clean") == []


def test_rl201_flags_module_scope_stream_and_factory():
    assert rules_of("""
        from repro.sim.rng import RngFactory

        FACTORY = RngFactory(1234)
        PACING = FACTORY.stream("pacing")
    """) == ["RL201", "RL201"]


def test_rl201_class_attribute_is_module_scope_state():
    assert rules_of("""
        import random

        class Scheduler:
            rng = random.Random(7)
    """) == ["RL201"]


def test_rl201_is_allowlisted_inside_sim():
    source = """
        import random

        _ROOT = random.Random(1)
    """
    assert rules_of(source, path="repro/sim/rng.py",
                    allowlist=DEFAULT_ALLOWLIST) == []
    assert rules_of(source, path="repro/collusion/x.py",
                    allowlist=DEFAULT_ALLOWLIST) == ["RL201"]


# ----------------------------------------------------------------------
# RL202 — cross-entity stream sharing
# ----------------------------------------------------------------------
def test_rl202_fixture_pair():
    assert fixture_rules("rl202_shared_stream.py") == ["RL202",
                                                       "RL202"]
    assert fixture_rules("rl202_private_streams.py", kind="clean") == []


def test_rl202_flags_handing_own_stream_to_another_entity():
    assert rules_of("""
        class Network:
            def __init__(self, world, Website):
                self.rng = world.rng.stream("net")
                self.site = Website(self.rng)
    """) == ["RL202"]


def test_rl202_flags_reaching_into_another_entitys_stream():
    assert rules_of("""
        def pace(gate, network):
            return gate.delay_for(network.rng)
    """) == ["RL202"]


def test_rl202_allows_self_and_world_streams():
    assert rules_of("""
        class Network:
            def __init__(self, world):
                self.rng = world.rng.stream("net")

            def draw(self):
                return self.rng.random()
    """) == []


# ----------------------------------------------------------------------
# RL203 — raw clock arithmetic
# ----------------------------------------------------------------------
def test_rl203_fixture_pair():
    assert fixture_rules("rl203_clock_arith.py") == ["RL203"]
    assert fixture_rules("rl203_clock_api.py", kind="clean") == []


def test_rl203_duration_math_is_legal():
    assert rules_of("""
        def window(clock, started_at, DAY):
            elapsed = clock.now() - started_at
            return elapsed // DAY
    """) == []


def test_rl203_is_allowlisted_inside_sim():
    source = """
        DAY = 86_400

        def day_of(clock):
            return clock.now() // DAY
    """
    assert rules_of(source, path="repro/sim/clock.py",
                    allowlist=DEFAULT_ALLOWLIST) == []
    assert rules_of(source, path="repro/experiments/t.py",
                    allowlist=DEFAULT_ALLOWLIST) == ["RL203"]


# ----------------------------------------------------------------------
# RL301 — direct platform writes from abusive-party code
# ----------------------------------------------------------------------
def test_rl301_fixture_pair():
    assert fixture_rules("rl301_direct_write.py") == ["RL301"]
    assert fixture_rules("rl301_via_api.py", kind="clean") == []


def test_rl301_scoped_to_collusion_and_honeypot():
    source = """
        def seed(world, member_id):
            world.platform.like_post(member_id, "post:1")
    """
    assert rules_of(source, path="repro/honeypot/seed.py") == ["RL301"]
    assert rules_of(source, path="repro/experiments/seed.py") == []


def test_rl301_reads_are_free():
    assert rules_of("""
        def scan(world, post_id):
            return world.platform.get_post(post_id)
    """) == []


# ----------------------------------------------------------------------
# RL302 — laundered writes (needs two modules: engine-level test)
# ----------------------------------------------------------------------
def _run_pair(kind):
    engine = LintEngine()
    pairs = [
        ("repro/support/seeding.py", DATA / kind / "rl302_helper.py"),
        ("repro/collusion/tools.py", DATA / kind / "rl302_launder.py"),
    ]
    return engine.run_files(pairs)


def test_rl302_flags_laundered_write():
    report = _run_pair("violations")
    assert [f.rule for f in report.findings] == ["RL302"]
    finding = report.findings[0]
    assert finding.path == "repro/collusion/tools.py"
    assert "seed_profile" in finding.message


def test_rl302_clean_twin_produces_nothing():
    assert _run_pair("clean").findings == []
