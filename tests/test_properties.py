"""Property-based tests (hypothesis) for core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collusion.profiles import calibrate_pool_size
from repro.graphapi.ratelimit import SlidingWindowLimiter
from repro.lexical.analysis import analyze_comments, lexical_richness
from repro.lexical.ari import automated_readability_index
from repro.netsim.ip import int_to_ip, ip_to_int
from repro.oauth.scopes import Permission, PermissionScope
from repro.oauth.tokens import TokenLifetime, TokenStore
from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler
from repro.sim.ids import IdAllocator
from repro.sim.rng import derive_seed


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_ip_int_round_trip(value):
    assert ip_to_int(int_to_ip(value)) == value


@given(st.integers(min_value=0, max_value=2**31),
       st.text(min_size=1, max_size=30))
def test_derive_seed_stable_and_bounded(seed, name):
    a = derive_seed(seed, name)
    assert a == derive_seed(seed, name)
    assert 0 <= a < 2**64


@given(st.lists(st.sampled_from(sorted(Permission,
                                       key=lambda p: p.value)),
                min_size=0, max_size=6))
def test_scope_string_round_trip(perms):
    scope = PermissionScope(perms)
    if perms:
        assert PermissionScope.parse(scope.to_scope_string()) == scope
    else:
        assert scope.to_scope_string() == ""


@given(st.integers(min_value=1, max_value=10_000),
       st.floats(min_value=1.01, max_value=50.0))
def test_calibration_round_trip(unique, oversample):
    draws = int(unique * oversample) + 1
    pool = calibrate_pool_size(unique, draws)
    assert pool >= 1
    observed = pool * (1 - math.exp(-draws / pool))
    # Inversion is accurate to within a percent (plus integer slack).
    assert abs(observed - unique) <= max(2, unique * 0.01)


@given(st.integers(min_value=1, max_value=20),
       st.integers(min_value=1, max_value=500),
       st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                max_size=200))
def test_sliding_window_never_exceeds_limit(limit, window, times):
    limiter = SlidingWindowLimiter(limit, window)
    times = sorted(times)
    for now in times:
        limiter.try_acquire("k", now)
        assert limiter.usage("k", now) <= limit


@given(st.lists(st.integers(min_value=0, max_value=100_000),
                min_size=0, max_size=50))
def test_scheduler_executes_everything_in_order(times):
    clock = SimClock()
    sched = EventScheduler(clock)
    executed = []
    for when in times:
        sched.at(when, lambda w=when: executed.append(w))
    sched.drain()
    assert executed == sorted(times)
    assert len(executed) == len(times)


@given(st.lists(st.text(alphabet="abcdefgh !?.", min_size=0,
                        max_size=40), min_size=0, max_size=30),
       st.integers(min_value=1, max_value=10))
def test_analyze_comments_bounds(comments, posts):
    analysis = analyze_comments(comments, posts)
    assert 0 <= analysis.unique_comment_pct <= 100
    assert 0 <= analysis.lexical_richness_pct <= 100
    assert 0 <= analysis.non_dictionary_pct <= 100
    assert analysis.unique_comments <= analysis.comments
    assert analysis.unique_words <= analysis.words


@given(st.text(max_size=200))
def test_ari_finite(text):
    value = automated_readability_index(text)
    assert math.isfinite(value)


@given(st.lists(st.text(alphabet="abc", min_size=1, max_size=5),
                min_size=1, max_size=100))
def test_lexical_richness_bounds(tokens):
    richness = lexical_richness(tokens)
    assert 0 < richness <= 1


@given(st.integers(min_value=1, max_value=30))
@settings(max_examples=20)
def test_token_reissue_keeps_one_live_token(n_reissues):
    clock = SimClock()
    store = TokenStore(clock)
    for _ in range(n_reissues):
        store.issue("u", "a", PermissionScope.basic(),
                    TokenLifetime.LONG_TERM)
    live = [t for t in store.live_tokens_for_app("a")
            if t.user_id == "u"]
    assert len(live) == 1


@given(st.lists(st.sampled_from(["acct", "post", "page"]), min_size=1,
                max_size=100))
def test_id_allocation_unique(kinds):
    ids = IdAllocator()
    allocated = [ids.next(kind) for kind in kinds]
    assert len(set(allocated)) == len(allocated)
    for kind in set(kinds):
        assert ids.count(kind) == kinds.count(kind)
