"""Property-based tests for detection algorithms and misc helpers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.catalog import mau_bucket
from repro.detection.actions import Action
from repro.detection.lockstep import LockstepDetector
from repro.detection.synchrotrap import SynchroTrap
from repro.detection.unionfind import UnionFind
from repro.experiments.formats import humanize_count

action_lists = st.lists(
    st.builds(
        Action,
        actor=st.sampled_from([f"a{i}" for i in range(12)]),
        target=st.sampled_from([f"t{i}" for i in range(6)]),
        timestamp=st.integers(min_value=0, max_value=100_000),
    ),
    max_size=120,
)


@given(action_lists)
@settings(max_examples=40)
def test_synchrotrap_flags_subset_of_actors(actions):
    result = SynchroTrap(min_cluster_size=2,
                         min_matched_actions=1,
                         similarity_threshold=0.1).detect(actions)
    actors = {a.actor for a in actions}
    assert result.flagged_accounts <= actors
    for cluster in result.clusters:
        assert len(cluster) >= 2
        assert set(cluster) <= result.flagged_accounts


@given(action_lists)
@settings(max_examples=40)
def test_lockstep_flags_subset_of_actors(actions):
    result = LockstepDetector(min_common_targets=1,
                              min_cluster_size=2).detect(actions)
    assert result.flagged_accounts <= {a.actor for a in actions}


@given(action_lists)
@settings(max_examples=30)
def test_stricter_synchrotrap_flags_fewer(actions):
    loose = SynchroTrap(min_cluster_size=2, min_matched_actions=1,
                        similarity_threshold=0.1).detect(actions)
    strict = SynchroTrap(min_cluster_size=2, min_matched_actions=3,
                         similarity_threshold=0.1).detect(actions)
    # Raising the matched-action floor only removes edges, so the union
    # of flagged accounts cannot grow.
    assert strict.edges <= loose.edges


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                max_size=60))
def test_union_find_partition(pairs):
    uf = UnionFind()
    for a, b in pairs:
        uf.union(a, b)
    groups = uf.groups()
    seen = [item for group in groups for item in group]
    assert len(seen) == len(set(seen))  # groups are disjoint
    for a, b in pairs:
        assert uf.find(a) == uf.find(b)


@given(st.integers(min_value=0, max_value=10**12))
def test_mau_bucket_properties(value):
    bucket = mau_bucket(value)
    assert 0 <= bucket <= value
    if value > 0:
        assert bucket > value / 10  # within one order of magnitude


@given(st.integers(min_value=0, max_value=10**10))
def test_humanize_count_parses_back(value):
    text = humanize_count(value)
    if text.endswith("M"):
        parsed = float(text[:-1]) * 1_000_000
    elif text.endswith("K"):
        parsed = float(text[:-1]) * 1_000
    else:
        parsed = int(text)
        assert parsed == value
        return
    # Rounded representation stays within ~6% of the true value.
    assert 0.94 * value <= parsed <= 1.06 * value
