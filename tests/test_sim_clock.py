"""Tests for the simulation clock."""

import datetime

import pytest

from repro.sim.clock import DAY, HOUR, MINUTE, SECOND, SimClock


def test_clock_starts_at_zero():
    clock = SimClock()
    assert clock.now() == 0
    assert clock.day() == 0
    assert clock.hour_of_day() == 0


def test_advance_moves_forward():
    clock = SimClock()
    assert clock.advance(90) == 90
    assert clock.now() == 90


def test_advance_rejects_negative():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_advance_to_rejects_rewind():
    clock = SimClock()
    clock.advance(100)
    with pytest.raises(ValueError):
        clock.advance_to(50)


def test_advance_to_absolute():
    clock = SimClock()
    clock.advance_to(3 * DAY + 5)
    assert clock.day() == 3


def test_day_and_hour_arithmetic():
    clock = SimClock()
    clock.advance(2 * DAY + 13 * HOUR + 59 * MINUTE)
    assert clock.day() == 2
    assert clock.hour_of_day() == 13


def test_advance_days_fractional():
    clock = SimClock()
    clock.advance_days(1.5)
    assert clock.now() == int(1.5 * DAY)


def test_now_datetime_tracks_epoch():
    epoch = datetime.datetime(2015, 11, 1, tzinfo=datetime.timezone.utc)
    clock = SimClock(epoch)
    clock.advance(DAY)
    assert clock.now_datetime() == epoch + datetime.timedelta(days=1)


def test_naive_epoch_gets_utc():
    clock = SimClock(datetime.datetime(2016, 1, 1))
    assert clock.epoch.tzinfo is datetime.timezone.utc


def test_duration_constants_consistent():
    assert MINUTE == 60 * SECOND
    assert HOUR == 60 * MINUTE
    assert DAY == 24 * HOUR
