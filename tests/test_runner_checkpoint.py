"""Crash-tolerant experiment execution: checkpoints, worker exception
propagation, hung-worker recovery."""

from __future__ import annotations

import os
import time

import pytest

from repro.core.config import StudyConfig
from repro.experiments import runner
from repro.experiments.checkpoint import MISSING, CheckpointStore


# ----------------------------------------------------------------------
# CheckpointStore
# ----------------------------------------------------------------------
def test_store_save_load_round_trip(tmp_path):
    store = CheckpointStore(str(tmp_path / "ckpt"))
    assert store.load("table1") is MISSING
    store.save("table1", {"rows": [1, 2, 3]})
    assert store.load("table1") == {"rows": [1, 2, 3]}
    assert store.completed() == ["table1"]


def test_store_distinguishes_stored_none_from_missing(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.save("fig4", None)
    assert store.load("fig4") is None
    assert store.load("fig5") is MISSING


def test_store_survives_torn_write(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.save("table1", "good")
    # A crash mid-write leaves a tmp file; the checkpoint is untouched.
    with open(os.path.join(str(tmp_path), "table2.pkl.tmp"), "wb") as fh:
        fh.write(b"partial")
    assert store.load("table1") == "good"
    assert store.completed() == ["table1"]
    # A torn final file reads as MISSING, not a crash.
    with open(os.path.join(str(tmp_path), "table3.pkl"), "wb") as fh:
        fh.write(b"\x80garbage")
    assert store.load("table3") is MISSING


def test_store_clear_and_manifest(tmp_path):
    store = CheckpointStore(str(tmp_path), fingerprint={"seed": 7})
    store.write_manifest()
    store.save("table1", 1)
    assert store.matches()
    other = CheckpointStore(str(tmp_path), fingerprint={"seed": 8})
    assert not other.matches()
    store.clear()
    assert store.completed() == []
    assert store.stored_fingerprint() is None


def test_store_rejects_path_traversal(tmp_path):
    store = CheckpointStore(str(tmp_path))
    with pytest.raises(ValueError):
        store.save("../evil", 1)
    with pytest.raises(ValueError):
        store.save(".hidden", 1)


# ----------------------------------------------------------------------
# run_experiments + checkpoints
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def built_artifacts():
    """Build-only artifacts: plans table1/2/3/5 (cheap, no milking)."""
    return runner.build_world(StudyConfig(scale=0.002, seed=13,
                                          network_limit=2))


def test_run_experiments_writes_checkpoints(built_artifacts, tmp_path):
    store = CheckpointStore(str(tmp_path), fingerprint={"seed": 13})
    report = runner.run_experiments(built_artifacts, checkpoint=store)
    assert sorted(store.completed()) == ["table1", "table2", "table3",
                                         "table5"]
    assert store.stored_fingerprint() == {"seed": 13}
    assert report.table1 is not None


def test_resumed_run_uses_checkpoints_without_rerunning(
        built_artifacts, tmp_path, monkeypatch):
    store = CheckpointStore(str(tmp_path))
    full = runner.run_experiments(built_artifacts, checkpoint=store)
    # Drop one checkpoint to simulate a crash before that job finished.
    os.remove(os.path.join(str(tmp_path), "table3.pkl"))
    calls = []
    original = dict(runner._EXPERIMENT_RUNNERS)

    def tracking(name):
        def run(artifacts):
            calls.append(name)
            return original[name](artifacts)
        return run

    for name in original:
        monkeypatch.setitem(runner._EXPERIMENT_RUNNERS, name,
                            tracking(name))
    resumed = runner.run_experiments(built_artifacts, checkpoint=store)
    assert calls == ["table3"]  # only the missing job re-ran
    assert resumed.table1.render() == full.table1.render()
    assert resumed.table3.render() == full.table3.render()


# ----------------------------------------------------------------------
# Worker failure propagation (satellite: original exception + traceback)
# ----------------------------------------------------------------------
def test_parallel_worker_exception_propagates_original(
        built_artifacts, monkeypatch):
    def exploding(_artifacts):
        raise ValueError("table2 exploded in the worker")

    monkeypatch.setitem(runner._EXPERIMENT_RUNNERS, "table2", exploding)
    with pytest.raises(ValueError, match="exploded in the worker") as info:
        runner.run_experiments(built_artifacts, parallel=True)
    cause = info.value.__cause__
    assert isinstance(cause, runner.ExperimentWorkerError)
    assert cause.experiment == "table2"
    assert "exploding" in cause.worker_traceback


def test_serial_worker_exception_also_propagates(built_artifacts,
                                                 monkeypatch):
    def exploding(_artifacts):
        raise RuntimeError("serial boom")

    monkeypatch.setitem(runner._EXPERIMENT_RUNNERS, "table2", exploding)
    with pytest.raises(RuntimeError, match="serial boom"):
        runner.run_experiments(built_artifacts, parallel=False)


# ----------------------------------------------------------------------
# Hung-worker recovery
# ----------------------------------------------------------------------
def test_hung_worker_is_killed_and_rerun_serially(built_artifacts,
                                                  monkeypatch, tmp_path):
    parent_pid = os.getpid()

    def hangs_in_workers(_artifacts):
        if os.getpid() != parent_pid:
            time.sleep(60)  # hung worker: never returns in time
        return "serial-result"

    monkeypatch.setitem(runner._EXPERIMENT_RUNNERS, "table2",
                        hangs_in_workers)
    store = CheckpointStore(str(tmp_path))
    start = time.monotonic()
    report = runner.run_experiments(built_artifacts, parallel=True,
                                    job_timeout=3, checkpoint=store)
    elapsed = time.monotonic() - start
    assert elapsed < 40  # the hung worker did not stall the run
    assert report.table2 == "serial-result"  # serial rerun result
    assert report.table1 is not None  # sibling results survived
    assert "table2" in store.completed()
