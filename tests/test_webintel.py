"""Tests for WHOIS, traffic ranking and ad scanning."""

import pytest

from repro.webintel.adnetworks import (
    AdNetwork,
    AdScanner,
    SiteAdProfile,
)
from repro.webintel.alexa import TrafficRanker
from repro.webintel.whois import WhoisRegistry


# ----------------------------------------------------------------------
# WHOIS (§5.2)
# ----------------------------------------------------------------------

def test_whois_plain_record():
    registry = WhoisRegistry()
    record = registry.register("site.com", "Bob", "IN")
    assert record.discloses_registrant
    assert registry.lookup("site.com").registrant_name == "Bob"


def test_whois_privacy_redacts():
    registry = WhoisRegistry()
    record = registry.register("hidden.com", "Bob", "IN",
                               privacy_protected=True)
    assert not record.discloses_registrant
    assert record.registrant_name is None
    assert record.registrant_country is None


def test_whois_unknown_domain():
    registry = WhoisRegistry()
    with pytest.raises(KeyError):
        registry.lookup("missing.com")


def test_whois_aggregates():
    registry = WhoisRegistry()
    registry.register("a.com", "A", "IN", privacy_protected=True)
    registry.register("b.com", "B", "IN")
    registry.register("c.com", "C", "PK",
                      nameserver_provider="hostco")
    assert registry.privacy_protected_share() == pytest.approx(1 / 3)
    assert registry.registrant_country_counts() == {"IN": 1, "PK": 1}
    assert registry.cloudflare_share() == pytest.approx(2 / 3)


def test_whois_empty_aggregates():
    registry = WhoisRegistry()
    assert registry.privacy_protected_share() == 0.0
    assert registry.cloudflare_share() == 0.0


# ----------------------------------------------------------------------
# Traffic ranking (Table 2)
# ----------------------------------------------------------------------

def test_ranker_orders_by_visits():
    ranker = TrafficRanker()
    ranker.observe("big.com", 1_000_000)
    ranker.observe("small.com", 1_000)
    ranking = ranker.ranking()
    assert [e.domain for e in ranking] == ["big.com", "small.com"]
    assert ranking[0].rank < ranking[1].rank


def test_ranker_anchor_inversion():
    ranker = TrafficRanker(anchor_rank=8000, anchor_daily_visits=300_000)
    ranker.observe("anchor.com", 300_000)
    assert ranker.global_rank("anchor.com") == 8000
    assert ranker.visits_for_rank(8000) == 300_000


def test_ranker_monotone_ranks():
    ranker = TrafficRanker()
    for i in range(20):
        ranker.observe(f"site{i}.com", 1000.0)  # all tied
    ranks = [e.rank for e in ranker.ranking()]
    assert ranks == sorted(ranks)
    assert len(set(ranks)) == len(ranks)  # strictly increasing


def test_ranker_top_country():
    ranker = TrafficRanker()
    site = ranker.observe("x.com", 100, {"IN": 60, "US": 40})
    assert site.top_country() == ("IN", 0.6)


def test_ranker_top_country_empty():
    ranker = TrafficRanker()
    site = ranker.observe("x.com", 100)
    assert site.top_country() is None


def test_ranker_validates():
    with pytest.raises(ValueError):
        TrafficRanker(anchor_rank=0)
    ranker = TrafficRanker()
    with pytest.raises(ValueError):
        ranker.observe("x.com", -1)
    with pytest.raises(KeyError):
        ranker.get("missing.com")
    with pytest.raises(ValueError):
        ranker.visits_for_rank(0)


# ----------------------------------------------------------------------
# Ad scanning (§5.1)
# ----------------------------------------------------------------------

def test_ad_scanner_redirect_monetization():
    scanner = AdScanner()
    scanner.register_site(SiteAdProfile(
        domain="liker.com",
        direct_networks={AdNetwork.POPADS},
        redirect_networks={"kackroch.example": {AdNetwork.ADSENSE,
                                                AdNetwork.ATLAS}},
        anti_adblock=True,
    ))
    result = scanner.scan("liker.com")
    assert result.uses_redirect_monetization
    assert AdNetwork.ADSENSE in result.networks_seen
    assert result.anti_adblock_detected
    assert not result.policy_violations  # reputable nets only via redirect


def test_ad_scanner_flags_direct_reputable_placement():
    scanner = AdScanner()
    scanner.register_site(SiteAdProfile(
        domain="naive.com",
        direct_networks={AdNetwork.DOUBLECLICK},
    ))
    result = scanner.scan("naive.com")
    assert AdNetwork.DOUBLECLICK in result.policy_violations


def test_ad_scanner_unknown_site():
    scanner = AdScanner()
    with pytest.raises(KeyError):
        scanner.scan("missing.com")


def test_ad_scanner_scan_all_sorted():
    scanner = AdScanner()
    scanner.register_site(SiteAdProfile(domain="b.com"))
    scanner.register_site(SiteAdProfile(domain="a.com"))
    assert [r.domain for r in scanner.scan_all()] == ["a.com", "b.com"]
