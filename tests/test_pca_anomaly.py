"""Tests for the PCA anomaly-detection baseline (§7.3)."""

import numpy as np
import pytest

from repro.detection.actions import Action
from repro.detection.pca_anomaly import (
    PcaAnomalyDetector,
    account_daily_vectors,
)
from repro.sim.clock import DAY

WINDOW = 14


def _normal_vectors(n=200, seed=1):
    rng = np.random.default_rng(seed)
    # Normal users: a few likes/day with a weekly rhythm.
    base = 2 + np.sin(np.arange(WINDOW) * 2 * np.pi / 7)
    return [rng.poisson(base).astype(float) for _ in range(n)]


def test_daily_vector_binning():
    actions = [
        Action("a", "p1", 5),
        Action("a", "p2", DAY + 10),
        Action("a", "p3", DAY + 20),
        Action("b", "p1", 3 * DAY),
        Action("b", "p2", WINDOW * DAY + 1),  # outside the window
    ]
    vectors = account_daily_vectors(actions, WINDOW)
    assert vectors["a"][0] == 1 and vectors["a"][1] == 2
    assert vectors["b"][3] == 1
    assert vectors["b"].sum() == 1


def test_daily_vector_validation():
    with pytest.raises(ValueError):
        account_daily_vectors([], 0)


def test_fit_requires_samples():
    with pytest.raises(ValueError):
        PcaAnomalyDetector().fit([np.zeros(WINDOW)])


def test_unfitted_detector_raises():
    detector = PcaAnomalyDetector()
    with pytest.raises(RuntimeError):
        detector.score(np.zeros(WINDOW))
    with pytest.raises(RuntimeError):
        detector.detect({})


def test_normal_traffic_not_flagged():
    detector = PcaAnomalyDetector().fit(_normal_vectors())
    fresh = {f"user{i}": v
             for i, v in enumerate(_normal_vectors(50, seed=2))}
    result = detector.detect(fresh)
    assert len(result.flagged_accounts) <= 3  # ~3-sigma false positives


def test_heavy_automation_flagged():
    detector = PcaAnomalyDetector().fit(_normal_vectors())
    bots = {f"bot{i}": np.full(WINDOW, 200.0) for i in range(10)}
    result = detector.detect(bots)
    assert result.flagged_accounts == set(bots)
    assert all(result.scores[b] > result.threshold for b in bots)


def test_low_volume_collusion_mostly_evades():
    """§7.3: colluding accounts mixing low-volume fake activity stay
    inside the normal subspace."""
    detector = PcaAnomalyDetector().fit(_normal_vectors())
    rng = np.random.default_rng(3)
    colluders = {}
    for i in range(100):
        # Normal rhythm plus one or two extra collusion likes per week.
        base = rng.poisson(2 + np.sin(np.arange(WINDOW) * 2 * np.pi / 7))
        extra = rng.choice([0, 1], size=WINDOW, p=[0.8, 0.2])
        colluders[f"member{i}"] = (base + extra).astype(float)
    result = detector.detect(colluders)
    assert len(result.flagged_accounts) < 0.1 * len(colluders)
