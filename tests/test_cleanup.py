"""Tests for fake-engagement cleanup."""

import pytest

from repro.countermeasures.cleanup import EngagementCleaner
from repro.honeypot.account import create_honeypot


@pytest.fixture()
def abused_world():
    from repro.apps.catalog import AppCatalog
    from repro.collusion.ecosystem import build_ecosystem
    from repro.core.config import StudyConfig
    from repro.core.world import World

    w = World(StudyConfig(scale=0.002, seed=31))
    AppCatalog(w.apps, w.rng.stream("catalog"), tail_apps=0).build()
    eco = build_ecosystem(w, network_limit=1)
    network = eco.network("hublaa.me")
    honeypot = create_honeypot(w, network)
    post = w.platform.create_post(honeypot.account_id, "bait")
    network.submit_like_request(honeypot.account_id, post.post_id)
    return w, network, post


def test_cleanup_removes_likes_of_invalidated_tokens(abused_world):
    w, network, post = abused_world
    before = w.platform.get_post(post.post_id).like_count
    assert before > 0
    # Invalidate every member token, then clean up.
    for member, token in list(network.token_db.items()):
        w.tokens.invalidate(token, "abuse")
    cleaner = EngagementCleaner(w.platform, w.tokens, w.api.log)
    report = cleaner.remove_fake_likes(app_ids=[network.profile.app_id])
    assert report.likes_removed == before
    assert report.posts_touched == 1
    assert w.platform.get_post(post.post_id).like_count == 0


def test_cleanup_spares_live_tokens(abused_world):
    w, network, post = abused_world
    before = w.platform.get_post(post.post_id).like_count
    cleaner = EngagementCleaner(w.platform, w.tokens, w.api.log)
    report = cleaner.remove_fake_likes()
    assert report.likes_removed == 0
    assert w.platform.get_post(post.post_id).like_count == before


def test_cleanup_scoped_to_app(abused_world):
    w, network, post = abused_world
    for member, token in list(network.token_db.items()):
        w.tokens.invalidate(token, "abuse")
    cleaner = EngagementCleaner(w.platform, w.tokens, w.api.log)
    report = cleaner.remove_fake_likes(app_ids=["someother"])
    assert report.likes_removed == 0


def test_cleanup_idempotent(abused_world):
    w, network, post = abused_world
    for member, token in list(network.token_db.items()):
        w.tokens.invalidate(token, "abuse")
    cleaner = EngagementCleaner(w.platform, w.tokens, w.api.log)
    first = cleaner.remove_fake_likes()
    second = cleaner.remove_fake_likes()
    assert first.likes_removed > 0
    assert second.likes_removed == 0
