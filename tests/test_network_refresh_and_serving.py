"""Tests for token refresh and charge-only background serving."""

import pytest

from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.oauth.tokens import LONG_TERM_LIFETIME


@pytest.fixture()
def small_eco():
    w = World(StudyConfig(scale=0.002, seed=19))
    AppCatalog(w.apps, w.rng.stream("catalog"), tail_apps=0).build()
    eco = build_ecosystem(w, network_limit=2)
    return w, eco


def test_refresh_revives_expired_pool(small_eco):
    w, eco = small_eco
    net = eco.network("official-liker.net")
    # Let every token from the build expire.
    w.clock.advance(LONG_TERM_LIFETIME + 1)
    hp = w.platform.register_account("HP", is_honeypot=True)
    net.join(hp.account_id)
    refreshed = net.refresh_all_tokens()
    assert refreshed > 0
    post = w.platform.create_post(hp.account_id, "x")
    report = net.submit_like_request(hp.account_id, post.post_id)
    assert report.delivered == net.profile.likes_per_request


def test_refresh_revives_invalidated_members(small_eco):
    w, eco = small_eco
    net = eco.network("official-liker.net")
    victims = list(net.token_db)[:30]
    for member in victims:
        w.tokens.invalidate(net.token_db[member])
        net._drop_member(member)
    before = net.member_count()
    net.refresh_all_tokens()
    assert net.member_count() == before + 30
    assert not net.dead_members


def test_refresh_is_noop_on_healthy_pool(small_eco):
    w, eco = small_eco
    net = eco.network("official-liker.net")
    assert net.refresh_all_tokens() == 0


def test_background_serving_charges_without_posts(small_eco):
    w, eco = small_eco
    net = eco.network("hublaa.me")
    posts_before = len(w.platform.posts)
    log_before = len(w.api.log)
    delivered = net.serve_background_requests(3)
    assert delivered == 3 * net.profile.likes_per_request
    assert len(w.platform.posts) == posts_before  # nothing materialized
    assert len(w.api.log) == log_before           # nothing logged
    assert w.api.charge_counters["likes"] == delivered


def test_background_serving_discovers_dead_tokens(small_eco):
    w, eco = small_eco
    net = eco.network("hublaa.me")
    for member in list(net.token_db)[:100]:
        w.tokens.invalidate(net.token_db[member])
    before = net.member_count()
    net.serve_background_requests(5)
    assert net.member_count() < before
