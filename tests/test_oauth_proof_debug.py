"""Tests for appsecret_proof, debug_token and token extension."""

import pytest

from repro.oauth.apps import AppSecuritySettings
from repro.oauth.errors import InvalidAppSecretError, InvalidTokenError
from repro.oauth.proof import compute_appsecret_proof, verify_appsecret_proof
from repro.oauth.scopes import PermissionScope
from repro.oauth.server import AuthorizationRequest
from repro.oauth.tokens import LONG_TERM_LIFETIME, TokenLifetime


def test_proof_round_trip():
    proof = compute_appsecret_proof("secret", "token")
    assert verify_appsecret_proof("secret", "token", proof)
    assert not verify_appsecret_proof("other", "token", proof)
    assert not verify_appsecret_proof("secret", "other-token", proof)
    assert not verify_appsecret_proof("secret", "token", "")


def _strict_app(world):
    return world.apps.register(
        "Strict", "https://strict.example/cb",
        security=AppSecuritySettings(True, True),
        approved_permissions=PermissionScope.full(),
        token_lifetime=TokenLifetime.SHORT_TERM,
    )


def _token_for(world, app, user):
    return world.auth_server.authorize(
        AuthorizationRequest(app.app_id, app.redirect_uri, "token",
                             app.approved_permissions),
        user.account_id).access_token.token


def test_hmac_proof_accepted_by_api(world):
    app = _strict_app(world)
    user = world.platform.register_account("U")
    token = _token_for(world, app, user)
    proof = compute_appsecret_proof(app.secret, token)
    response = world.api.get_profile(token, appsecret_proof=proof)
    assert response.data["id"] == user.account_id


def test_hmac_proof_bound_to_token(world):
    """A proof computed for one token is useless with another."""
    app = _strict_app(world)
    alice = world.platform.register_account("Alice")
    bob = world.platform.register_account("Bob")
    alice_token = _token_for(world, app, alice)
    bob_token = _token_for(world, app, bob)
    proof_for_alice = compute_appsecret_proof(app.secret, alice_token)
    from repro.graphapi.errors import AppSecretRequiredError

    with pytest.raises(AppSecretRequiredError):
        world.api.get_profile(bob_token, appsecret_proof=proof_for_alice)


def test_charge_like_accepts_hmac_proof(world):
    app = _strict_app(world)
    user = world.platform.register_account("U2")
    token = _token_for(world, app, user)
    proof = compute_appsecret_proof(app.secret, token)
    world.api.charge_like(token, source_ip="10.0.0.1",
                          appsecret_proof=proof)
    assert world.api.charge_counters["likes"] == 1


def test_debug_token_reports_metadata(world):
    app = _strict_app(world)
    user = world.platform.register_account("U3")
    token = _token_for(world, app, user)
    info = world.auth_server.debug_token(token)
    assert info["is_valid"] is True
    assert info["app_id"] == app.app_id
    assert info["user_id"] == user.account_id
    assert "publish_actions" in info["scopes"]


def test_debug_token_dead_and_unknown(world):
    app = _strict_app(world)
    user = world.platform.register_account("U4")
    token = _token_for(world, app, user)
    world.tokens.invalidate(token, "abuse")
    info = world.auth_server.debug_token(token)
    assert info["is_valid"] is False
    assert info["invalidation_reason"] == "abuse"
    assert world.auth_server.debug_token("garbage") == {
        "is_valid": False, "error": "unknown token"}


def test_extend_token_requires_secret(world):
    app = _strict_app(world)
    user = world.platform.register_account("U5")
    short = _token_for(world, app, user)
    with pytest.raises(InvalidAppSecretError):
        world.auth_server.extend_token(app.app_id, "wrong", short)
    long_token = world.auth_server.extend_token(app.app_id, app.secret,
                                                short)
    assert (long_token.expires_at - long_token.issued_at
            == LONG_TERM_LIFETIME)
    # The exchanged short token is superseded.
    with pytest.raises(InvalidTokenError):
        world.tokens.validate(short)


def test_extend_token_wrong_app(world):
    app = _strict_app(world)
    other = world.apps.register("Other", "https://o.example/cb")
    user = world.platform.register_account("U6")
    token = _token_for(world, app, user)
    with pytest.raises(InvalidTokenError):
        world.auth_server.extend_token(other.app_id, other.secret, token)
