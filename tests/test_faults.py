"""Deterministic fault injection: plans, injectors, and the two
identity guarantees (empty plan = byte-identical, fixed plan =
run-to-run identical)."""

from __future__ import annotations

import hashlib

import pytest

from repro.core.config import StudyConfig
from repro.core.world import World
from repro.experiments import runner
from repro.faults.plan import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    chaos_plan,
    transient_plan,
)
from repro.graphapi.errors import ApiTimeout, TransientApiError
from repro.graphapi.request import ApiAction, ApiRequest
from repro.oauth.apps import AppSecuritySettings
from repro.oauth.errors import InvalidTokenError
from repro.oauth.scopes import PermissionScope
from repro.oauth.server import AuthorizationRequest
from repro.oauth.tokens import TokenLifetime
from repro.sim.clock import DAY, SimClock
from repro.sim.rng import RngFactory


# ----------------------------------------------------------------------
# Plan / rule basics
# ----------------------------------------------------------------------
def test_rule_validation():
    with pytest.raises(ValueError):
        FaultRule(kind="nope", probability=0.1)
    with pytest.raises(ValueError):
        FaultRule(kind="transient", probability=1.5)
    with pytest.raises(ValueError):
        FaultRule(kind="transient", probability=0.1, start_day=-1)
    with pytest.raises(ValueError):
        FaultRule(kind="transient", probability=0.1,
                  start_day=5, end_day=5)


def test_rule_window_and_actions():
    rule = FaultRule(kind="transient", probability=0.5, start_day=2,
                     end_day=4, actions=frozenset({"LIKE_POST"}))
    assert not rule.active_on(1)
    assert rule.active_on(2)
    assert rule.active_on(3)
    assert not rule.active_on(4)
    assert rule.matches("LIKE_POST")
    assert not rule.matches("COMMENT")


def test_plan_json_round_trip(tmp_path):
    plan = chaos_plan()
    path = str(tmp_path / "plan.json")
    plan.dump(path)
    loaded = FaultPlan.load(path)
    assert loaded == plan
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_empty_plan_is_falsy():
    assert not FaultPlan()
    assert transient_plan()
    assert FaultPlan().with_rule(
        FaultRule(kind="chunk", probability=0.1))


# ----------------------------------------------------------------------
# Injector decisions
# ----------------------------------------------------------------------
def _injector(plan, seed=1):
    clock = SimClock()
    rng = RngFactory(seed).stream("faults")
    return FaultInjector(plan, rng, clock), clock


def test_injector_certain_rule_always_fires():
    inj, _clock = _injector(transient_plan(1.0))
    assert inj.decide("LIKE_POST", "tok") == "transient"
    assert inj.counters["transient"] == 1


def test_injector_respects_action_filter():
    inj, _clock = _injector(transient_plan(1.0, actions=["COMMENT"]))
    assert inj.decide("LIKE_POST", "tok") is None
    assert inj.decide("COMMENT", "tok") == "transient"


def test_injector_respects_day_window():
    plan = FaultPlan((FaultRule(kind="timeout", probability=1.0,
                                start_day=1, end_day=2),))
    inj, clock = _injector(plan)
    assert inj.decide("LIKE_POST", "tok") is None
    clock.advance(DAY)
    assert inj.decide("LIKE_POST", "tok") == "timeout"
    clock.advance(DAY)
    assert inj.decide("LIKE_POST", "tok") is None


def test_injector_chunk_rules_separate_from_scalar():
    plan = FaultPlan((FaultRule(kind="chunk", probability=1.0),))
    inj, _clock = _injector(plan)
    assert inj.decide("LIKE_POST", "tok") is None
    assert inj.decide_chunk(48)
    assert inj.total_injected() == 1


# ----------------------------------------------------------------------
# API-level injection
# ----------------------------------------------------------------------
def _world_with_plan(plan):
    world = World(StudyConfig(scale=0.01, seed=42, fault_plan=plan))
    app = world.apps.register(
        "Fault App", "https://fault.example/cb",
        security=AppSecuritySettings(True, False),
        approved_permissions=PermissionScope.full(),
        token_lifetime=TokenLifetime.LONG_TERM,
    )
    user = world.platform.register_account("User")
    target = world.platform.register_account("Target")
    post = world.platform.create_post(target.account_id, "content")
    result = world.auth_server.authorize(
        AuthorizationRequest(app.app_id, app.redirect_uri, "token",
                             app.approved_permissions),
        user.account_id)
    return world, post, result.access_token.token


def test_transient_fault_raises_and_logs():
    world, post, token = _world_with_plan(transient_plan(1.0))
    with pytest.raises(TransientApiError):
        world.api.like_post(token, post.post_id)
    rows = world.api.log.all()
    assert rows[-1].outcome == "transient_error"


def test_timeout_fault_raises_api_timeout():
    plan = FaultPlan((FaultRule(kind="timeout", probability=1.0),))
    world, post, token = _world_with_plan(plan)
    with pytest.raises(ApiTimeout):
        world.api.like_post(token, post.post_id)


def test_invalidate_token_fault_kills_token_mid_flight():
    plan = FaultPlan((FaultRule(kind="invalidate_token",
                                probability=1.0),))
    world, post, token = _world_with_plan(plan)
    with pytest.raises(InvalidTokenError):
        world.api.like_post(token, post.post_id)
    stored = world.tokens.peek(token)
    assert stored.invalidated
    assert stored.invalidation_reason == "fault_injection"


def test_chunk_fault_fails_whole_batch():
    plan = FaultPlan((FaultRule(kind="chunk", probability=1.0),))
    world, post, token = _world_with_plan(plan)
    requests = [ApiRequest(ApiAction.LIKE_POST, token,
                           {"post_id": post.post_id})]
    assert world.api.execute_batch(requests) is None
    # The failed batch performed nothing.
    assert not world.platform.get_post(post.post_id).likes


def test_try_like_post_returns_transient_code():
    world, post, token = _world_with_plan(transient_plan(1.0))
    assert world.api.try_like_post(token, post.post_id) == "transient"


# ----------------------------------------------------------------------
# Study-level identity and degradation guarantees
# ----------------------------------------------------------------------
def _digest(artifacts) -> str:
    h = hashlib.sha256()
    for r in artifacts.world.api.log.all():
        h.update(repr((r.action.name, r.timestamp, r.token, r.user_id,
                       r.app_id, r.target_id, r.source_ip, r.asn,
                       r.outcome)).encode())
    return h.hexdigest()


def _study(fault_plan):
    config = StudyConfig(scale=0.002, seed=13, milking_days=4,
                         campaign_days=12, network_limit=3,
                         fault_plan=fault_plan)
    artifacts = runner.build_world(config)
    runner.run_milking(artifacts)
    runner.run_campaign(artifacts)
    return artifacts


@pytest.fixture(scope="module")
def baseline_artifacts():
    return _study(None)


def test_empty_plan_is_byte_identical(baseline_artifacts):
    empty = _study(FaultPlan())
    assert empty.world.faults is None
    assert _digest(empty) == _digest(baseline_artifacts)


def test_fixed_plan_is_run_to_run_identical():
    one = _study(chaos_plan())
    two = _study(chaos_plan())
    assert _digest(one) == _digest(two)
    assert one.world.faults.counters == two.world.faults.counters


def test_transient_plan_degrades_but_delivers(baseline_artifacts):
    faulty = _study(transient_plan(0.05))
    assert faulty.world.faults.counters["transient"] > 0
    # Delivery completed (degraded, not aborted): the networks kept
    # delivering likes at roughly the fault-free volume.
    baseline_likes = sum(
        n.total_likes_delivered
        for n in baseline_artifacts.ecosystem.networks.values())
    faulty_likes = sum(
        n.total_likes_delivered
        for n in faulty.ecosystem.networks.values())
    assert faulty_likes > 0.8 * baseline_likes
    retries = sum(n.retry_policy.counters["retries"]
                  for n in faulty.ecosystem.networks.values())
    recoveries = sum(n.retry_policy.counters["recoveries"]
                     for n in faulty.ecosystem.networks.values())
    assert retries > 0
    assert recoveries > 0
