"""The telemetry plane: registry, tracing, deltas, exports — and the
two identity contracts that make it safe to leave on:

1. a seeded run with telemetry enabled is byte-identical to the same
   run with it disabled (same request-log digest);
2. a sharded campaign's merged metrics equal the serial campaign's
   metrics exactly (``shard_`` bookkeeping family excluded).
"""

from __future__ import annotations

import json

import pytest

from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.countermeasures.campaign import (
    CampaignConfig,
    CountermeasureCampaign,
)
from repro.oauth.redact import redact_token
from repro.telemetry import (
    TELEMETRY,
    TRACER,
    TelemetryRegistry,
    Tracer,
    capture_delta,
    chrome_trace,
    histogram_quantiles,
    merge_delta,
    metrics_json,
    prometheus_text,
    render_metrics,
    render_span_tree,
    write_telemetry,
)


@pytest.fixture()
def registry():
    reg = TelemetryRegistry()
    reg.enable()
    return reg


@pytest.fixture(autouse=True)
def _quiesce_globals():
    """Leave the process-global registry/tracer off and empty around
    every test, whatever the test did to them."""
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()
    TRACER.disable()
    TRACER.reset()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_counters_accumulate_and_label_order_is_canonical(registry):
    registry.count("req_total", outcome="ok", action="LIKE")
    registry.count("req_total", action="LIKE", outcome="ok")
    assert registry.counter_value("req_total", action="LIKE",
                                  outcome="ok") == 2
    assert registry.counter_total("req_total") == 2


def test_disabled_registry_records_nothing():
    reg = TelemetryRegistry()
    reg.count("a")
    reg.gauge_set("b", 4)
    reg.observe("c", 1)
    assert reg.snapshot() == {"counters": [], "gauges": [],
                              "histograms": []}


def test_token_label_values_are_redacted(registry):
    token = "EAAB" + "ab" * 20
    registry.count("token_events", token=token)
    snap = registry.snapshot()
    [(name, labels, value)] = snap["counters"]
    assert labels == [["token", redact_token(token)]]
    assert token not in repr(snap)


def test_histogram_bucketing_and_quantiles(registry):
    registry.register_histogram("sizes", (1, 2, 4, 8))
    for value in (1, 2, 3, 5, 9, 100):
        registry.observe("sizes", value)
    bounds, buckets, total = registry.histogram("sizes")
    assert bounds == (1, 2, 4, 8)
    assert buckets == [1, 1, 1, 1, 2]  # 9 and 100 overflow
    assert total == 120
    quantiles = histogram_quantiles(bounds, buckets)
    assert quantiles["count"] == 6
    assert quantiles["p50"] == 4
    assert quantiles["p99"] is None  # overflow bucket


def test_fingerprint_excludes_requested_families(registry):
    registry.count("wave_charges_total", 3)
    base = registry.fingerprint(exclude_prefixes=("shard_",))
    registry.count("shard_components_total", 2)
    assert registry.fingerprint(exclude_prefixes=("shard_",)) == base
    assert registry.fingerprint() != base


def test_export_install_state_roundtrip(registry):
    registry.count("a_total", 3, kind="x")
    registry.gauge_set("g", 7)
    registry.observe("wave_size", 33, stage="campaign")
    state = registry.export_state()
    other = TelemetryRegistry()
    other.install_state(state)
    assert other.fingerprint() == registry.fingerprint()


# ----------------------------------------------------------------------
# Deltas (the shard merge)
# ----------------------------------------------------------------------
def test_delta_capture_and_merge_reproduce_serial_totals(registry):
    registry.count("a_total", 2, kind="x")
    registry.observe("wave_size", 10, stage="campaign")
    base = registry.export_state()

    # "Child" work on top of the base.
    registry.count("a_total", 5, kind="x")
    registry.count("b_total", 1)
    registry.gauge_set("g", 9)
    registry.observe("wave_size", 700, stage="campaign")
    serial_print = registry.fingerprint()
    delta = capture_delta(registry, base)

    # Rewind to the base and merge the delta back in.
    parent = TelemetryRegistry()
    parent.install_state(base)
    merge_delta(parent, delta)
    assert parent.fingerprint() == serial_print


def test_delta_only_ships_changed_series(registry):
    registry.count("unchanged_total", 4)
    base = registry.export_state()
    registry.count("changed_total", 1)
    delta = capture_delta(registry, base)
    names = {name for name, _ in delta.counters}
    assert names == {"changed_total"}


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
def test_prometheus_text_shape(registry):
    registry.count("req_total", 3, outcome="ok")
    registry.gauge_set("keys", 5, window="token")
    registry.register_histogram("sizes", (1, 2))
    registry.observe("sizes", 1)
    registry.observe("sizes", 9)
    text = prometheus_text(registry)
    assert '# TYPE req_total counter' in text
    assert 'req_total{outcome="ok"} 3' in text
    assert '# TYPE keys gauge' in text
    assert 'sizes_bucket{le="1"} 1' in text
    assert 'sizes_bucket{le="+Inf"} 2' in text
    assert 'sizes_sum 10' in text
    assert 'sizes_count 2' in text


def test_prometheus_escapes_label_values(registry):
    registry.count("odd_total", 1, path='a"b\\c')
    text = prometheus_text(registry)
    assert 'path="a\\"b\\\\c"' in text


def test_chrome_trace_and_span_tree():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("outer", day=3):
        with tracer.span("inner"):
            pass
    doc = chrome_trace(tracer)
    json.dumps(doc)  # must be serialisable
    events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert [e["name"] for e in events] == ["outer", "inner"]
    assert all(isinstance(e["ts"], int) and isinstance(e["dur"], int)
               for e in events)
    assert doc["otherData"]["dropped_spans"] == 0
    tree = render_span_tree(tracer)
    assert "outer" in tree and "  inner" in tree


def test_tracer_span_cap_counts_drops():
    import repro.telemetry.tracing as tracing

    tracer = Tracer()
    tracer.enable()
    cap = tracing.MAX_SPANS
    tracing.MAX_SPANS = 3
    try:
        handles = [tracer.begin(f"s{i}") for i in range(5)]
    finally:
        tracing.MAX_SPANS = cap
    assert handles.count(None) == 2
    assert tracer.dropped == 2


def test_write_telemetry_and_render_metrics(tmp_path, registry):
    registry.count("req_total", 2, outcome="ok")
    registry.observe("wave_size", 12, stage="campaign")
    tracer = Tracer()
    tracer.enable()
    with tracer.span("stage"):
        pass
    paths = write_telemetry(tmp_path / "out", registry, tracer)
    assert sorted(paths) == ["json", "prometheus", "spans", "trace"]
    payload = json.loads((tmp_path / "out" / "metrics.json").read_text())
    assert payload["fingerprint"] == registry.fingerprint()
    text = render_metrics(payload)
    assert "req_total" in text
    assert "p50=" in text
    rendered = render_metrics(metrics_json(registry))
    assert rendered.startswith("fingerprint:")


# ----------------------------------------------------------------------
# Identity contract 1: telemetry on == telemetry off
# ----------------------------------------------------------------------
def _campaign_run(*, shards=1, telemetry=False, networks=(
        "fb-autolikers.com", "autolike.vn"), scale=0.004, seed=31):
    from repro.faults.plan import FaultPlan

    TELEMETRY.reset()
    TRACER.reset()
    if telemetry:
        TELEMETRY.enable()
        TRACER.enable()
    else:
        TELEMETRY.disable()
        TRACER.disable()
    world = World(StudyConfig(scale=scale, seed=seed,
                              fault_plan=FaultPlan()))
    AppCatalog(world.apps, world.rng.stream("catalog"),
               tail_apps=0).build()
    ecosystem = build_ecosystem(world, build_membership=False,
                                network_limit=13)
    for domain in networks:
        network = ecosystem.network(domain)
        network.build_membership(network.profile.pool_size(scale))
    config = CampaignConfig.compressed(
        12, networks=networks, outgoing_per_hour=0.0, shards=shards,
        hublaa_outage=None)
    campaign = CountermeasureCampaign(world, ecosystem, config)
    campaign.run()
    return world


def test_telemetry_enabled_run_is_byte_identical_to_disabled():
    digest_off = _campaign_run(telemetry=False).api.log.digest()
    digest_on = _campaign_run(telemetry=True).api.log.digest()
    assert digest_on == digest_off
    # And the run actually recorded something.
    assert TELEMETRY.counter_total("delivery_attempts_total") > 0
    assert TELEMETRY.counter_total("wave_likes_total") > 0
    assert TRACER.roots


# ----------------------------------------------------------------------
# Identity contract 2: sharded merged metrics == serial metrics
# ----------------------------------------------------------------------
def test_sharded_merged_metrics_equal_serial_metrics():
    serial_world = _campaign_run(shards=1, telemetry=True)
    serial_print = TELEMETRY.fingerprint(exclude_prefixes=("shard_",))
    serial_digest = serial_world.api.log.digest()

    sharded_world = _campaign_run(shards=2, telemetry=True)
    sharded_print = TELEMETRY.fingerprint(exclude_prefixes=("shard_",))
    # The sharded path really ran sharded and counted its components.
    assert TELEMETRY.counter_total("shard_components_total") > 0

    assert sharded_world.api.log.digest() == serial_digest
    assert sharded_print == serial_print


def test_cli_metrics_renders_written_document(tmp_path, registry,
                                              capsys):
    from repro.cli import main as repro_main

    registry.count("req_total", 2, outcome="ok")
    tracer = Tracer()
    write_telemetry(tmp_path / "tele", registry, tracer)
    assert repro_main(["metrics", str(tmp_path / "tele")]) == 0
    out = capsys.readouterr().out
    assert "fingerprint:" in out
    assert 'req_total{outcome="ok"} 2' in out
    assert repro_main(["metrics", str(tmp_path / "missing")]) == 2
