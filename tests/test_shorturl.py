"""Tests for the URL shortener and its analytics."""

import pytest

from repro.shorturl.analytics import ShortUrlAnalytics
from repro.shorturl.shortener import UrlShortener
from repro.sim.clock import DAY, SimClock


@pytest.fixture
def shortener():
    return UrlShortener(SimClock())


def test_shorten_and_resolve(shortener):
    short = shortener.shorten("https://long.example/page")
    assert shortener.resolve(short.slug) == "https://long.example/page"
    assert short.short_url.endswith(short.slug)


def test_unknown_slug(shortener):
    with pytest.raises(KeyError):
        shortener.resolve("nope")


def test_click_records_attribution(shortener):
    short = shortener.shorten("https://x.example")
    shortener.click(short.slug, referrer="site.com", country="IN")
    shortener.click(short.slug, referrer="site.com", country="EG")
    assert short.click_count == 2
    assert short.clicks_by_referrer == {"site.com": 2}
    assert short.clicks_by_country == {"IN": 1, "EG": 1}


def test_bulk_clicks(shortener):
    short = shortener.shorten("https://x.example")
    shortener.record_clicks(short.slug, 1_000_000, referrer="r",
                            country="IN")
    assert short.click_count == 1_000_000


def test_bulk_clicks_positive(shortener):
    short = shortener.shorten("https://x.example")
    with pytest.raises(ValueError):
        shortener.record_clicks(short.slug, 0)


def test_negative_created_at_allowed(shortener):
    short = shortener.shorten("https://x.example", created_at=-500 * DAY)
    assert short.created_at == -500 * DAY
    assert short.created_date.year < 2015


def test_long_url_aggregation(shortener):
    a = shortener.shorten("https://shared.example")
    b = shortener.shorten("https://shared.example")
    shortener.record_clicks(a.slug, 10)
    shortener.record_clicks(b.slug, 5)
    assert shortener.long_url_click_count("https://shared.example") == 15
    assert set(shortener.slugs_for("https://shared.example")) == {
        a.slug, b.slug}


def test_clicks_by_day(shortener):
    short = shortener.shorten("https://x.example")
    shortener.click(short.slug, timestamp=0)
    shortener.click(short.slug, timestamp=DAY + 5)
    shortener.click(short.slug, timestamp=DAY + 6)
    assert short.daily_clicks(0) == 1
    assert short.daily_clicks(1) == 2


def test_analytics_report(shortener):
    short = shortener.shorten("https://x.example")
    shortener.record_clicks(short.slug, 70, referrer="big.com",
                            country="IN")
    shortener.record_clicks(short.slug, 30, referrer="small.com",
                            country="VN")
    report = ShortUrlAnalytics(shortener).report(short.slug)
    assert report.short_url_clicks == 100
    assert report.top_referrer == "big.com"
    assert report.top_countries[0] == ("IN", 0.7)


def test_analytics_ordering(shortener):
    a = shortener.shorten("https://a.example")
    b = shortener.shorten("https://b.example")
    shortener.record_clicks(a.slug, 5)
    shortener.record_clicks(b.slug, 50)
    reports = ShortUrlAnalytics(shortener).reports_by_clicks()
    assert reports[0].long_url == "https://b.example"


def test_daily_click_rate(shortener):
    short = shortener.shorten("https://x.example")
    shortener.record_clicks(short.slug, 10, timestamp=0)
    shortener.record_clicks(short.slug, 20, timestamp=DAY)
    rate = ShortUrlAnalytics(shortener).daily_click_rate(short.slug)
    assert rate == 15.0


def test_report_without_clicks(shortener):
    short = shortener.shorten("https://x.example")
    report = ShortUrlAnalytics(shortener).report(short.slug)
    assert report.short_url_clicks == 0
    assert report.top_referrer is None
    assert report.top_countries == ()
