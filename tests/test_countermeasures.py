"""Tests for the individual countermeasures."""

import random

import pytest

from repro.countermeasures.asblocking import (
    block_asns_for_apps,
    identify_abusive_asns,
)
from repro.countermeasures.invalidation import TokenInvalidator
from repro.countermeasures.iplimits import (
    apply_ip_like_limits,
    as_observation_stats,
    heavy_hitter_ips,
    ip_observation_stats,
)
from repro.countermeasures.ratelimits import (
    apply_reduced_token_limit,
    restore_default_token_limit,
)
from repro.graphapi.log import RequestLog, RequestRecord
from repro.graphapi.ratelimit import (
    DEFAULT_TOKEN_ACTIONS_PER_DAY,
    RateLimitPolicy,
)
from repro.graphapi.request import ApiAction
from repro.honeypot.ledger import MilkedTokenLedger
from repro.netsim.asn import AsRegistry
from repro.oauth.scopes import PermissionScope
from repro.oauth.tokens import TokenLifetime, TokenStore
from repro.sim.clock import DAY, SimClock


# ----------------------------------------------------------------------
# §6.1 token rate limits
# ----------------------------------------------------------------------

def test_apply_reduced_token_limit():
    policy = RateLimitPolicy()
    assert apply_reduced_token_limit(policy) < DEFAULT_TOKEN_ACTIONS_PER_DAY
    assert policy.token_actions_per_day == 40


def test_reduced_limit_must_reduce():
    policy = RateLimitPolicy(token_actions_per_day=10)
    with pytest.raises(ValueError):
        apply_reduced_token_limit(policy, 50)
    with pytest.raises(ValueError):
        apply_reduced_token_limit(policy, 0)


def test_restore_default_token_limit():
    policy = RateLimitPolicy(token_actions_per_day=40)
    restore_default_token_limit(policy)
    assert policy.token_actions_per_day == DEFAULT_TOKEN_ACTIONS_PER_DAY


# ----------------------------------------------------------------------
# §6.2 token invalidation
# ----------------------------------------------------------------------

def _ledger_with_tokens(n, clock=None):
    clock = clock or SimClock()
    store = TokenStore(clock)
    ledger = MilkedTokenLedger()
    accounts = []
    for i in range(n):
        account = f"acct:{i}"
        store.issue(account, "app", PermissionScope.full(),
                    TokenLifetime.LONG_TERM)
        ledger.observe(account, "net", timestamp=i, day=0, app_id="app")
        accounts.append(account)
    return store, ledger, accounts


def test_invalidate_all_observed():
    store, ledger, accounts = _ledger_with_tokens(20)
    invalidator = TokenInvalidator(store, ledger, random.Random(0))
    assert invalidator.invalidate_all_observed(until_day=0) == 20
    assert all(store.live_token_for(a, "app") is None for a in accounts)
    # Re-running kills nothing further.
    assert invalidator.invalidate_all_observed(until_day=0) == 0


def test_invalidate_fraction():
    store, ledger, accounts = _ledger_with_tokens(100)
    invalidator = TokenInvalidator(store, ledger, random.Random(1))
    killed = invalidator.invalidate_fraction_of_observed(0, fraction=0.5)
    assert killed == 50
    live = sum(1 for a in accounts
               if store.live_token_for(a, "app") is not None)
    assert live == 50


def test_invalidate_fraction_validates():
    store, ledger, _ = _ledger_with_tokens(5)
    invalidator = TokenInvalidator(store, ledger)
    with pytest.raises(ValueError):
        invalidator.invalidate_fraction_of_observed(0, fraction=0.0)
    with pytest.raises(ValueError):
        invalidator.invalidate_new_observations(0, fraction=1.5)


def test_daily_invalidation_kills_fresh_tokens_of_returning_members():
    clock = SimClock()
    store, ledger, accounts = _ledger_with_tokens(5, clock)
    invalidator = TokenInvalidator(store, ledger, random.Random(2))
    invalidator.invalidate_all_observed(until_day=0)
    # A member rejoins with a fresh token and acts again on day 1.
    fresh = store.issue(accounts[0], "app", PermissionScope.full(),
                        TokenLifetime.LONG_TERM)
    ledger.observe(accounts[0], "net", timestamp=DAY + 5, day=1)
    killed = invalidator.invalidate_new_observations(day=1)
    assert killed == 1
    assert fresh.invalidated


def test_invalidate_specific_and_counter():
    store, ledger, accounts = _ledger_with_tokens(10)
    invalidator = TokenInvalidator(store, ledger)
    assert invalidator.invalidate_specific(accounts[:3]) == 3
    assert invalidator.total_invalidated == 3


def test_invalidation_skips_unobserved_accounts():
    store, ledger, _ = _ledger_with_tokens(3)
    invalidator = TokenInvalidator(store, ledger)
    assert invalidator.invalidate_specific(["acct:unknown"]) == 0


# ----------------------------------------------------------------------
# §6.4 IP limits and analyses
# ----------------------------------------------------------------------

def _log_with_likes(entries):
    log = RequestLog()
    for (ip, asn, timestamp) in entries:
        log.append(RequestRecord(
            timestamp=timestamp, action=ApiAction.LIKE_POST, token="t",
            user_id="u", app_id="a", target_id="p", source_ip=ip,
            asn=asn, outcome="ok"))
    return log


def test_apply_ip_like_limits_validates():
    policy = RateLimitPolicy()
    apply_ip_like_limits(policy, daily=10, weekly=50)
    assert policy.ip_likes_per_day == 10
    with pytest.raises(ValueError):
        apply_ip_like_limits(policy, daily=0, weekly=50)
    with pytest.raises(ValueError):
        apply_ip_like_limits(policy, daily=50, weekly=10)


def test_ip_observation_stats():
    log = _log_with_likes([
        ("1.1.1.1", 1, 0), ("1.1.1.1", 1, DAY), ("1.1.1.1", 1, DAY + 5),
        ("2.2.2.2", 2, 0),
    ])
    stats = ip_observation_stats(log)
    assert stats[0].source == "1.1.1.1"
    assert stats[0].total_likes == 3
    assert stats[0].days_observed == 2
    assert stats[1].total_likes == 1


def test_as_observation_stats():
    registry = AsRegistry()
    log = _log_with_likes([("1.1.1.1", 64500, 0),
                           ("1.1.1.2", 64500, DAY),
                           ("9.9.9.9", 64501, 0)])
    stats = as_observation_stats(log, registry)
    assert stats[0].source == "AS64500"
    assert stats[0].total_likes == 2


def test_heavy_hitter_ips():
    log = _log_with_likes([("1.1.1.1", 1, i) for i in range(10)]
                          + [("2.2.2.2", 1, 0)])
    assert heavy_hitter_ips(log, min_likes=5) == ["1.1.1.1"]


# ----------------------------------------------------------------------
# §6.4 AS blocking
# ----------------------------------------------------------------------

def test_identify_abusive_asns_requires_fanout():
    registry = AsRegistry()
    # AS 64500: 60 IPs x 20 likes; AS 64510: 2 IPs x 600 likes.
    entries = []
    for i in range(60):
        for j in range(20):
            entries.append((f"10.50.0.{i}", 64500, j))
    for i in range(2):
        for j in range(600):
            entries.append((f"10.60.0.{i}", 64510, j))
    log = _log_with_likes(entries)
    abusive = identify_abusive_asns(log, registry, min_ips=50,
                                    min_share=0.05)
    assert abusive == [64500]


def test_identify_abusive_asns_empty_log_and_validation():
    registry = AsRegistry()
    assert identify_abusive_asns(RequestLog(), registry) == []
    with pytest.raises(ValueError):
        identify_abusive_asns(RequestLog(), registry, min_share=0.0)


def test_identify_abusive_asns_share_threshold():
    registry = AsRegistry()
    # AS 64500 fans out over many IPs but carries only ~2% of traffic.
    entries = [(f"10.50.0.{i}", 64500, i) for i in range(60)]
    entries += [("10.60.0.1", 64510, i) for i in range(3000)]
    log = _log_with_likes(entries)
    assert identify_abusive_asns(log, registry, min_ips=50,
                                 min_share=0.05) == []


def test_block_asns_for_apps():
    policy = RateLimitPolicy()
    installed = block_asns_for_apps(policy, [64500, 64501],
                                    ["app:1", "app:2"])
    assert installed == 4
    assert policy.is_as_blocked("app:1", 64500)
    assert policy.is_as_blocked("app:2", 64501)
    assert not policy.is_as_blocked("app:3", 64500)
