"""Crash-recovery acceptance: a campaign killed with SIGKILL (or torn
by a journal-tail fault) and resumed must reproduce the byte-identical
request-log digest of an uninterrupted run.

Each scenario runs ``resume_driver.py`` in subprocesses with
``PYTHONHASHSEED=0`` — real process death, a real journal directory on
disk, and digest comparison across process boundaries.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys

import pytest

DRIVER = pathlib.Path(__file__).parent / "resume_driver.py"
SRC = pathlib.Path(__file__).resolve().parents[1] / "src"


def _env():
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "0"
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_driver(*args, timeout=600):
    return subprocess.run(
        [sys.executable, str(DRIVER), *map(str, args)],
        capture_output=True, text=True, env=_env(), timeout=timeout)


def _parse(stdout):
    out = {}
    for line in stdout.splitlines():
        key, _, value = line.partition(" ")
        out[key] = value
    return out


@pytest.fixture(scope="module")
def reference():
    """Uninterrupted, journal-less run: the digest to converge to."""
    result = _run_driver()
    assert result.returncode == 0, result.stderr[-2000:]
    return _parse(result.stdout)


@pytest.fixture(scope="module")
def sanitized_reference(tmp_path_factory):
    """Uninterrupted journaled run with the reprosan trace recording:
    the shadow trace every crash-resumed run must reproduce exactly."""
    root = tmp_path_factory.mktemp("sanitized-ref")
    result = _run_driver("--journal", root / "journal",
                         "--sanitize", root / "trace")
    assert result.returncode == 0, result.stderr[-2000:]
    parsed = _parse(result.stdout)
    parsed["trace_dir"] = root / "trace"
    return parsed


def test_journaled_run_matches_journal_less_reference(tmp_path,
                                                      reference):
    result = _run_driver("--journal", tmp_path / "journal")
    assert result.returncode == 0, result.stderr[-2000:]
    parsed = _parse(result.stdout)
    assert parsed["digest"] == reference["digest"]
    assert parsed["rows"] == reference["rows"]
    assert parsed["resumed_from"] == "None"
    assert "sealed through day 12" in parsed["report"]
    # Workload-derived metrics (journal_/shard_ families excluded)
    # must not notice the journal either.
    assert (parsed["telemetry_fingerprint"]
            == reference["telemetry_fingerprint"])


def test_sanitized_journaled_run_is_byte_identical(reference,
                                                   sanitized_reference):
    """The identity contract across process boundaries: turning the
    sanitizer (and the journal) on changes nothing observable."""
    assert sanitized_reference["digest"] == reference["digest"]
    assert sanitized_reference["rows"] == reference["rows"]
    assert (sanitized_reference["telemetry_fingerprint"]
            == reference["telemetry_fingerprint"])


def test_sigkill_mid_day_then_resume_is_byte_identical(
        tmp_path, reference, sanitized_reference):
    journal = tmp_path / "journal"
    crashed = _run_driver("--journal", journal, "--kill-day", 6,
                          "--sanitize", tmp_path / "crashed-trace")
    assert crashed.returncode == -signal.SIGKILL, (
        f"expected SIGKILL death, got rc={crashed.returncode}: "
        f"{crashed.stderr[-2000:]}")

    resumed = _run_driver("--journal", journal,
                          "--sanitize", tmp_path / "resumed-trace")
    assert resumed.returncode == 0, resumed.stderr[-2000:]
    parsed = _parse(resumed.stdout)
    # Days 1-5 were sealed + checkpointed; the half-written day-6
    # segment is dropped on open and day 6 re-executes.
    assert parsed["resumed_from"] == "6"
    assert parsed["digest"] == reference["digest"]
    assert parsed["rows"] == reference["rows"]
    assert "resumed from day 6" in parsed["report"]
    # The day-5 checkpoint restored the metrics registry wholesale, so
    # the recovered run's telemetry converges on the uninterrupted
    # reference too.
    assert (parsed["telemetry_fingerprint"]
            == reference["telemetry_fingerprint"])
    # The checkpoint also carried the shadow trace: the resumed run's
    # sanitizer trace equals the uninterrupted journaled run's with NO
    # streams ignored — clock reads, journal frames and all.
    assert (parsed["sanitizer_fingerprint"]
            == sanitized_reference["sanitizer_fingerprint"])
    from repro.sanitizer import diff_manifests, load_manifest

    diff = diff_manifests(
        load_manifest(str(sanitized_reference["trace_dir"])),
        load_manifest(str(tmp_path / "resumed-trace")))
    assert diff.equal, diff.render()


def test_torn_tail_is_detected_truncated_and_converges(tmp_path):
    journal = tmp_path / "journal"
    # Torn reference: same fault plan, no journal (the torn_tail kind
    # is only consulted when a journal is attached).
    reference = _run_driver("--torn-day", 4)
    assert reference.returncode == 0, reference.stderr[-2000:]
    ref = _parse(reference.stdout)

    crashed = _run_driver("--journal", journal, "--torn-day", 4)
    assert crashed.returncode != 0
    assert "SimulatedCrash" in crashed.stderr
    assert (journal / "torn-tail.fired").exists()

    resumed = _run_driver("--journal", journal, "--torn-day", 4)
    assert resumed.returncode == 0, resumed.stderr[-2000:]
    parsed = _parse(resumed.stdout)
    # Day 4's seal was destroyed by the chop, so its segment is dropped
    # and the run resumes from the day-3 checkpoint.
    assert parsed["resumed_from"] == "4"
    assert "torn tail truncated" in parsed["report"]
    assert parsed["digest"] == ref["digest"]
    assert parsed["rows"] == ref["rows"]
    assert (parsed["telemetry_fingerprint"]
            == ref["telemetry_fingerprint"])


def test_fresh_run_over_existing_journal_starts_from_day_one(tmp_path,
                                                             reference):
    journal = tmp_path / "journal"
    first = _run_driver("--journal", journal)
    assert first.returncode == 0, first.stderr[-2000:]

    again = _run_driver("--journal", journal, "--no-resume")
    assert again.returncode == 0, again.stderr[-2000:]
    parsed = _parse(again.stdout)
    assert parsed["resumed_from"] == "None"
    assert parsed["digest"] == reference["digest"]
