"""Tests for the OAuth 2.0 authorization server (both flows)."""

import pytest

from repro.oauth.apps import AppSecuritySettings
from repro.oauth.errors import (
    FlowDisabledError,
    InvalidAppSecretError,
    InvalidAuthorizationCodeError,
    InvalidRedirectUriError,
    PermissionNotGrantedError,
)
from repro.oauth.scopes import Permission, PermissionScope
from repro.oauth.server import AUTHORIZATION_CODE_LIFETIME, AuthorizationRequest
from repro.oauth.tokens import TokenLifetime


@pytest.fixture
def app(world):
    return world.apps.register(
        "TestApp", "https://app.example/cb",
        security=AppSecuritySettings(client_side_flow_enabled=True,
                                     require_app_secret=False),
        approved_permissions=PermissionScope.full(),
        token_lifetime=TokenLifetime.LONG_TERM,
    )


@pytest.fixture
def user(world):
    return world.platform.register_account("User")


def _request(app, response_type="token", scope=None, state=None):
    return AuthorizationRequest(
        app_id=app.app_id,
        redirect_uri=app.redirect_uri,
        response_type=response_type,
        scope=scope or app.approved_permissions,
        state=state,
    )


def test_implicit_flow_returns_token_in_fragment(world, app, user):
    result = world.auth_server.authorize(_request(app), user.account_id)
    assert result.access_token is not None
    assert "#" in result.redirect_url
    assert result.token_from_fragment() == result.access_token.token


def test_implicit_flow_token_is_valid(world, app, user):
    result = world.auth_server.authorize(_request(app), user.account_id)
    token = world.tokens.validate(result.token_from_fragment())
    assert token.user_id == user.account_id
    assert token.app_id == app.app_id


def test_state_round_trips(world, app, user):
    result = world.auth_server.authorize(
        _request(app, state="xyz"), user.account_id)
    assert "state=xyz" in result.redirect_url


def test_code_flow_returns_code_in_query(world, app, user):
    result = world.auth_server.authorize(
        _request(app, response_type="code"), user.account_id)
    assert result.authorization_code is not None
    assert result.code_from_query() == result.authorization_code
    assert result.access_token is None


def test_code_exchange_requires_secret(world, app, user):
    result = world.auth_server.authorize(
        _request(app, response_type="code"), user.account_id)
    with pytest.raises(InvalidAppSecretError):
        world.auth_server.exchange_code(
            app.app_id, app.redirect_uri, result.authorization_code,
            "wrong-secret")
    token = world.auth_server.exchange_code(
        app.app_id, app.redirect_uri, result.authorization_code,
        app.secret)
    assert token.user_id == user.account_id


def test_code_single_use(world, app, user):
    result = world.auth_server.authorize(
        _request(app, response_type="code"), user.account_id)
    world.auth_server.exchange_code(app.app_id, app.redirect_uri,
                                    result.authorization_code, app.secret)
    with pytest.raises(InvalidAuthorizationCodeError):
        world.auth_server.exchange_code(
            app.app_id, app.redirect_uri, result.authorization_code,
            app.secret)


def test_code_expires(world, app, user):
    result = world.auth_server.authorize(
        _request(app, response_type="code"), user.account_id)
    world.clock.advance(AUTHORIZATION_CODE_LIFETIME + 1)
    with pytest.raises(InvalidAuthorizationCodeError):
        world.auth_server.exchange_code(
            app.app_id, app.redirect_uri, result.authorization_code,
            app.secret)


def test_disabled_client_flow_rejected(world, user):
    app = world.apps.register(
        "ServerOnly", "https://srv.example/cb",
        security=AppSecuritySettings(client_side_flow_enabled=False),
    )
    with pytest.raises(FlowDisabledError):
        world.auth_server.authorize(_request(app), user.account_id)
    # The server-side flow still works.
    result = world.auth_server.authorize(
        _request(app, response_type="code"), user.account_id)
    assert result.authorization_code is not None


def test_wrong_redirect_uri_rejected(world, app, user):
    bad = AuthorizationRequest(
        app_id=app.app_id,
        redirect_uri="https://evil.example/cb",
        response_type="token",
        scope=app.approved_permissions,
    )
    with pytest.raises(InvalidRedirectUriError):
        world.auth_server.authorize(bad, user.account_id)


def test_unapproved_sensitive_permission_rejected(world, user):
    app = world.apps.register("ReadOnly", "https://ro.example/cb")
    request = AuthorizationRequest(
        app_id=app.app_id,
        redirect_uri=app.redirect_uri,
        response_type="token",
        scope=PermissionScope({Permission.PUBLISH_ACTIONS}),
    )
    with pytest.raises(PermissionNotGrantedError):
        world.auth_server.authorize(request, user.account_id)


def test_unsupported_response_type(world, app, user):
    with pytest.raises(ValueError):
        world.auth_server.authorize(
            _request(app, response_type="id_token"), user.account_id)


def test_login_dialog_url_contains_parameters(world, app):
    import urllib.parse

    url = world.auth_server.login_dialog_url(
        app.app_id, "token", PermissionScope.basic())
    params = urllib.parse.parse_qs(urllib.parse.urlparse(url).query)
    assert params["client_id"] == [app.app_id]
    assert params["response_type"] == ["token"]
    assert params["redirect_uri"] == [app.redirect_uri]


def test_token_lifetime_follows_app(world, user):
    short_app = world.apps.register(
        "ShortApp", "https://s.example/cb",
        token_lifetime=TokenLifetime.SHORT_TERM)
    result = world.auth_server.authorize(
        AuthorizationRequest(short_app.app_id, short_app.redirect_uri,
                             "token", PermissionScope.basic()),
        user.account_id)
    token = result.access_token
    assert (token.expires_at - token.issued_at
            == TokenLifetime.SHORT_TERM.seconds)
