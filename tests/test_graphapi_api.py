"""Tests for the Graph API layer: auth, permissions, limits, logging."""

import pytest

from repro.graphapi.errors import (
    AppSecretRequiredError,
    BlockedSourceError,
    IpRateLimitError,
    PermissionDeniedError,
    RateLimitExceededError,
)
from repro.graphapi.request import ApiAction
from repro.oauth.apps import AppSecuritySettings
from repro.oauth.errors import InvalidTokenError
from repro.oauth.scopes import PermissionScope
from repro.oauth.server import AuthorizationRequest
from repro.oauth.tokens import TokenLifetime
from repro.sim.clock import DAY


@pytest.fixture
def setup(world):
    app = world.apps.register(
        "Api App", "https://api.example/cb",
        security=AppSecuritySettings(True, False),
        approved_permissions=PermissionScope.full(),
        token_lifetime=TokenLifetime.LONG_TERM,
    )
    user = world.platform.register_account("User")
    target = world.platform.register_account("Target")
    post = world.platform.create_post(target.account_id, "content")
    result = world.auth_server.authorize(
        AuthorizationRequest(app.app_id, app.redirect_uri, "token",
                             app.approved_permissions),
        user.account_id)
    return app, user, post, result.access_token.token


def test_get_profile(world, setup):
    app, user, post, token = setup
    response = world.api.get_profile(token)
    assert response.data["id"] == user.account_id


def test_like_post_via_api(world, setup):
    app, user, post, token = setup
    world.api.like_post(token, post.post_id, source_ip="10.60.0.1")
    fetched = world.platform.get_post(post.post_id)
    assert fetched.liked_by(user.account_id)
    assert fetched.likes[0].via_app_id == app.app_id
    assert fetched.likes[0].source_ip == "10.60.0.1"


def test_comment_via_api(world, setup):
    app, user, post, token = setup
    world.api.comment(token, post.post_id, "hello")
    assert world.platform.get_post(post.post_id).comment_count == 1


def test_create_post_via_api(world, setup):
    app, user, post, token = setup
    response = world.api.create_post(token, "new status")
    created = world.platform.get_post(response.data["post_id"])
    assert created.author_id == user.account_id


def test_invalid_token_rejected(world, setup):
    app, user, post, token = setup
    world.tokens.invalidate(token)
    with pytest.raises(InvalidTokenError):
        world.api.like_post(token, post.post_id)


def test_app_secret_enforced(world):
    app = world.apps.register(
        "Strict App", "https://strict.example/cb",
        security=AppSecuritySettings(True, True),
        approved_permissions=PermissionScope.full(),
    )
    user = world.platform.register_account("User")
    result = world.auth_server.authorize(
        AuthorizationRequest(app.app_id, app.redirect_uri, "token",
                             app.approved_permissions),
        user.account_id)
    token = result.access_token.token
    with pytest.raises(AppSecretRequiredError):
        world.api.get_profile(token)
    # With the right proof the call goes through.
    response = world.api.get_profile(token, appsecret_proof=app.secret)
    assert response.data["id"] == user.account_id


def test_permission_scope_enforced(world):
    app = world.apps.register(
        "ReadOnly", "https://ro.example/cb",
        approved_permissions=PermissionScope.basic(),
    )
    user = world.platform.register_account("User")
    target = world.platform.register_account("T")
    post = world.platform.create_post(target.account_id, "x")
    result = world.auth_server.authorize(
        AuthorizationRequest(app.app_id, app.redirect_uri, "token",
                             PermissionScope.basic()),
        user.account_id)
    with pytest.raises(PermissionDeniedError):
        world.api.like_post(result.access_token.token, post.post_id)


def test_token_rate_limit(world, setup):
    app, user, post, token = setup
    world.policy.token_actions_per_day = 3
    for i in range(3):
        world.api.create_post(token, f"post {i}")
    with pytest.raises(RateLimitExceededError):
        world.api.create_post(token, "over budget")
    # The sliding window frees up after a day.
    world.clock.advance(DAY + 1)
    world.api.create_post(token, "new day")


def test_ip_rate_limit_applies_to_likes_only(world, setup):
    app, user, post, token = setup
    world.policy.ip_likes_per_day = 1
    world.api.like_post(token, post.post_id, source_ip="10.60.0.9")
    other = world.platform.create_post(
        world.platform.register_account("O").account_id, "y")
    with pytest.raises(IpRateLimitError):
        world.api.like_post(token, other.post_id, source_ip="10.60.0.9")
    # Non-like writes from the same IP are unaffected.
    world.api.create_post(token, "still fine", source_ip="10.60.0.9")


def test_as_blocking(world, setup):
    app, user, post, token = setup
    world.as_registry.register(64999, "Evil Host")
    world.as_registry.announce(64999, "10.99.0.0", 16)
    world.policy.block_as_for_app(app.app_id, 64999)
    with pytest.raises(BlockedSourceError):
        world.api.like_post(token, post.post_id, source_ip="10.99.0.5")
    # Other source addresses still work.
    world.api.like_post(token, post.post_id, source_ip="10.98.0.5")


def test_request_log_records_outcomes(world, setup):
    app, user, post, token = setup
    world.api.like_post(token, post.post_id, source_ip="10.60.0.1")
    world.tokens.invalidate(token)
    with pytest.raises(InvalidTokenError):
        world.api.like_post(token, post.post_id)
    records = world.api.log.all()
    assert [r.outcome for r in records] == ["ok", "invalid_token"]
    ok = records[0]
    assert ok.action is ApiAction.LIKE_POST
    assert ok.user_id == user.account_id
    assert ok.app_id == app.app_id
    assert ok.target_id == post.post_id


def test_charge_like_counts_without_writing(world, setup):
    app, user, post, token = setup
    before = len(world.api.log)
    world.api.charge_like(token, source_ip="10.60.0.1")
    assert world.api.charge_counters["likes"] == 1
    assert len(world.api.log) == before  # not logged
    # Charges share the same token budget as real writes.  Changing the
    # policy rebuilds the window, so the budget counts from here.
    world.policy.token_actions_per_day = 2
    world.api.charge_like(token, source_ip="10.60.0.1")
    world.api.charge_like(token, source_ip="10.60.0.1")
    with pytest.raises(RateLimitExceededError):
        world.api.charge_like(token, source_ip="10.60.0.1")


def test_get_app_stats(world, setup):
    app, user, post, token = setup
    stats = world.api.get_app_stats(token, app.app_id).data
    assert stats["name"] == "Api App"


def test_get_object_likes(world, setup):
    app, user, post, token = setup
    world.api.like_post(token, post.post_id)
    from repro.graphapi.request import ApiRequest

    response = world.api.execute(ApiRequest(
        ApiAction.GET_OBJECT_LIKES, token, {"post_id": post.post_id}))
    assert response.data["likers"] == [user.account_id]
