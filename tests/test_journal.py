"""The durable event journal: WAL framing, chain verification, torn-tail
recovery, and the request-log round-trip it protects."""

from __future__ import annotations

import os

import pytest

from repro.graphapi.log import RequestLog
from repro.graphapi.request import ApiAction
from repro.journal.wal import (
    EventJournal,
    JournalCorruption,
    SimulatedCrash,
)

ROW_A = (100, 0, "EAAB0001", "u1", "app1", "p1", "10.0.0.1", 64500, "ok")
ROW_B = (160, 0, "EAAB0002", "u2", "app1", "p2", "10.0.0.2", 64500,
         "token_limit")
ROW_C = (86500, 1, "EAAB0001", "u1", "app1", "p3", None, None, "ok")


def _journal_with_two_days(directory):
    journal = EventJournal.create(directory, {"seed": 7})
    journal.begin_day(1)
    journal.append_row(ROW_A)
    journal.append_row(ROW_B)
    journal.seal_day()
    journal.begin_day(2)
    journal.append_row(ROW_C)
    journal.seal_day()
    return journal


def _segment(directory, day):
    return os.path.join(str(directory), f"day-{day:05d}.seg")


def test_round_trip_and_chain_verify(tmp_path):
    directory = str(tmp_path)
    journal = _journal_with_two_days(directory)
    assert journal.records == 3
    assert journal.last_sealed_day == 2
    assert journal.verify_chain() == 3

    reopened, recovery = EventJournal.open(directory)
    assert recovery.clean
    assert recovery.records == 3
    assert recovery.last_sealed_day == 2
    assert reopened.meta == {"seed": 7}
    assert list(reopened.replay_rows()) == [ROW_A, ROW_B, ROW_C]
    assert list(reopened.replay_rows(through_day=1)) == [ROW_A, ROW_B]
    assert reopened.records_through_day(1) == 2
    assert reopened.records_through_day(2) == 3


def test_exists_and_create_clears_previous_run(tmp_path):
    directory = str(tmp_path)
    assert not EventJournal.exists(directory)
    _journal_with_two_days(directory)
    assert EventJournal.exists(directory)
    fresh = EventJournal.create(directory, {"seed": 8})
    assert fresh.records == 0
    assert not os.path.exists(_segment(directory, 1))
    reopened, recovery = EventJournal.open(directory)
    assert recovery.clean and recovery.records == 0
    assert reopened.meta == {"seed": 8}


def test_torn_tail_truncates_to_last_seal(tmp_path):
    """Bytes torn off a sealed day-2 segment kill day 2 but keep day 1."""
    directory = str(tmp_path)
    journal = _journal_with_two_days(directory)
    chopped = journal.chop_tail(5)
    assert chopped == 5

    reopened, recovery = EventJournal.open(directory)
    assert not recovery.clean
    assert recovery.records == 2
    assert recovery.last_sealed_day == 1
    assert recovery.truncated_bytes > 0
    assert recovery.dropped_segments == ["day-00002.seg"]
    assert "torn tail" in recovery.describe()
    assert not os.path.exists(_segment(directory, 2))
    assert list(reopened.replay_rows()) == [ROW_A, ROW_B]
    # The repaired journal verifies end to end and can keep appending.
    assert reopened.verify_chain() == 2
    reopened.begin_day(2)
    reopened.append_row(ROW_C)
    reopened.seal_day()
    assert reopened.verify_chain() == 3


def test_unsealed_segment_and_followers_are_dropped(tmp_path):
    """A crash mid-day leaves a seal-less segment: it and every later
    segment are dropped (the chain cannot vouch for anything beyond)."""
    directory = str(tmp_path)
    journal = _journal_with_two_days(directory)
    journal.begin_day(3)
    journal.append_row(ROW_A)
    journal.abandon()  # closes without a seal frame — simulated crash
    # Simulate a stray later segment that must not be trusted either.
    with open(_segment(directory, 4), "wb") as handle:
        handle.write(b"garbage beyond the torn frame")

    _reopened, recovery = EventJournal.open(directory)
    assert recovery.records == 3
    assert recovery.last_sealed_day == 2
    assert sorted(recovery.dropped_segments) == [
        "day-00003.seg", "day-00004.seg"]
    assert not os.path.exists(_segment(directory, 3))
    assert not os.path.exists(_segment(directory, 4))


def test_mid_file_corruption_fails_closed(tmp_path):
    """A flipped byte inside a sealed segment breaks the chain walk:
    verify_chain raises and open() refuses everything past the flip."""
    directory = str(tmp_path)
    journal = _journal_with_two_days(directory)
    path = _segment(directory, 1)
    blob = bytearray(open(path, "rb").read())
    blob[10] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))

    with pytest.raises(JournalCorruption):
        journal.verify_chain()
    _reopened, recovery = EventJournal.open(directory)
    assert recovery.records == 0
    assert recovery.last_sealed_day == 0
    assert not recovery.clean


def test_drop_days_after_rewinds_chain_head(tmp_path):
    directory = str(tmp_path)
    journal = _journal_with_two_days(directory)
    dropped = journal.drop_days_after(1)
    assert dropped == ["day-00002.seg"]
    assert journal.records == 2
    assert journal.last_sealed_day == 1
    # The chain head rewound with the drop: new appends re-chain from
    # day 1's seal and the whole journal still verifies.
    journal.begin_day(2)
    journal.append_row(ROW_C)
    journal.seal_day()
    assert journal.verify_chain() == 3
    assert list(journal.replay_rows()) == [ROW_A, ROW_B, ROW_C]


def test_append_requires_open_day(tmp_path):
    journal = EventJournal.create(str(tmp_path), {})
    with pytest.raises(RuntimeError):
        journal.append_row(ROW_A)
    journal.begin_day(1)
    with pytest.raises(RuntimeError):
        journal.begin_day(2)
    journal.seal_day()
    with pytest.raises(RuntimeError):
        journal.seal_day()


def test_simulated_crash_is_an_exception_type():
    assert issubclass(SimulatedCrash, RuntimeError)


# ----------------------------------------------------------------------
# RequestLog export/replay round-trip (what the journal actually stores)
# ----------------------------------------------------------------------
def test_export_rows_round_trip_empty_log():
    source, target = RequestLog(), RequestLog()
    rows = source.export_rows(0)
    assert rows == []
    target.append_exported(rows)
    assert len(target) == 0
    assert target.digest() == source.digest()


def test_export_rows_round_trip_single_row_log():
    source = RequestLog()
    source.append_row(123, ApiAction.LIKE_POST, "EAABtok", "user",
                      "app", "post", "10.1.2.3", 64501, "ok")
    rows = source.export_rows(0)
    assert len(rows) == 1
    target = RequestLog()
    target.append_exported(rows)
    assert len(target) == 1
    assert target.digest() == source.digest()
    record = target.record_at(0)
    assert record.action is ApiAction.LIKE_POST
    assert record.token == "EAABtok"
    assert record.outcome == "ok"
    # The replayed log rebuilt its secondary indexes, not just columns.
    assert len(target.for_ip("10.1.2.3")) == 1
    assert len(target.like_requests()) == 1


def test_journaled_log_mirrors_appends(tmp_path):
    log = RequestLog()
    journal = EventJournal.create(str(tmp_path), {})
    journal.begin_day(1)
    log.attach_journal(journal)
    log.append_row(5, ApiAction.LIKE_POST, "EAABx", "u", "a", "p",
                   None, None, "ok")
    assert log.detach_journal() is journal
    journal.seal_day()
    assert list(journal.replay_rows()) == log.export_rows(0)
