"""Tests for the collusion network engine."""

import pytest

from repro.sim.clock import DAY


@pytest.fixture(scope="module")
def built(request):
    """A small built ecosystem shared within this module."""
    from repro.apps.catalog import AppCatalog
    from repro.collusion.ecosystem import build_ecosystem
    from repro.core.config import StudyConfig
    from repro.core.world import World

    w = World(StudyConfig(scale=0.004, seed=13))
    AppCatalog(w.apps, w.rng.stream("catalog"), tail_apps=0).build()
    eco = build_ecosystem(w, network_limit=3)
    return w, eco


def test_membership_built_to_calibrated_pool(built):
    w, eco = built
    hublaa = eco.network("hublaa.me")
    assert hublaa.member_count() == hublaa.profile.pool_size(0.004)


def test_join_stores_token(built):
    w, eco = built
    net = eco.network("hublaa.me")
    user = w.platform.register_account("Joiner")
    member = net.join(user.account_id)
    assert member == user.account_id
    token = net.token_db[member]
    assert w.tokens.validate(token).user_id == member


def test_join_reuses_live_token_across_networks(built):
    w, eco = built
    a = eco.network("hublaa.me")
    b = eco.network("official-liker.net")
    assert a.profile.app_id == b.profile.app_id  # both HTC Sense
    user = w.platform.register_account("DoubleAgent")
    a.join(user.account_id)
    b.join(user.account_id)
    assert a.token_db[user.account_id] == b.token_db[user.account_id]


def test_like_request_delivers_quota(built):
    w, eco = built
    net = eco.network("hublaa.me")
    hp = w.platform.register_account("HP", is_honeypot=True)
    net.join(hp.account_id)
    post = w.platform.create_post(hp.account_id, "x")
    report = net.submit_like_request(hp.account_id, post.post_id)
    assert report.delivered == net.profile.likes_per_request
    fetched = w.platform.get_post(post.post_id)
    assert fetched.like_count == report.delivered
    # All likers are distinct members, not the requester.
    likers = fetched.liker_ids()
    assert hp.account_id not in likers
    assert len(set(likers)) == len(likers)


def test_likes_attributed_to_exploited_app_and_pool_ips(built):
    w, eco = built
    net = eco.network("hublaa.me")
    hp = w.platform.register_account("HP2", is_honeypot=True)
    net.join(hp.account_id)
    post = w.platform.create_post(hp.account_id, "x")
    net.submit_like_request(hp.account_id, post.post_id)
    pool = set(net.ip_pool.addresses)
    for like in w.platform.get_post(post.post_id).likes:
        assert like.via_app_id == net.profile.app_id
        assert like.source_ip in pool


def test_non_member_cannot_request(built):
    w, eco = built
    net = eco.network("hublaa.me")
    outsider = w.platform.register_account("Outsider")
    post = w.platform.create_post(outsider.account_id, "x")
    with pytest.raises(PermissionError):
        net.submit_like_request(outsider.account_id, post.post_id)


def test_daily_request_limit(built):
    w, eco = built
    net = eco.network("mg-likers.com")
    # mg-likers has no daily limit; emulate djliker's via the profile of
    # a fresh honeypot on a limited network if built, else skip.
    assert net.profile.daily_request_limit is None


def test_comment_request(built):
    w, eco = built
    net = eco.network("mg-likers.com")
    hp = w.platform.register_account("HP3", is_honeypot=True)
    net.join(hp.account_id)
    post = w.platform.create_post(hp.account_id, "x")
    report = net.submit_comment_request(hp.account_id, post.post_id)
    assert report.delivered == net.profile.comments_per_post
    comments = w.platform.get_post(post.post_id).comments
    assert len(comments) == report.delivered
    dictionary = set(net.comment_dictionary.comments)
    assert all(c.text in dictionary for c in comments)


def test_comment_request_without_service(built):
    w, eco = built
    net = eco.network("hublaa.me")
    hp = w.platform.register_account("HP4", is_honeypot=True)
    net.join(hp.account_id)
    post = w.platform.create_post(hp.account_id, "x")
    with pytest.raises(PermissionError):
        net.submit_comment_request(hp.account_id, post.post_id)


def test_dead_tokens_dropped_on_use(built):
    w, eco = built
    net = eco.network("official-liker.net")
    hp = w.platform.register_account("HP5", is_honeypot=True)
    net.join(hp.account_id)
    # Invalidate a big slice of the pool.
    victims = list(net.token_db)[:200]
    for member in victims:
        if member != hp.account_id:
            w.tokens.invalidate(net.token_db[member])
    before = net.member_count()
    post = w.platform.create_post(hp.account_id, "x")
    report = net.submit_like_request(hp.account_id, post.post_id)
    assert report.dead_tokens_dropped > 0
    assert net.member_count() < before
    assert len(net.dead_members) >= report.dead_tokens_dropped


def test_outage_blocks_requests(built):
    w, eco = built
    net = eco.network("hublaa.me")
    hp = w.platform.register_account("HP6", is_honeypot=True)
    net.join(hp.account_id)
    now = w.clock.now()
    net.schedule_outage(now, now + DAY)
    post = w.platform.create_post(hp.account_id, "x")
    report = net.submit_like_request(hp.account_id, post.post_id)
    assert report.delivered == 0
    assert net.in_scheduled_outage()


def test_outage_validation(built):
    w, eco = built
    net = eco.network("hublaa.me")
    with pytest.raises(ValueError):
        net.schedule_outage(100, 100)


def test_background_usage_spends_member_token(built):
    w, eco = built
    net = eco.network("official-liker.net")
    hp = w.platform.register_account("HP7", is_honeypot=True)
    net.join(hp.account_id)
    performed = net.use_member_token_for_background(hp.account_id, 5)
    assert performed == 5
    records = w.platform.activity_log.for_actor(hp.account_id)
    likes = [r for r in records if r.verb == "like"]
    assert len(likes) == 5
    # Targets are other members' content, never the honeypot's own.
    assert all(r.target_owner_id != hp.account_id for r in likes)


def test_replenishment_rejoins_dead_members(built):
    w, eco = built
    net = eco.network("mg-likers.com")
    # Kill some members and enable replenishment.
    victims = list(net.token_db)[:50]
    for member in victims:
        w.tokens.invalidate(net.token_db[member])
        net._drop_member(member)
    assert len(net.dead_members) >= 50
    net.replenishment_enabled = True
    before_members = net.member_count()
    net.daily_tick()
    assert net.member_count() > before_members


def test_monetization_premium_quota(built):
    w, eco = built
    net = eco.network("hublaa.me")
    hp = w.platform.register_account("Payer", is_honeypot=True)
    net.join(hp.account_id)
    free = net.monetization.likes_per_request_for(hp.account_id)
    net.monetization.subscribe(hp.account_id, "ultimate")
    premium = net.monetization.likes_per_request_for(hp.account_id)
    assert premium == 2000 > free
    assert net.monetization.monthly_revenue_usd() == pytest.approx(29.99)
