"""RL501 — metric label hygiene at telemetry-registry call sites."""

import textwrap

from repro.lint import lint_source


def rules_of(source, path="repro/module.py"):
    findings = lint_source(textwrap.dedent(source), path=path)
    return [finding.rule for finding in findings]


def test_rl501_flags_fstring_concat_and_str_calls():
    assert rules_of("""
        from repro.telemetry.registry import TELEMETRY

        def f(endpoint, token):
            TELEMETRY.count("requests_total", endpoint=f"api:{endpoint}")
            TELEMETRY.observe("latency", 3, route="/v2/" + endpoint)
            TELEMETRY.gauge_set("gauge", 1, token=str(token))
            TELEMETRY.count("requests_total",
                            name="x{}".format(endpoint))
    """) == ["RL501"] * 4


def test_rl501_flags_starstar_label_forwarding():
    assert rules_of("""
        from repro.telemetry.registry import TELEMETRY

        def f(labels):
            TELEMETRY.count("requests_total", **labels)
    """) == ["RL501"]


def test_rl501_accepts_literals_names_attributes_and_redact():
    assert rules_of("""
        from repro.oauth.redact import redact_token
        from repro.telemetry.registry import TELEMETRY

        def f(report, token):
            outcome = report.outcome
            TELEMETRY.count("requests_total", outcome=outcome)
            TELEMETRY.count("errors_total", code="rate_limited")
            TELEMETRY.observe("wave_size", report.attempts,
                              stage=report.stage)
            TELEMETRY.gauge_set("window_keys", 3, window="token")
            TELEMETRY.count("token_events", token=redact_token(token))
    """) == []


def test_rl501_signature_kwargs_are_not_labels():
    # ``value=`` and ``prefix=`` belong to the method signature; they
    # carry measurements, not label values.
    assert rules_of("""
        from repro.telemetry.registry import TELEMETRY

        def f(counters, n):
            TELEMETRY.count("frames_total", value=n + 1)
            TELEMETRY.count_many(counters, prefix="retries.")
    """) == []


def test_rl501_resolves_through_aliases_and_bare_name():
    assert rules_of("""
        from repro.telemetry.registry import TELEMETRY as REG

        def f(x):
            REG.count("total", kind=f"{x}")
    """) == ["RL501"]
    # The project-wide conventional name matches even without an
    # import (exec'd snippets, fixtures receiving the registry).
    assert rules_of("""
        def f(TELEMETRY, x):
            TELEMETRY.count("total", kind=f"{x}")
    """) == ["RL501"]


def test_rl501_ignores_unrelated_objects():
    # ``count`` on anything that is not the registry is out of scope.
    assert rules_of("""
        def f(collection, x):
            collection.count("a", kind=f"{x}")
    """) == []


def test_rl501_instrumented_modules_are_clean():
    import pathlib

    from repro.lint import LintEngine

    src = pathlib.Path(__file__).parent.parent / "src"
    pairs = []
    for rel in ("repro/graphapi/api.py", "repro/faults/retry.py",
                "repro/collusion/network.py", "repro/journal/wal.py",
                "repro/detection/synchrotrap.py",
                "repro/countermeasures/sharding.py"):
        pairs.append((rel, src / rel))
    report = LintEngine().run_files(pairs)
    assert [f for f in report.findings if f.rule == "RL501"] == []
