"""Tests for the rate-limiting primitives."""

import pytest

from repro.graphapi.ratelimit import (
    PolicyEnforcer,
    RateLimitPolicy,
    SlidingWindowLimiter,
)
from repro.sim.clock import DAY, HOUR


def test_limiter_allows_up_to_limit():
    limiter = SlidingWindowLimiter(limit=2, window_seconds=100)
    assert limiter.try_acquire("k", 0)
    assert limiter.try_acquire("k", 10)
    assert not limiter.try_acquire("k", 20)


def test_limiter_window_slides():
    limiter = SlidingWindowLimiter(limit=1, window_seconds=100)
    assert limiter.try_acquire("k", 0)
    assert not limiter.try_acquire("k", 99)
    assert limiter.try_acquire("k", 101)


def test_limiter_keys_independent():
    limiter = SlidingWindowLimiter(limit=1, window_seconds=100)
    assert limiter.try_acquire("a", 0)
    assert limiter.try_acquire("b", 0)


def test_limiter_usage():
    limiter = SlidingWindowLimiter(limit=5, window_seconds=100)
    limiter.hit("k", 0)
    limiter.hit("k", 50)
    assert limiter.usage("k", 60) == 2
    assert limiter.usage("k", 140) == 1


def test_limiter_validates_args():
    with pytest.raises(ValueError):
        SlidingWindowLimiter(limit=0, window_seconds=10)
    with pytest.raises(ValueError):
        SlidingWindowLimiter(limit=1, window_seconds=0)


def test_policy_defaults():
    policy = RateLimitPolicy()
    assert policy.ip_likes_per_day is None
    assert policy.ip_likes_per_week is None
    assert not policy.is_as_blocked("app:1", 64500)


def test_policy_as_blocking_scoped_per_app():
    policy = RateLimitPolicy()
    policy.block_as_for_app("app:1", 64500)
    assert policy.is_as_blocked("app:1", 64500)
    assert not policy.is_as_blocked("app:2", 64500)
    assert not policy.is_as_blocked("app:1", None)


def test_enforcer_token_budget():
    policy = RateLimitPolicy(token_actions_per_day=2)
    enforcer = PolicyEnforcer(policy)
    assert enforcer.admit_token_action("t", 0)
    assert enforcer.admit_token_action("t", 1)
    assert not enforcer.admit_token_action("t", 2)


def test_enforcer_rebuilds_on_policy_change():
    policy = RateLimitPolicy(token_actions_per_day=1)
    enforcer = PolicyEnforcer(policy)
    assert enforcer.admit_token_action("t", 0)
    assert not enforcer.admit_token_action("t", 1)
    policy.token_actions_per_day = 10
    assert enforcer.admit_token_action("t", 2)


def test_enforcer_ip_limits_disabled_by_default():
    enforcer = PolicyEnforcer(RateLimitPolicy())
    for i in range(1000):
        assert enforcer.admit_ip_like("1.2.3.4", i) is None


def test_enforcer_ip_daily_and_weekly():
    policy = RateLimitPolicy(ip_likes_per_day=2, ip_likes_per_week=3)
    enforcer = PolicyEnforcer(policy)
    assert enforcer.admit_ip_like("ip", 0) is None
    assert enforcer.admit_ip_like("ip", 1) is None
    assert enforcer.admit_ip_like("ip", 2) == "daily"
    # Next day the daily window clears but the weekly one still counts.
    later = DAY + HOUR
    assert enforcer.admit_ip_like("ip", later) is None
    assert enforcer.admit_ip_like("ip", later + 1) == "weekly"


def test_enforcer_missing_ip_never_limited():
    policy = RateLimitPolicy(ip_likes_per_day=1)
    enforcer = PolicyEnforcer(policy)
    for i in range(10):
        assert enforcer.admit_ip_like(None, i) is None


def test_saturation_memo_survives_lazy_eviction():
    """Regression: the memo stays exact even after an unrelated read
    evicts expired events from the key's deque mid-window.

    ``hit()`` records unconditionally, so a deque can hold more events
    than ``limit``; the memo expiry is pinned to the event that must
    expire before the key can admit again, not to the deque head.
    """
    limiter = SlidingWindowLimiter(limit=3, window_seconds=100)
    for t in (0, 10, 20, 30):  # one past the limit
        limiter.hit("k", t)
    # Saturated: admits resume when the event at t=10 leaves the window.
    assert not limiter.try_acquire("k", 40)
    assert limiter._saturated_until["k"] == 110
    # An unrelated usage() probe lazily evicts the t=0 event...
    assert limiter.usage("k", 105) == 3
    # ...but the memo still rejects right up to its exact expiry.
    assert not limiter.try_acquire("k", 109)
    assert limiter.try_acquire("k", 110)
    assert "k" not in limiter._saturated_until


def test_saturation_memo_cleared_on_expiry_probe():
    limiter = SlidingWindowLimiter(limit=1, window_seconds=100)
    assert limiter.try_acquire("k", 0)
    assert not limiter.try_acquire("k", 50)
    assert limiter.saturated("k", 60)
    # Probing at/after expiry deletes the memo entry (lazy eviction).
    assert not limiter.saturated("k", 100)
    assert "k" not in limiter._saturated_until
    assert limiter.try_acquire("k", 100)
