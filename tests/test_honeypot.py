"""Tests for the honeypot apparatus: ledger, crawler, captcha, milker."""

import pytest

from repro.honeypot.account import create_honeypot
from repro.honeypot.captcha import CaptchaSolvingService
from repro.honeypot.crawler import TimelineCrawler
from repro.honeypot.ledger import MilkedTokenLedger
from repro.honeypot.milker import MilkingCampaign


# ----------------------------------------------------------------------
# Ledger
# ----------------------------------------------------------------------

def test_ledger_first_and_repeat_observations():
    ledger = MilkedTokenLedger()
    ledger.observe("acct:1", "net.a", timestamp=10, day=0, app_id="app")
    ledger.observe("acct:1", "net.b", timestamp=50, day=1)
    obs = ledger.get("acct:1")
    assert obs.first_seen == 10
    assert obs.last_seen == 50
    assert obs.networks == {"net.a", "net.b"}
    assert obs.sightings == 2
    assert len(ledger) == 1


def test_ledger_day_indexes():
    ledger = MilkedTokenLedger()
    ledger.observe("a", "n", 0, day=0)
    ledger.observe("b", "n", 100, day=1)
    ledger.observe("a", "n", 120, day=1)
    assert ledger.newly_observed_on(0) == ["a"]
    assert ledger.newly_observed_on(1) == ["b"]
    assert set(ledger.observed_on(1)) == {"a", "b"}
    assert ledger.observed_until(0) == ["a"]
    assert set(ledger.observed_until(1)) == {"a", "b"}


def test_ledger_accounts_in_first_seen_order():
    ledger = MilkedTokenLedger()
    ledger.observe("b", "n", 0, day=0)
    ledger.observe("a", "n", 5, day=1)
    assert ledger.accounts() == ["b", "a"]


def test_ledger_multi_network_accounts():
    ledger = MilkedTokenLedger()
    ledger.observe("a", "n1", 0, day=0)
    ledger.observe("a", "n2", 1, day=0)
    ledger.observe("b", "n1", 2, day=0)
    assert ledger.multi_network_accounts() == ["a"]
    assert ledger.accounts_for_network("n1") == ["a", "b"]


# ----------------------------------------------------------------------
# CAPTCHA service
# ----------------------------------------------------------------------

def test_captcha_cost_accounting():
    service = CaptchaSolvingService()
    for i in range(1000):
        service.solve(i)
    assert service.solved == 1000
    assert service.total_cost_usd == pytest.approx(1.39)


# ----------------------------------------------------------------------
# Crawler
# ----------------------------------------------------------------------

def test_crawler_incremental(mini_study):
    world, catalog, ecosystem = mini_study
    network = ecosystem.network("hublaa.me")
    honeypot = create_honeypot(world, network)
    ledger = MilkedTokenLedger()
    crawler = TimelineCrawler(world, ledger)
    post = world.platform.create_post(honeypot.account_id, "x")
    honeypot.like_post_ids.append(post.post_id)
    network.submit_like_request(honeypot.account_id, post.post_id)
    likes, comments = crawler.crawl_incoming(honeypot)
    assert likes == world.platform.get_post(post.post_id).like_count
    assert len(ledger) == likes
    # A second crawl finds nothing new.
    assert crawler.crawl_incoming(honeypot) == (0, 0)


def test_crawler_outgoing_summary(mini_study):
    world, catalog, ecosystem = mini_study
    network = ecosystem.network("official-liker.net")
    honeypot = create_honeypot(world, network)
    network.use_member_token_for_background(honeypot.account_id, 8)
    crawler = TimelineCrawler(world, MilkedTokenLedger())
    summary = crawler.crawl_outgoing(honeypot)
    assert summary.activities == 8
    assert summary.target_accounts + summary.target_pages <= 8
    assert summary.target_accounts + summary.target_pages > 0


# ----------------------------------------------------------------------
# Milking campaign (integration, small)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def milked():
    from repro.apps.catalog import AppCatalog
    from repro.collusion.ecosystem import build_ecosystem
    from repro.core.config import StudyConfig
    from repro.core.world import World

    w = World(StudyConfig(scale=0.005, seed=3, milking_days=8))
    AppCatalog(w.apps, w.rng.stream("catalog"), tail_apps=0).build()
    eco = build_ecosystem(w, network_limit=4)
    campaign = MilkingCampaign(w, eco)
    results = campaign.run(8)
    return w, eco, results


def test_milking_posts_match_plan(milked):
    w, eco, results = milked
    for domain, r in results.per_network.items():
        expected = w.config.scaled(
            eco.network(domain).profile.posts_milked)
        assert r.posts_submitted == expected


def test_milking_avg_likes_matches_quota(milked):
    w, eco, results = milked
    for domain in ("hublaa.me", "official-liker.net", "mg-likers.com"):
        r = results.per_network[domain]
        quota = eco.network(domain).profile.likes_per_request
        assert r.avg_likes_per_post == pytest.approx(quota, rel=0.1)


def test_milking_membership_estimates_scale(milked):
    w, eco, results = milked
    for domain in ("hublaa.me", "official-liker.net"):
        r = results.per_network[domain]
        target = w.config.scaled(
            eco.network(domain).profile.membership_target)
        assert r.membership_estimate == pytest.approx(target, rel=0.2)


def test_milking_cumulative_unique_monotone_and_bounded(milked):
    w, eco, results = milked
    r = results.per_network["hublaa.me"]
    series = r.cumulative_unique
    assert all(a <= b for a, b in zip(series, series[1:]))
    assert series[-1] == r.membership_estimate
    assert series[-1] <= sum(r.likes_per_post)


def test_milking_outgoing_activities_present(milked):
    w, eco, results = milked
    r = results.per_network["official-liker.net"]
    assert r.outgoing is not None
    expected = w.config.scaled(
        eco.network("official-liker.net").profile.outgoing_activities,
        minimum=0)
    assert r.outgoing.activities == pytest.approx(expected, abs=3)


def test_milking_ledger_covers_unique_accounts(milked):
    w, eco, results = milked
    # The ledger sees likers AND commenters; the membership estimate
    # counts likers only (§4.1), so the ledger is a superset.
    assert len(results.ledger) >= results.unique_accounts()
    liker_ids = set()
    for r in results.per_network.values():
        liker_ids |= r.unique_accounts
    assert liker_ids <= set(results.ledger.accounts())


def test_milking_overlap_between_networks(milked):
    w, eco, results = milked
    assert results.total_memberships() >= results.unique_accounts()
