"""Tests for SynchroTrap, the lockstep baseline, and evaluation."""

import pytest

from repro.detection.actions import Action
from repro.detection.evaluation import evaluate_detection
from repro.detection.lockstep import LockstepDetector
from repro.detection.synchrotrap import SynchroTrap
from repro.detection.unionfind import UnionFind
from repro.sim.clock import HOUR


def lockstep_actions(accounts, targets, t0=0, spacing=60):
    """Every account likes every target at nearly the same time."""
    actions = []
    for i, target in enumerate(targets):
        when = t0 + i * spacing
        for account in accounts:
            actions.append(Action(account, target, when))
    return actions


# ----------------------------------------------------------------------
# Union-find
# ----------------------------------------------------------------------

def test_union_find_groups():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("c", "d")
    uf.union("b", "c")
    groups = uf.groups()
    assert len(groups) == 1
    assert set(groups[0]) == {"a", "b", "c", "d"}


def test_union_find_separate_components():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("x", "y")
    assert uf.find("a") != uf.find("x")
    assert len(uf.groups()) == 2


# ----------------------------------------------------------------------
# SynchroTrap
# ----------------------------------------------------------------------

def test_synchrotrap_catches_lockstep_botnet():
    bots = [f"bot{i}" for i in range(30)]
    targets = [f"post{i}" for i in range(12)]
    detector = SynchroTrap(min_cluster_size=10, min_matched_actions=5,
                           similarity_threshold=0.5)
    result = detector.detect(lockstep_actions(bots, targets))
    assert set(bots) <= result.flagged_accounts
    assert len(result.clusters) == 1


def test_synchrotrap_ignores_sparse_coincidence():
    """Accounts that co-like only one or two posts never accumulate
    enough matched actions — the collusion networks' evasion (§6.3)."""
    actions = []
    # 100 accounts, each likes exactly one of 10 posts.
    for i in range(100):
        actions.append(Action(f"user{i}", f"post{i % 10}", i * 10))
    result = SynchroTrap().detect(actions)
    assert result.flagged_accounts == set()


def test_synchrotrap_time_window_matters():
    bots = [f"bot{i}" for i in range(20)]
    targets = [f"post{i}" for i in range(10)]
    # Same targets, but each bot acts days apart from the others.
    actions = []
    for t_idx, target in enumerate(targets):
        for b_idx, bot in enumerate(bots):
            actions.append(Action(bot, target,
                                  t_idx * 100 + b_idx * 50 * HOUR))
    result = SynchroTrap(window_seconds=3600).detect(actions)
    assert result.flagged_accounts == set()


def test_synchrotrap_min_cluster_size():
    bots = [f"bot{i}" for i in range(5)]
    targets = [f"post{i}" for i in range(12)]
    detector = SynchroTrap(min_cluster_size=10)
    result = detector.detect(lockstep_actions(bots, targets))
    assert result.flagged_accounts == set()  # too few to form a cluster


def test_synchrotrap_similarity_denominator():
    """An account with many unrelated actions dilutes its similarity."""
    bots = [f"bot{i}" for i in range(12)]
    targets = [f"post{i}" for i in range(10)]
    actions = lockstep_actions(bots, targets)
    # bot0 also has a large volume of unrelated solo actions.
    for i in range(200):
        actions.append(Action("noisy", f"solo{i}", i * 7))
    result = SynchroTrap(min_cluster_size=5).detect(actions)
    assert "noisy" not in result.flagged_accounts
    assert set(bots) <= result.flagged_accounts


def test_synchrotrap_validates_params():
    with pytest.raises(ValueError):
        SynchroTrap(window_seconds=0)
    with pytest.raises(ValueError):
        SynchroTrap(similarity_threshold=0.0)


def test_synchrotrap_bucket_sampling_keeps_result_bounded():
    bots = [f"bot{i}" for i in range(300)]
    detector = SynchroTrap(max_bucket_actors=50, min_cluster_size=10)
    result = detector.detect(lockstep_actions(bots, ["p1"] * 1))
    # One post cannot produce min_matched_actions matches.
    assert result.flagged_accounts == set()
    assert result.pairs_scored <= 50 * 49  # sampling bound (two buckets)


# ----------------------------------------------------------------------
# Lockstep baseline
# ----------------------------------------------------------------------

def test_lockstep_detector_catches_shared_targets():
    bots = [f"bot{i}" for i in range(15)]
    targets = [f"post{i}" for i in range(8)]
    # Timing spread out doesn't matter for the lockstep detector.
    actions = []
    for t_idx, target in enumerate(targets):
        for b_idx, bot in enumerate(bots):
            actions.append(Action(bot, target,
                                  t_idx * 100 + b_idx * 50 * HOUR))
    result = LockstepDetector(min_common_targets=5,
                              min_cluster_size=10).detect(actions)
    assert set(bots) <= result.flagged_accounts


def test_lockstep_detector_ignores_disjoint_accounts():
    actions = [Action(f"user{i}", f"post{i}", i) for i in range(100)]
    result = LockstepDetector().detect(actions)
    assert result.flagged_accounts == set()


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------

def test_evaluation_metrics():
    bots = [f"bot{i}" for i in range(30)]
    result = SynchroTrap(min_cluster_size=10).detect(
        lockstep_actions(bots, [f"p{i}" for i in range(10)]))
    metrics = evaluate_detection(result, ground_truth=bots)
    assert metrics.precision == 1.0
    assert metrics.recall == 1.0
    assert metrics.f1 == 1.0


def test_evaluation_handles_empty():
    result = SynchroTrap().detect([])
    metrics = evaluate_detection(result, ground_truth=["a"])
    assert metrics.precision == 0.0
    assert metrics.recall == 0.0
    assert metrics.f1 == 0.0
