"""Tests for lexical analysis: tokenization, richness, ARI, dictionary."""


from repro.lexical.analysis import (
    analyze_comments,
    lexical_richness,
    tokenize,
)
from repro.lexical.ari import (
    automated_readability_index,
    corpus_ari,
    count_sentences,
)
from repro.lexical.wordlist import (
    english_words,
    is_dictionary_word,
    normalize_token,
)


def test_tokenize_skips_pure_punctuation():
    # "<3" survives tokenization (contains a digit) but normalizes away.
    assert tokenize("nice pic !!! <3 ??") == ["nice", "pic", "<3"]
    assert tokenize("!!! ?? ...") == []


def test_tokenize_keeps_leet():
    assert tokenize("gr8 w00t") == ["gr8", "w00t"]


def test_normalize_token():
    assert normalize_token("Nice!!!") == "nice"
    assert normalize_token("gr8") == "gr"
    assert normalize_token("??!") == ""


def test_dictionary_classification():
    assert is_dictionary_word("awesome")
    assert is_dictionary_word("Nice!")
    assert not is_dictionary_word("bravooooo")
    assert not is_dictionary_word("bfewguvchieuwver")
    assert not is_dictionary_word("??")


def test_wordlist_loads_once():
    words = english_words()
    assert "nice" in words
    assert len(words) > 100


def test_lexical_richness():
    assert lexical_richness(["a", "a", "b", "b"]) == 0.5
    assert lexical_richness([]) == 0.0
    assert lexical_richness(["x"]) == 1.0


def test_count_sentences():
    assert count_sentences("Hello there. How are you?") == 2
    assert count_sentences("no terminator") == 1
    assert count_sentences("!!! ???") == 1  # punctuation only


def test_ari_monotone_in_word_length():
    short = automated_readability_index("an ox is in it")
    long_ = automated_readability_index(
        "extraordinarily sophisticated vocabulary illuminates discourse")
    assert long_ > short


def test_ari_empty():
    assert automated_readability_index("") == 0.0
    assert corpus_ari([]) == 0.0
    assert corpus_ari(["   "]) == 0.0


def test_elongated_words_inflate_ari():
    plain = corpus_ari(["nice pic"] * 10)
    inflated = corpus_ari(["niceeeeeeeee piccccccccc"] * 10)
    assert inflated > plain


def test_analyze_comments_full():
    comments = ["nice pic", "nice pic", "gr8 photo", "so lovely !!!"]
    analysis = analyze_comments(comments, posts=2)
    assert analysis.comments == 4
    assert analysis.unique_comments == 3
    assert analysis.avg_comments_per_post == 2.0
    assert analysis.unique_comment_pct == 75.0
    assert analysis.words == 8
    # gr8 -> "gr" is non-dictionary.
    assert analysis.non_dictionary_pct > 0


def test_analyze_comments_empty():
    analysis = analyze_comments([], posts=0)
    assert analysis.comments == 0
    assert analysis.lexical_richness_pct == 0.0
    assert analysis.ari == 0.0
