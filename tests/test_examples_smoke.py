"""Smoke tests: the fast example scripts run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

FAST_EXAMPLES = [
    ("quickstart.py", [], "Requested likes"),
    ("token_leakage_demo.py", [], "EXPLOITED"),
    ("detect_lockstep.py", [], "recall"),
]


@pytest.mark.parametrize("script,args,marker", FAST_EXAMPLES,
                         ids=[s for s, _, _ in FAST_EXAMPLES])
def test_example_runs(script, args, marker):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert marker in result.stdout


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 8
    for script in scripts:
        text = script.read_text()
        assert text.startswith("#!/usr/bin/env python3"), script.name
        assert '"""' in text.split("\n", 1)[1][:20], script.name


def test_cli_help_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True, timeout=60)
    assert result.returncode == 0
    for command in ("scan", "milk", "campaign", "full", "score"):
        assert command in result.stdout
