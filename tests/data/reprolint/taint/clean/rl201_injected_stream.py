"""Fixture: RL201 clean twin — the entity receives its stream."""


def shuffle_members(members, rng):
    rng.shuffle(members)
    return members


class Scheduler:
    def __init__(self, world):
        self.rng = world.rng.stream("scheduler")
