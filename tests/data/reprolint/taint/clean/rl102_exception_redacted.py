"""Fixture: RL102 clean twin — redacted reference in the message."""

from repro.oauth.redact import redact_token


def validate_or_raise(token_string, live):
    ref = redact_token(token_string)
    if token_string not in live:
        raise ValueError(f"unknown token {ref}")
    return live[token_string]
