"""Fixture: RL103 clean twin — only redacted digests are persisted."""

import json

from repro.oauth.redact import redact_token


def export_tokens(out_path, token_db):
    rows = [redact_token(token_db[user]) for user in sorted(token_db)]
    out_path.write_text(json.dumps(rows))
