"""Fixture: RL101 clean twin — the redactor clears the taint."""

import logging

from repro.oauth.redact import redact_token

log = logging.getLogger("graphapi")


def record_grant(access_token, user_id):
    log.info("issued %s to %s", redact_token(access_token), user_id)
