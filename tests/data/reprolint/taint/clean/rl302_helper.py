"""Fixture: RL302 clean support module — the helper rides the API."""


def seed_profile(api, account_id):
    api.create_post(account_id, "seeded wall post")
