"""Fixture: RL301 clean twin — reads are free; writes ride the API."""


def deliver_like(world, request):
    feed = world.platform.get_post(request.post_id)
    if feed is not None:
        world.api.execute(request)
