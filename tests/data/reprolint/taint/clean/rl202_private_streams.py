"""Fixture: RL202 clean twin — each entity owns a distinct stream."""


class Milker:
    def __init__(self, world):
        self.rng = world.rng.stream("milking")


class Crawler:
    def __init__(self, world):
        self.rng = world.rng.stream("crawling")
