"""Fixture: RL203 clean twin — the clock API buckets; durations are
plain arithmetic and stay legal."""


def day_bucket(clock):
    return clock.day()


def elapsed(clock, started_at):
    return clock.now() - started_at
