"""Fixture: RL302 clean twin — the called helper has no direct write."""

from repro.support.seeding import seed_profile


def boost_member(world, member_id):
    seed_profile(world.api, member_id)
