"""Two-hop clean twin: the chain routes through redact_token() first,
so the fixpoint's deep summaries carry no taint to the sink."""

import logging

from repro.oauth.redact import redact_token

log = logging.getLogger("campaign")


def describe(value):
    return fmt(redact_token(value))


def fmt(value):
    return "token " + value


def emit(access_token):
    log.warning(describe(access_token))
