"""Fixture: RL302 — collusion code laundering a write through a helper."""

from repro.support.seeding import seed_profile


def boost_member(world, member_id):
    seed_profile(world.platform, member_id)
