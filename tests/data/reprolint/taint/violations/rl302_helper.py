"""Fixture: RL302 support module — a helper that writes directly."""


def seed_profile(platform, account_id):
    platform.create_post(account_id, "seeded wall post")
