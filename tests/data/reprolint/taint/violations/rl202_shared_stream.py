"""Fixture: RL202 — two entities request the same stream name."""


class Milker:
    def __init__(self, world):
        self.rng = world.rng.stream("pacing")


class Crawler:
    def __init__(self, world):
        self.rng = world.rng.stream("pacing")
