"""Fixture: RL101 — a token value reaches a logging sink."""

import logging

log = logging.getLogger("graphapi")


def record_grant(access_token, user_id):
    log.info("issued %s to %s", access_token, user_id)
