"""Fixture: RL203 — raw bucket arithmetic on a clock reading."""

DAY = 86_400


def day_bucket(clock):
    now = clock.now()
    return now // DAY
