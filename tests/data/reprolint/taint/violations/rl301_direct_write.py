"""Fixture: RL301 — collusion code writing to the platform directly."""


def deliver_like(world, member_id, post_id):
    world.platform.like_post(member_id, post_id)
