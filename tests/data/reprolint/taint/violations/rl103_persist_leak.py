"""Fixture: RL103 — token values persisted to an artifact."""

import json


def export_tokens(out_path, token_db):
    rows = [token_db[user] for user in sorted(token_db)]
    out_path.write_text(json.dumps(rows))
