"""Fixture: RL201 — RNG stream constructed at module scope."""

import random

SHUFFLER = random.Random(1234)


def shuffle_members(members):
    SHUFFLER.shuffle(members)
    return members
