"""Fixture: RL102 — a token value reaches an exception message."""


def validate_or_raise(token_string, live):
    suffix = token_string[-6:]
    if token_string not in live:
        raise ValueError(f"unknown token {suffix}")
    return live[token_string]
