"""Two-hop interprocedural leak: the token flows through describe()
*and* fmt() before reaching the log sink.  One-level summaries stop at
describe() (fmt() has no summary yet when describe() is summarised);
the fixpoint converges and flags the call site in emit()."""

import logging

log = logging.getLogger("campaign")


def describe(value):
    return fmt(value)


def fmt(value):
    return "token " + value


def emit(access_token):
    log.warning(describe(access_token))
