"""Fixture: RL501 — bounded labels and sanctioned redaction."""

from repro.oauth.redact import redact_token
from repro.telemetry.registry import TELEMETRY


def record(report, token):
    outcome = report.outcome
    TELEMETRY.count("requests_total", outcome=outcome)
    TELEMETRY.count("errors_total", code="rate_limited")
    TELEMETRY.observe("wave_size", report.attempts, stage=report.stage)
    TELEMETRY.gauge_set("window_keys", 3, window="token")
    TELEMETRY.count("token_events_total", token=redact_token(token))
