"""Fixture: clean counterpart of RL003 — ordered iteration only."""

import os


def emit(callback, directory, members):
    for entry in sorted(os.listdir(directory)):
        callback(entry)
    for member in sorted({"c", "a", "b"}):
        callback(member)
    if "a" in {"a", "b"}:          # membership tests are fine
        return len(set(members))   # size is order-free
    return None
