"""Fixture: clean counterpart of RL005 — disciplined handlers."""

import warnings


def deliver(network, batch):
    try:
        return network.send(batch)
    except ValueError:                     # narrow: fine
        return None


def deliver_logged(network, batch):
    try:
        return network.send(batch)
    except Exception as error:             # broad but used + logged
        warnings.warn(f"delivery failed: {error!r}", stacklevel=2)
        return None


def deliver_reraise(network, batch):
    try:
        return network.send(batch)
    except Exception:                      # broad but re-raises
        network.rollback()
        raise
