"""Fixture: clean counterpart of RL001 — time from the sim clock."""


def stamp_event(event, clock):
    event.at = clock.now()
    return event
