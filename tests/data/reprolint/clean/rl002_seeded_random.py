"""Fixture: clean counterpart of RL002 — seeded, stream-derived RNG."""

import random


def pick(members, rng, master_seed):
    fallback = random.Random(master_seed)  # reprolint: disable=RL601 — fixture demonstrates RL002's explicit-seed counterexample
    return (rng or fallback).choice(members)
