"""Fixture: clean counterpart of RL002 — seeded, stream-derived RNG."""

import random


def pick(members, rng, master_seed):
    fallback = random.Random(master_seed)
    return (rng or fallback).choice(members)
