"""Fixture: clean counterpart of RL004 — stable digests, no entropy."""

import hashlib


def make_token(seed, name):
    digest = hashlib.blake2b(f"{seed}:{name}".encode(), digest_size=8)
    return digest.hexdigest()
