"""RL402 clean twin: every delta field is explicit at construction and
consumed by the merge."""

from dataclasses import dataclass


@dataclass
class WorkDelta:
    domains: tuple
    likes: int
    failures: tuple


def child_export(shard):
    return WorkDelta(domains=shard.owned, likes=shard.admitted,
                     failures=tuple(shard.trouble))


def merge(parent, delta):
    parent.adopt(delta.domains)
    parent.likes += delta.likes
    parent.failures.extend(delta.failures)
