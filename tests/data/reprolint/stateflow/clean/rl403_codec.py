"""RL403 clean twin: the repr/literal_eval round-trip lives inside the
named codec pair; call sites only touch encode_row/decode_row."""

from ast import literal_eval

ROW_TAG = b"R"


def encode_row(row):
    return ROW_TAG + repr(row).encode("utf-8")


def decode_row(payload):
    return literal_eval(payload[len(ROW_TAG):].decode("utf-8"))


def append_row(wal, row):
    wal._write_frame(encode_row(row))


def replay_rows(wal):
    for payload in wal.frames():
        yield decode_row(payload)
