"""RL401 clean twin: every checkpoint field is passed explicitly at
construction and read back on restore."""

from dataclasses import dataclass


@dataclass
class WidgetCheckpoint:
    day: int
    cursor: int
    spool: tuple


def capture(widget):
    return WidgetCheckpoint(day=widget.day, cursor=widget.cursor,
                            spool=tuple(widget.pending))


def restore(widget, checkpoint):
    widget.day = checkpoint.day
    widget.cursor = checkpoint.cursor
    widget.pending = list(checkpoint.spool)
