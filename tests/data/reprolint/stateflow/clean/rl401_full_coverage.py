"""RL401 clean twin: every mutated attribute crosses the snapshot
boundary — ``_peak`` is exported and installed alongside ``total``."""


class PeakTracker:
    def __init__(self):
        self.total = 0
        self._peak = 0

    def record(self, value):
        self.total += value
        if self.total > self._peak:
            self._peak = self.total

    def export_state(self):
        return {"total": self.total, "peak": self._peak}

    def install_state(self, state):
        self.total = state["total"]
        self._peak = state["peak"]
