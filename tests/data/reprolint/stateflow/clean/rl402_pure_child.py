"""RL402 clean twin: the child's only output channel is the inherited
pipe fd (``os.fdopen`` is the sanctioned channel home)."""

import os
import pickle


def run_shard(delta):
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        with os.fdopen(write_fd, "wb") as sink:
            sink.write(pickle.dumps(delta))
        os._exit(0)
    os.close(write_fd)
    with os.fdopen(read_fd, "rb") as source:
        payload = source.read()
    os.waitpid(pid, 0)
    return payload
