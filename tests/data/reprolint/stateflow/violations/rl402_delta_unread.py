"""RL402 violation: the merge never reads ``failures`` back out of the
delta — child-side failures are captured, shipped, and then silently
dropped by the parent."""

from dataclasses import dataclass


@dataclass
class WorkDelta:
    domains: tuple
    likes: int
    failures: tuple


def child_export(shard):
    return WorkDelta(domains=shard.owned, likes=shard.admitted,
                     failures=tuple(shard.trouble))


def merge(parent, delta):
    parent.adopt(delta.domains)
    parent.likes += delta.likes
