"""RL401 violations on a ``*Checkpoint`` record: ``spool`` is silently
defaulted at the construction site AND never consumed by the restore
path — two distinct ways the same state gets dropped."""

from dataclasses import dataclass, field


@dataclass
class WidgetCheckpoint:
    day: int
    cursor: int
    spool: tuple = field(default_factory=tuple)


def capture(widget):
    return WidgetCheckpoint(day=widget.day, cursor=widget.cursor)


def restore(widget, checkpoint):
    widget.day = checkpoint.day
    widget.cursor = checkpoint.cursor
