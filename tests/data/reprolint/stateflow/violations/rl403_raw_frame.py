"""RL403 violations: frame payload built with inline ``repr()`` and
decoded with a stray ``literal_eval`` — the round-trip is smeared
across call sites instead of living in the codec."""

from ast import literal_eval


def append_row(wal, row):
    payload = b"R" + repr(row).encode("utf-8")
    wal._write_frame(payload)


def replay_rows(wal):
    for payload in wal.frames():
        yield literal_eval(payload[1:].decode("utf-8"))
