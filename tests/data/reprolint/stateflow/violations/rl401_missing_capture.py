"""RL401 violation: ``_peak`` is mutated by record() but neither read
by export_state() nor written back by install_state() — a resume would
silently reset the high-water mark."""


class PeakTracker:
    def __init__(self):
        self.total = 0
        self._peak = 0

    def record(self, value):
        self.total += value
        if self.total > self._peak:
            self._peak = self.total

    def export_state(self):
        return {"total": self.total}

    def install_state(self, state):
        self.total = state["total"]
