"""RL402 purity violations: the forked child writes a named file and
serialises through ``json.dump`` — parent-visible state escaping
outside the delta channel."""

import json
import os


def run_shard(delta, path):
    pid = os.fork()
    if pid == 0:
        with open(path, "w") as sink:
            json.dump(delta, sink)
        os._exit(0)
    os.waitpid(pid, 0)
    return None
