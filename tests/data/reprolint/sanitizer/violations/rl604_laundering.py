"""Fixture: RL604 — hook internals reached directly and via a helper."""


def grab(factory):
    return factory._streams["organic"]


def helper(factory):
    return grab(factory)


def use(factory):
    rng = helper(factory)
    return rng.random()


def dynamic(stream):
    return getattr(stream, "_raw")
