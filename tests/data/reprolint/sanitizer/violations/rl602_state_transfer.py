"""Fixture: RL602 — winding a generator behind the trace's back."""


def clone_position(source_rng, target_rng):
    snapshot = source_rng.getstate()
    target_rng.setstate(snapshot)
    return target_rng
