"""Fixture: RL601 — a hand-rolled generator the sanitizer cannot see."""

import random


def pick(members, seed):
    rogue = random.Random(seed)
    return rogue.choice(members)
