"""Fixture: RL603 — a fork point that drops the sanitizer capture."""

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class WorkDayDelta:
    rows: tuple
    sanitizer: Optional[object]


def export_day(rows, helper):
    return WorkDayDelta(rows=tuple(rows), sanitizer=helper(rows))


def drop_day(rows):
    return WorkDayDelta(rows=tuple(rows), sanitizer=None)


def merge(delta):
    return delta.rows, delta.sanitizer
