"""Fixture: clean counterpart of RL603 — capture_delta feeds the field."""

from dataclasses import dataclass
from typing import Optional

from repro.sanitizer.delta import capture_delta
from repro.sanitizer.trace import SANITIZER


@dataclass(frozen=True)
class WorkDayDelta:
    rows: tuple
    sanitizer: Optional[object]


def export_day(rows, base, segments):
    return WorkDayDelta(rows=tuple(rows),
                        sanitizer=capture_delta(SANITIZER, base, segments))


def export_day_via_local(rows, base, segments):
    captured = capture_delta(SANITIZER, base, segments)
    return WorkDayDelta(rows=tuple(rows), sanitizer=captured)


def rewrap(delta):
    return WorkDayDelta(rows=delta.rows, sanitizer=delta.sanitizer)


def merge(delta):
    return delta.rows, delta.sanitizer
