"""Fixture: clean counterpart of RL601 — draws via the factory."""


def pick(world, members):
    rng = world.rng.stream("sampling")
    return rng.choice(members)
