"""Fixture: clean counterpart of RL602 — factory-level state transfer."""


def move_streams(source_factory, target_factory):
    target_factory.install_states(source_factory.export_states())
