"""Fixture: clean counterpart of RL604 — the public factory surface."""


def grab(factory):
    return factory.stream("organic")


def use(factory):
    rng = grab(factory)
    return rng.random()


def snapshot(factory):
    return factory.export_states()
