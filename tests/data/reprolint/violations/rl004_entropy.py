"""Fixture: RL004 — entropy / environment leaks."""

import os
import uuid


def make_token():
    salt = os.environ.get("TOKEN_SALT", "")
    return f"{uuid.uuid4()}:{hash(salt)}"
