"""Fixture: RL501 — interpolated / unbounded metric label values."""

from repro.telemetry.registry import TELEMETRY


def record(endpoint, token, labels):
    TELEMETRY.count("requests_total", endpoint=f"api:{endpoint}")
    TELEMETRY.observe("latency_seconds", 3, route="/v2/" + endpoint)
    TELEMETRY.gauge_set("tokens_live", 1, token=str(token))
    TELEMETRY.count("requests_total", **labels)
