"""Fixture: RL005 — broad exception handlers that swallow context."""


def deliver(network, batch):
    try:
        return network.send(batch)
    except Exception:
        return None
