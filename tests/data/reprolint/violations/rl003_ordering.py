"""Fixture: RL003 — nondeterministic ordering feeding iteration."""

import os


def emit(callback, directory):
    for entry in os.listdir(directory):
        callback(entry)
    for member in {"c", "a", "b"}:
        callback(member)
    return sorted([object(), object()], key=id)
