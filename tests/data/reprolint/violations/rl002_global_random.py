"""Fixture: RL002 — global / unseeded randomness."""

import random


def pick(members):
    unseeded = random.Random()
    return unseeded.choice(members) if members else random.randint(0, 9)
