"""Fixture: RL001 — wall-clock reads in sim code."""

import time
from datetime import datetime


def stamp_event(event):
    event.at = time.time()
    event.wall = datetime.now()
    time.sleep(0.1)
    return event
