"""Edge-case tests for figure modules and campaign configuration."""

import pytest

from repro.countermeasures.campaign import (
    CampaignConfig,
    NetworkDailySeries,
)
from repro.experiments.fig4 import MilkingCurve
from repro.experiments.fig5 import _phases_for


def test_campaign_config_validation():
    with pytest.raises(ValueError):
        CampaignConfig(days=0)
    with pytest.raises(ValueError):
        CampaignConfig(posts_per_day=0)


def test_daily_series_averages():
    series = NetworkDailySeries(domain="x",
                                posts_per_day=[2, 2, 0],
                                likes_per_day=[200, 100, 0])
    assert series.avg_likes_per_post == [100.0, 50.0, 0.0]
    assert series.window_average(1, 2) == 75.0
    assert series.window_average(3, 3) == 0.0
    assert series.window_average(5, 9) == 0.0  # out of range -> empty


def test_phase_windows_tile_the_campaign():
    config = CampaignConfig()
    phases = _phases_for(config)
    # Phases are contiguous and ordered: each starts right after the
    # previous ends, the first covers day 1, the last ends at days.
    assert phases[0][1] == 1
    for (_, _, prev_end), (_, start, _) in zip(phases, phases[1:]):
        assert start == prev_end + 1
    assert phases[-1][2] == config.days


def test_milking_curve_new_unique_rate_bounds():
    curve = MilkingCurve(domain="x",
                         cumulative_likes=[100, 200, 300, 400],
                         cumulative_unique=[100, 150, 175, 185])
    rate = curve.new_unique_rate(tail_fraction=0.5)
    assert 0.0 <= rate <= 1.0
    # Single-post curve degenerates to 1.0 (no tail to measure).
    single = MilkingCurve("y", [50], [50])
    assert single.new_unique_rate() == 1.0
