"""Tests for the paper-vs-measured scorecard."""

import pytest

from repro.experiments.comparison import Scorecard, score_report


@pytest.fixture(scope="module")
def scored():
    from repro import Study, StudyConfig
    from repro.countermeasures.campaign import CampaignConfig

    study = Study(StudyConfig(scale=0.005, seed=61, milking_days=6,
                              network_limit=None))
    study.build()
    study.milk()
    study.run_countermeasures(CampaignConfig(
        days=18, posts_per_day=6, rate_limit_day=4,
        invalidate_half_day=7, invalidate_all_day=9,
        daily_half_start_day=10, daily_all_start_day=11,
        ip_limit_day=13, clustering_start_day=15,
        clustering_interval_days=2, as_block_day=16,
        hublaa_outage=None, outgoing_per_hour=1.0))
    report = study.report()
    return report, score_report(report, study.config.scale)


def test_scorecard_structure(scored):
    report, card = scored
    assert len(card.checks) > 20
    experiments = {c.experiment for c in card.checks}
    assert {"Table 1", "Table 4", "Fig 5", "Fig 8"} <= experiments


def test_scorecard_mostly_passes(scored):
    report, card = scored
    # At this compressed scale the overwhelming majority of the paper's
    # results must still hold.
    assert card.failed <= max(2, int(0.1 * len(card.checks))), \
        [f"{c.experiment}/{c.name}: {c.expected} vs {c.measured}"
         for c in card.failures()]


def test_exact_checks_pass(scored):
    report, card = scored
    exact = [c for c in card.checks if c.experiment == "Table 1"]
    assert all(c.passed for c in exact)


def test_render_marks_failures():
    card = Scorecard()
    card.add("X", "good", 1, 1, True)
    card.add("X", "bad", 1, 2, False)
    text = card.render()
    assert "1/2 checks passed" in text
    assert "[FAIL] bad" in text
    assert "[ok ] good" in text
    assert card.failures()[0].name == "bad"
