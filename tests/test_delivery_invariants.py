"""Invariant tests for the delivery engine across many requests."""

import pytest


@pytest.fixture(scope="module")
def delivery_world():
    from repro.apps.catalog import AppCatalog
    from repro.collusion.ecosystem import build_ecosystem
    from repro.core.config import StudyConfig
    from repro.core.world import World
    from repro.honeypot.account import create_honeypot

    w = World(StudyConfig(scale=0.004, seed=71))
    AppCatalog(w.apps, w.rng.stream("catalog"), tail_apps=0).build()
    eco = build_ecosystem(w, network_limit=3)
    honeypots = {}
    for domain in eco.networks:
        honeypots[domain] = create_honeypot(w, eco.network(domain))
    return w, eco, honeypots


def _run_requests(world, network, honeypot, count):
    reports = []
    for i in range(count):
        post = world.platform.create_post(honeypot.account_id,
                                          f"inv{i}")
        reports.append((post,
                        network.submit_like_request(
                            honeypot.account_id, post.post_id)))
    return reports


def test_delivery_never_exceeds_quota(delivery_world):
    w, eco, honeypots = delivery_world
    for domain, network in eco.networks.items():
        for post, report in _run_requests(w, network,
                                          honeypots[domain], 5):
            assert report.delivered <= report.requested
            assert report.attempts >= report.delivered


def test_likers_are_distinct_members_not_requester(delivery_world):
    w, eco, honeypots = delivery_world
    network = eco.network("hublaa.me")
    honeypot = honeypots["hublaa.me"]
    for post, report in _run_requests(w, network, honeypot, 5):
        likers = w.platform.get_post(post.post_id).liker_ids()
        assert len(likers) == len(set(likers))
        assert honeypot.account_id not in likers
        for liker in likers:
            assert network.is_member(liker)


def test_report_delivered_matches_platform_state(delivery_world):
    w, eco, honeypots = delivery_world
    network = eco.network("mg-likers.com")
    honeypot = honeypots["mg-likers.com"]
    for post, report in _run_requests(w, network, honeypot, 5):
        assert (w.platform.get_post(post.post_id).like_count
                == report.delivered)


def test_network_counters_consistent(delivery_world):
    w, eco, honeypots = delivery_world
    network = eco.network("official-liker.net")
    honeypot = honeypots["official-liker.net"]
    before_likes = network.total_likes_delivered
    before_requests = network.total_requests_served
    reports = _run_requests(w, network, honeypot, 4)
    delivered = sum(r.delivered for _, r in reports)
    assert network.total_likes_delivered == before_likes + delivered
    assert network.total_requests_served == before_requests + 4


def test_all_likes_flow_through_graph_api(delivery_world):
    """Every like on a honeypot post exists in the Graph API log with
    matching attribution — nothing bypasses the front door."""
    w, eco, honeypots = delivery_world
    network = eco.network("hublaa.me")
    honeypot = honeypots["hublaa.me"]
    post, report = _run_requests(w, network, honeypot, 1)[0]
    log_records = [r for r in w.api.log.like_requests()
                   if r.target_id == post.post_id]
    assert len(log_records) == report.delivered
    platform_likers = set(w.platform.get_post(post.post_id).liker_ids())
    assert {r.user_id for r in log_records} == platform_likers
    assert all(r.app_id == network.profile.app_id for r in log_records)
