"""Tests for token issuance, expiry and invalidation."""

import pytest

from repro.oauth.errors import InvalidTokenError
from repro.oauth.scopes import Permission, PermissionScope
from repro.oauth.tokens import (
    LONG_TERM_LIFETIME,
    SHORT_TERM_LIFETIME,
    TokenLifetime,
    TokenStore,
)
from repro.sim.clock import HOUR, SimClock


def make_store():
    clock = SimClock()
    return clock, TokenStore(clock)


def test_issue_and_validate():
    clock, store = make_store()
    token = store.issue("u1", "a1", PermissionScope.full(),
                        TokenLifetime.LONG_TERM)
    assert store.validate(token.token) is token
    assert token.grants(Permission.PUBLISH_ACTIONS)


def test_token_string_is_opaque_and_unique():
    clock, store = make_store()
    t1 = store.issue("u1", "a1", PermissionScope.basic(),
                     TokenLifetime.SHORT_TERM)
    t2 = store.issue("u2", "a1", PermissionScope.basic(),
                     TokenLifetime.SHORT_TERM)
    assert t1.token != t2.token
    assert "u1" not in t1.token  # no user info leaks into the string


def test_short_term_expiry():
    clock, store = make_store()
    token = store.issue("u1", "a1", PermissionScope.basic(),
                        TokenLifetime.SHORT_TERM)
    clock.advance(SHORT_TERM_LIFETIME + 1)
    with pytest.raises(InvalidTokenError):
        store.validate(token.token)


def test_long_term_lifetime_is_two_months():
    assert LONG_TERM_LIFETIME == 60 * 24 * HOUR


def test_long_term_outlives_short_term():
    clock, store = make_store()
    token = store.issue("u1", "a1", PermissionScope.basic(),
                        TokenLifetime.LONG_TERM)
    clock.advance(SHORT_TERM_LIFETIME + 1)
    assert store.validate(token.token) is token


def test_unknown_token_rejected():
    clock, store = make_store()
    with pytest.raises(InvalidTokenError):
        store.validate("EAABnope")


def test_invalidate():
    clock, store = make_store()
    token = store.issue("u1", "a1", PermissionScope.basic(),
                        TokenLifetime.LONG_TERM)
    assert store.invalidate(token.token, "test") is True
    with pytest.raises(InvalidTokenError):
        store.validate(token.token)
    assert token.invalidation_reason == "test"
    # Second invalidation reports False (already dead).
    assert store.invalidate(token.token) is False


def test_invalidate_many_counts_live_only():
    clock, store = make_store()
    t1 = store.issue("u1", "a1", PermissionScope.basic(),
                     TokenLifetime.LONG_TERM)
    t2 = store.issue("u2", "a1", PermissionScope.basic(),
                     TokenLifetime.LONG_TERM)
    store.invalidate(t2.token)
    assert store.invalidate_many([t1.token, t2.token, "missing"]) == 1


def test_reissue_supersedes_previous():
    clock, store = make_store()
    old = store.issue("u1", "a1", PermissionScope.basic(),
                      TokenLifetime.LONG_TERM)
    new = store.issue("u1", "a1", PermissionScope.basic(),
                      TokenLifetime.LONG_TERM)
    assert old.invalidated
    assert old.invalidation_reason == "superseded"
    assert store.live_token_for("u1", "a1").token == new.token


def test_live_token_for_none_when_dead():
    clock, store = make_store()
    token = store.issue("u1", "a1", PermissionScope.basic(),
                        TokenLifetime.SHORT_TERM)
    store.invalidate(token.token)
    assert store.live_token_for("u1", "a1") is None


def test_live_tokens_for_app():
    clock, store = make_store()
    store.issue("u1", "a1", PermissionScope.basic(),
                TokenLifetime.LONG_TERM)
    store.issue("u2", "a1", PermissionScope.basic(),
                TokenLifetime.LONG_TERM)
    store.issue("u3", "a2", PermissionScope.basic(),
                TokenLifetime.LONG_TERM)
    assert len(store.live_tokens_for_app("a1")) == 2


def test_peek_ignores_validity():
    clock, store = make_store()
    token = store.issue("u1", "a1", PermissionScope.basic(),
                        TokenLifetime.SHORT_TERM)
    store.invalidate(token.token)
    assert store.peek(token.token) is token
    assert store.peek("missing") is None
