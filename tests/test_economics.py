"""Tests for the collusion-network economics model (§8)."""

import pytest

from repro.collusion.economics import (
    demonetization_impact,
    estimate_economics,
)


def test_top_network_is_very_profitable(mini_study):
    world, catalog, ecosystem = mini_study
    estimate = estimate_economics(world, ecosystem.network("hublaa.me"))
    assert estimate.is_profitable
    assert estimate.ad_revenue_monthly > estimate.hosting_cost_monthly
    assert estimate.revenue_monthly == (estimate.ad_revenue_monthly
                                        + estimate.premium_revenue_monthly)


def test_ad_revenue_scales_with_traffic(mini_study):
    world, catalog, ecosystem = mini_study
    big = estimate_economics(world, ecosystem.network("hublaa.me"))
    small = estimate_economics(world,
                               ecosystem.network("monkeyliker.com"))
    assert big.daily_visits > small.daily_visits
    # hublaa's visits dominate even though monkeyliker forces no
    # additional redirect hops.
    assert big.ad_revenue_monthly > small.ad_revenue_monthly


def test_bulletproof_hosting_costs_premium(mini_study):
    world, catalog, ecosystem = mini_study
    hublaa = estimate_economics(world, ecosystem.network("hublaa.me"))
    official = estimate_economics(
        world, ecosystem.network("official-liker.net"))
    # 600 bulletproof IPs vs 8 plain ones.
    assert hublaa.hosting_cost_monthly > 50 * official.hosting_cost_monthly


def test_explicit_subscriptions_override_uptake(mini_study):
    world, catalog, ecosystem = mini_study
    network = ecosystem.network("mg-likers.com")
    member = network.join()
    network.monetization.subscribe(member, "ultimate")
    estimate = estimate_economics(world, network)
    assert estimate.premium_revenue_monthly == pytest.approx(29.99)


def test_demonetization_cuts_ad_revenue(mini_study):
    world, catalog, ecosystem = mini_study
    impact = demonetization_impact(world,
                                   ecosystem.network("hublaa.me"))
    assert impact["ad_revenue_lost"] > 0
    assert impact["profit_after"] < impact["profit_before"]


def test_premium_uptake_validation(mini_study):
    world, catalog, ecosystem = mini_study
    with pytest.raises(ValueError):
        estimate_economics(world, ecosystem.network("hublaa.me"),
                           premium_uptake=1.5)
