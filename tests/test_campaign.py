"""Integration tests for the countermeasure campaign (Fig. 5 dynamics).

Uses a compressed schedule at small scale; assertions target the paper's
qualitative shape, not absolute numbers.
"""

import pytest

from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.countermeasures.campaign import (
    CampaignConfig,
    CountermeasureCampaign,
)


@pytest.fixture(scope="module")
def campaign_run():
    w = World(StudyConfig(scale=0.01, seed=21))
    AppCatalog(w.apps, w.rng.stream("catalog"), tail_apps=0).build()
    eco = build_ecosystem(w, network_limit=2)
    config = CampaignConfig(
        days=40, posts_per_day=8,
        rate_limit_day=6,
        invalidate_half_day=12,
        invalidate_all_day=16,
        daily_half_start_day=17,
        daily_all_start_day=21,
        ip_limit_day=26,
        clustering_start_day=30,
        clustering_interval_days=3,
        as_block_day=35,
        hublaa_outage=None,
        outgoing_per_hour=2.0,
    )
    runner = CountermeasureCampaign(w, eco, config)
    results = runner.run()
    return w, eco, config, results


def _series(results, domain):
    return results.series[domain].avg_likes_per_post


def test_baseline_delivers_full_quota(campaign_run):
    w, eco, config, results = campaign_run
    for domain in ("hublaa.me", "official-liker.net"):
        quota = eco.network(domain).profile.likes_per_request
        baseline = _series(results, domain)[:config.rate_limit_day - 1]
        assert min(baseline) == pytest.approx(quota, rel=0.05)


def test_rate_limit_dips_hotset_network_only(campaign_run):
    w, eco, config, results = campaign_run
    window = slice(config.rate_limit_day, config.invalidate_half_day - 1)
    official = _series(results, "official-liker.net")[window]
    hublaa = _series(results, "hublaa.me")[window]
    quota_official = eco.network(
        "official-liker.net").profile.likes_per_request
    quota_hublaa = eco.network("hublaa.me").profile.likes_per_request
    # official-liker.net (hot-set reuse) suffers; hublaa.me does not.
    assert min(official) < 0.75 * quota_official
    assert min(hublaa) > 0.9 * quota_hublaa


def test_invalidation_causes_sharp_drop(campaign_run):
    w, eco, config, results = campaign_run
    for domain in ("hublaa.me", "official-liker.net"):
        series = _series(results, domain)
        quota = eco.network(domain).profile.likes_per_request
        before = series[config.invalidate_all_day - 2]
        after = series[config.invalidate_all_day]  # day after full kill
        assert after < before
        assert after < 0.8 * quota


def test_daily_invalidation_suppresses_but_does_not_stop(campaign_run):
    w, eco, config, results = campaign_run
    for domain in ("hublaa.me", "official-liker.net"):
        series = _series(results, domain)
        quota = eco.network(domain).profile.likes_per_request
        window = series[config.daily_all_start_day:config.ip_limit_day - 1]
        assert max(window) > 0  # never a full stop (§6.2 conclusion)
        assert sum(window) / len(window) < 0.9 * quota


def test_ip_limits_kill_small_pool_network(campaign_run):
    w, eco, config, results = campaign_run
    official = _series(results, "official-liker.net")
    tail = official[config.ip_limit_day:config.as_block_day - 1]
    quota = eco.network("official-liker.net").profile.likes_per_request
    assert sum(tail) / len(tail) < 0.15 * quota


def test_ip_limits_do_not_kill_large_pool_network(campaign_run):
    w, eco, config, results = campaign_run
    hublaa = _series(results, "hublaa.me")
    window = hublaa[config.ip_limit_day:config.as_block_day - 1]
    assert max(window) > 0  # hublaa survives IP limits


def test_as_blocking_finishes_hublaa(campaign_run):
    w, eco, config, results = campaign_run
    hublaa = _series(results, "hublaa.me")
    tail = hublaa[config.as_block_day:]
    assert max(tail) == 0


def test_clustering_has_no_major_impact(campaign_run):
    w, eco, config, results = campaign_run
    assert results.clustering_outcomes, "clustering never ran"
    total_killed = sum(outcome.tokens_invalidated
                       for _, outcome in results.clustering_outcomes)
    # §6.3: temporal clustering barely touches collusion accounts.
    assert total_killed < 0.01 * eco.network("hublaa.me").member_count()


def test_interventions_logged_in_order(campaign_run):
    w, eco, config, results = campaign_run
    days = [day for day, _ in results.interventions]
    assert days == sorted(days)
    messages = [m for _, m in results.interventions]
    assert any("token rate limit" in m for m in messages)
    assert any("IP like limits" in m for m in messages)
    assert any("blocked ASes" in m for m in messages)


def test_as_block_targets_bulletproof_asns(campaign_run):
    w, eco, config, results = campaign_run
    blocked = set()
    for asns in w.policy.blocked_asns_by_app.values():
        blocked |= asns
    assert blocked == {64500, 64501}


def test_tokens_invalidated_counter(campaign_run):
    w, eco, config, results = campaign_run
    assert results.tokens_invalidated > 0
