"""Tests for the compressed campaign schedule."""

import pytest

from repro.countermeasures.campaign import CampaignConfig


def test_compressed_75_matches_paper_schedule():
    compressed = CampaignConfig.compressed(75)
    reference = CampaignConfig()
    for name in ("rate_limit_day", "invalidate_half_day",
                 "invalidate_all_day", "daily_half_start_day",
                 "daily_all_start_day", "ip_limit_day",
                 "clustering_start_day", "as_block_day"):
        assert getattr(compressed, name) == getattr(reference, name)


@pytest.mark.parametrize("days", [10, 15, 20, 40, 60, 120])
def test_compressed_stays_strictly_increasing(days):
    config = CampaignConfig.compressed(days)
    stages = [config.rate_limit_day, config.invalidate_half_day,
              config.invalidate_all_day, config.daily_half_start_day,
              config.daily_all_start_day, config.ip_limit_day,
              config.clustering_start_day, config.as_block_day]
    assert stages == sorted(stages)
    assert len(set(stages)) == len(stages)
    assert stages[0] >= 2
    assert stages[-1] < days
    start, end = config.hublaa_outage
    assert 1 < start < end


def test_compressed_rejects_tiny_windows():
    # 8 days fails the hard floor; 9 cannot fit all eight stages below
    # the final day.
    with pytest.raises(ValueError):
        CampaignConfig.compressed(8)
    with pytest.raises(ValueError):
        CampaignConfig.compressed(9)


def test_compressed_accepts_overrides():
    config = CampaignConfig.compressed(20, posts_per_day=3,
                                       hublaa_outage=None)
    assert config.posts_per_day == 3
    assert config.hublaa_outage is None
    assert config.days == 20
