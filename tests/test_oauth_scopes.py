"""Tests for permissions and scopes."""

import pytest

from repro.oauth.scopes import (
    BASIC_PERMISSIONS,
    SENSITIVE_PERMISSIONS,
    Permission,
    PermissionScope,
)


def test_publish_actions_is_sensitive():
    assert Permission.PUBLISH_ACTIONS.is_sensitive
    assert not Permission.PUBLIC_PROFILE.is_sensitive


def test_basic_and_sensitive_partition():
    assert BASIC_PERMISSIONS | SENSITIVE_PERMISSIONS == frozenset(Permission)
    assert not BASIC_PERMISSIONS & SENSITIVE_PERMISSIONS


def test_parse_scope_string():
    scope = PermissionScope.parse("public_profile,email")
    assert scope.contains(Permission.PUBLIC_PROFILE)
    assert scope.contains(Permission.EMAIL)
    assert not scope.contains(Permission.PUBLISH_ACTIONS)


def test_parse_space_separated():
    scope = PermissionScope.parse("public_profile publish_actions")
    assert scope.contains(Permission.PUBLISH_ACTIONS)


def test_parse_unknown_permission():
    with pytest.raises(ValueError):
        PermissionScope.parse("made_up_permission")


def test_full_scope_contains_everything():
    scope = PermissionScope.full()
    assert len(scope) == len(Permission)


def test_sensitive_subset():
    assert PermissionScope.full().sensitive() == SENSITIVE_PERMISSIONS
    assert not PermissionScope.basic().sensitive()


def test_issubset():
    assert PermissionScope.basic().issubset(PermissionScope.full())
    assert not PermissionScope.full().issubset(PermissionScope.basic())


def test_scope_string_round_trip():
    scope = PermissionScope.full()
    again = PermissionScope.parse(scope.to_scope_string())
    assert scope == again


def test_equality_and_hash():
    a = PermissionScope({Permission.EMAIL})
    b = PermissionScope({Permission.EMAIL})
    assert a == b
    assert hash(a) == hash(b)
    assert a != PermissionScope.basic()


def test_iteration_is_sorted():
    values = [p.value for p in PermissionScope.full()]
    assert values == sorted(values)
