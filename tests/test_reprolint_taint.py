"""Taint-engine tests: the RL1xx fixture corpus + propagation
mechanics (sources, sinks, sanitizers, summaries, RL000)."""

import textwrap
from pathlib import Path

from repro.lint import lint_source

DATA = (Path(__file__).resolve().parent / "data" / "reprolint" /
        "taint")


def fixture_rules(name, kind="violations",
                  path="repro/oauth/helpers.py"):
    source = (DATA / kind / name).read_text(encoding="utf-8")
    return [f.rule for f in lint_source(source, path=path)]


def rules_of(source, path="repro/oauth/helpers.py"):
    return [f.rule
            for f in lint_source(textwrap.dedent(source), path=path)]


# ----------------------------------------------------------------------
# Fixture corpus: each violating module produces exactly its rule,
# each clean twin produces nothing.
# ----------------------------------------------------------------------
def test_rl101_fixture_pair():
    assert fixture_rules("rl101_log_leak.py") == ["RL101"]
    assert fixture_rules("rl101_log_redacted.py", kind="clean") == []


def test_rl102_fixture_pair():
    assert fixture_rules("rl102_exception_leak.py") == ["RL102"]
    assert fixture_rules("rl102_exception_redacted.py",
                         kind="clean") == []


def test_rl103_fixture_pair():
    assert fixture_rules("rl103_persist_leak.py") == ["RL103"]
    assert fixture_rules("rl103_persist_redacted.py",
                         kind="clean") == []


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
def test_token_attribute_is_a_source():
    assert rules_of("""
        def reject(token):
            raise ValueError("bad token " + token.token)
    """) == ["RL102"]


def test_token_store_lookup_is_a_source():
    assert rules_of("""
        def audit(tokens, token_string, log):
            live = tokens.validate(token_string)
            log.info("validated %s", live)
    """) == ["RL101"]


def test_attribute_on_tainted_object_does_not_propagate():
    # token.invalidation_reason is metadata, not the token string;
    # flagging it would make the real tree unlintable.
    assert rules_of("""
        def reject(tokens, token_string):
            token = tokens.validate(token_string)
            raise ValueError(
                f"invalidated ({token.invalidation_reason})")
    """) == []


# ----------------------------------------------------------------------
# Propagation
# ----------------------------------------------------------------------
def test_taint_survives_fstrings_slices_and_concat():
    assert rules_of("""
        def leak(access_token, log):
            suffix = access_token[-6:]
            line = f"token ending {suffix}"
            log.warning(line + "!")
    """) == ["RL101"]


def test_taint_survives_str_format_and_join():
    assert rules_of("""
        def leak(access_token, log):
            line = "token {}".format(access_token)
            both = ", ".join([line, "ctx"])
            log.error(both)
    """) == ["RL101"]


def test_reassignment_clears_taint():
    assert rules_of("""
        def ok(access_token, log):
            ref = access_token
            ref = "<redacted>"
            log.info(ref)
    """) == []


def test_unknown_calls_do_not_propagate():
    # len(token) is an int; flagging it would drown real findings.
    assert rules_of("""
        def ok(access_token, log):
            log.info("token length %d", len(access_token))
    """) == []


def test_loop_carried_taint_is_caught():
    # The second pass sees taint assigned later in the loop body.
    assert rules_of("""
        def leak(token_db, log):
            last = ""
            for user in sorted(token_db):
                log.info("previous %s", last)
                last = token_db[user]
    """) == ["RL101"]


# ----------------------------------------------------------------------
# Sanitizer
# ----------------------------------------------------------------------
def test_redactor_clears_taint_by_any_route():
    assert rules_of("""
        from repro.oauth.redact import redact_token

        def ok(access_token, log):
            log.info("token %s", redact_token(access_token))
    """) == []
    assert rules_of("""
        from repro.oauth import redact

        def ok(access_token, log):
            log.info("token %s", redact.redact_token(access_token))
    """) == []


# ----------------------------------------------------------------------
# One-level summaries
# ----------------------------------------------------------------------
def test_param_to_sink_summary_flags_the_call_site():
    findings = lint_source(textwrap.dedent("""
        import logging

        log = logging.getLogger("x")

        def emit(ref):
            log.info("token %s", ref)

        def caller(access_token):
            emit(access_token)
    """), path="repro/oauth/helpers.py")
    assert [f.rule for f in findings] == ["RL101"]
    assert "helper" in findings[0].message
    assert findings[0].line == 10          # the call site, not emit()


def test_taint_through_return_summary():
    assert rules_of("""
        def fmt(token_string):
            return "t=" + token_string

        def caller(access_token, log):
            line = fmt(access_token)
            log.warning(line)
    """) == ["RL101"]


def test_clean_helper_produces_no_flow():
    assert rules_of("""
        def fmt(token_string):
            return len(token_string)

        def caller(access_token, log):
            log.warning("len %d", fmt(access_token))
    """) == []


# ----------------------------------------------------------------------
# RL000 parse errors are findings, not crashes
# ----------------------------------------------------------------------
def test_syntax_error_is_a_finding():
    findings = lint_source("def broken(:\n    pass\n")
    assert [f.rule for f in findings] == ["RL000"]
    assert findings[0].severity.name == "ERROR"
    assert findings[0].line == 1
