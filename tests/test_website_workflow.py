"""Tests for the Fig. 3 collusion-site workflow state machine."""

import pytest

from repro.collusion.website import CollusionWebsiteSession, WorkflowError
from repro.sim.clock import HOUR


@pytest.fixture()
def session(mini_study):
    world, catalog, ecosystem = mini_study
    network = ecosystem.network("hublaa.me")
    user = world.platform.register_account("Workflow User")
    return world, network, CollusionWebsiteSession(network,
                                                   user.account_id)


def test_steps_enforce_order(session):
    world, network, s = session
    with pytest.raises(WorkflowError):
        s.install_app()
    s.open_site()
    with pytest.raises(WorkflowError):
        s.click_get_access_token()
    s.install_app()
    with pytest.raises(WorkflowError):
        s.copy_token_from_address_bar()
    url = s.click_get_access_token()
    assert url.startswith("view-source:")
    assert "access_token=" in url


def test_token_must_belong_to_user(session):
    world, network, s = session
    s.open_site()
    # Steal some other member's token string and try to submit it.
    other_token = next(iter(network.token_db.values()))
    with pytest.raises(WorkflowError):
        s.submit_token(other_token)


def test_full_workflow_delivers_likes(session):
    world, network, s = session
    post = world.platform.create_post(s.user_id, "my post")
    report = s.run_full_workflow(post.post_id)
    assert report.delivered == network.profile.likes_per_request
    assert network.is_member(s.user_id)


def test_captcha_gate(session):
    world, network, s = session
    assert network.profile.gate.captcha_required
    s.open_site()
    s.install_app()
    s.click_get_access_token()
    s.submit_token(s.copy_token_from_address_bar())
    post = world.platform.create_post(s.user_id, "p")
    s.request_captcha()
    with pytest.raises(WorkflowError):
        s.request_likes(post.post_id)  # CAPTCHA unsolved
    with pytest.raises(WorkflowError):
        s.solve_captcha(solution_ok=False)
    # request_captcha again, solve, proceed.
    s.solve_captcha()
    assert s.request_likes(post.post_id).delivered > 0


def test_inter_request_delay(session):
    world, network, s = session
    post = world.platform.create_post(s.user_id, "p1")
    s.run_full_workflow(post.post_id)
    post2 = world.platform.create_post(s.user_id, "p2")
    if s.request_captcha() is not None:
        s.solve_captcha()
    with pytest.raises(WorkflowError):
        s.request_likes(post2.post_id)  # too soon
    world.clock.advance(HOUR)
    if s.request_captcha() is not None:
        s.solve_captcha()
    assert s.request_likes(post2.post_id).delivered > 0


def test_ad_redirects_match_gate(session):
    world, network, s = session
    hops = s.ad_redirects()
    assert len(hops) == network.profile.gate.redirect_hops


def test_open_site_clicks_short_url(session):
    world, network, s = session
    slug = network.short_url_slug
    before = world.shortener.get(slug).click_count
    s.open_site()
    assert world.shortener.get(slug).click_count == before + 1
