"""Tests for the application registry and the review process."""

import pytest

from repro.oauth.apps import ApplicationRegistry, AppSecuritySettings
from repro.oauth.errors import UnknownApplicationError
from repro.oauth.review import AppReviewProcess, ReviewDecision
from repro.oauth.scopes import Permission, PermissionScope


def test_register_and_get():
    registry = ApplicationRegistry()
    app = registry.register("App", "https://a.example/cb")
    assert registry.get(app.app_id) is app
    assert len(registry) == 1


def test_unknown_app():
    registry = ApplicationRegistry()
    with pytest.raises(UnknownApplicationError):
        registry.get("app:404")


def test_pinned_app_id():
    registry = ApplicationRegistry()
    app = registry.register("App", "https://a.example/cb",
                            app_id="41158896424")
    assert app.app_id == "41158896424"
    with pytest.raises(ValueError):
        registry.register("Dup", "https://b.example/cb",
                          app_id="41158896424")


def test_secret_check():
    registry = ApplicationRegistry()
    app = registry.register("App", "https://a.example/cb")
    assert app.check_secret(app.secret)
    assert not app.check_secret("guess")


def test_susceptibility_requires_all_three_conditions():
    registry = ApplicationRegistry()
    full = PermissionScope.full()
    susceptible = registry.register(
        "S", "https://s.example/cb",
        security=AppSecuritySettings(True, False),
        approved_permissions=full)
    assert susceptible.is_susceptible
    no_client_flow = registry.register(
        "NC", "https://nc.example/cb",
        security=AppSecuritySettings(False, False),
        approved_permissions=full)
    assert not no_client_flow.is_susceptible
    needs_secret = registry.register(
        "NS", "https://ns.example/cb",
        security=AppSecuritySettings(True, True),
        approved_permissions=full)
    assert not needs_secret.is_susceptible
    read_only = registry.register(
        "RO", "https://ro.example/cb",
        security=AppSecuritySettings(True, False))
    assert not read_only.is_susceptible


def test_find_by_name_and_top_by_mau():
    registry = ApplicationRegistry()
    registry.register("Big", "https://b.example/cb",
                      monthly_active_users=100)
    registry.register("Small", "https://s.example/cb",
                      monthly_active_users=10)
    registry.register("Big", "https://b2.example/cb",
                      monthly_active_users=50)
    assert len(registry.find_by_name("Big")) == 2
    top = registry.top_by_mau(2)
    assert [a.monthly_active_users for a in top] == [100, 50]


# ----------------------------------------------------------------------
# Review process (§3: collusion networks cannot register their own apps)
# ----------------------------------------------------------------------

def _app(name):
    registry = ApplicationRegistry()
    return registry.register(name, "https://x.example/cb")


def test_review_approves_legitimate_app():
    review = AppReviewProcess()
    app = _app("Music Player")
    outcome = review.submit(app, PermissionScope.full(),
                            declared_purpose="share played tracks")
    assert outcome.decision is ReviewDecision.APPROVED
    assert app.approved_permissions.contains(Permission.PUBLISH_ACTIONS)


def test_review_rejects_autoliker():
    review = AppReviewProcess()
    app = _app("Super AutoLiker Pro")
    outcome = review.submit(app, PermissionScope.full())
    assert outcome.decision is ReviewDecision.REJECTED
    assert not app.approved_permissions.contains(Permission.PUBLISH_ACTIONS)


def test_review_rejects_on_declared_purpose():
    review = AppReviewProcess()
    app = _app("Innocent Name")
    outcome = review.submit(app, PermissionScope.full(),
                            declared_purpose="get free likes fast")
    assert outcome.decision is ReviewDecision.REJECTED


def test_basic_permissions_skip_review():
    review = AppReviewProcess()
    app = _app("Liker App")  # suspicious name, but asks nothing sensitive
    outcome = review.submit(app, PermissionScope.basic())
    assert outcome.decision is ReviewDecision.APPROVED


def test_review_history_recorded():
    review = AppReviewProcess()
    review.submit(_app("A"), PermissionScope.basic())
    review.submit(_app("B Liker"), PermissionScope.full())
    assert len(review.history) == 2
