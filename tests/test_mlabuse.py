"""Tests for the organic workload and the ML abuse detector (§8)."""

import pytest

from repro.collusion.profiles import HTC_SENSE
from repro.detection.mlabuse import (
    FEATURE_NAMES,
    LogisticAbuseClassifier,
    detect_abusive_tokens,
    extract_token_features,
    train_test_split,
)
from repro.workloads.organic import OrganicWorkload


@pytest.fixture(scope="module")
def mixed_traffic():
    """A world with both collusion and organic like traffic."""
    from repro.apps.catalog import AppCatalog
    from repro.collusion.ecosystem import build_ecosystem
    from repro.core.config import StudyConfig
    from repro.core.world import World
    from repro.honeypot.account import create_honeypot
    from repro.sim.clock import DAY

    w = World(StudyConfig(scale=0.004, seed=23))
    AppCatalog(w.apps, w.rng.stream("catalog"), tail_apps=0).build()
    eco = build_ecosystem(w, network_limit=2)
    network = eco.network("official-liker.net")
    honeypot = create_honeypot(w, network)
    organic = OrganicWorkload(w, [HTC_SENSE],
                              likes_per_user_per_day=3.0)
    organic.create_users(60)
    for day in range(5):
        for i in range(4):
            post = w.platform.create_post(honeypot.account_id,
                                          f"d{day}p{i}")
            network.submit_like_request(honeypot.account_id,
                                        post.post_id)
        organic.run_day()
        w.clock.advance(DAY)
    colluding_users = set(network.token_db) | network.dead_members
    organic_users = {u.account_id for u in organic.users}
    return w, colluding_users, organic_users


def test_organic_users_like_from_home_ips(mixed_traffic):
    w, colluding, organic_users = mixed_traffic
    records = [r for r in w.api.log.like_requests()
               if r.user_id in organic_users]
    assert records
    assert all(r.source_ip.startswith("10.200.") for r in records)
    assert all(r.asn is None for r in records)


def test_feature_extraction_shapes(mixed_traffic):
    w, colluding, organic_users = mixed_traffic
    features = extract_token_features(w.api.log)
    assert features
    sample = features[0]
    assert len(sample.vector()) == len(FEATURE_NAMES)
    for f in features:
        assert f.likes_per_day > 0
        assert 0 <= f.datacenter_share <= 1
        assert 0 < f.target_owner_diversity <= 1


def test_cotenancy_separates_populations(mixed_traffic):
    w, colluding, organic_users = mixed_traffic
    features = extract_token_features(w.api.log)
    collusion_cotenancy = [f.max_ip_cotenancy for f in features
                           if f.user_id in colluding]
    organic_cotenancy = [f.max_ip_cotenancy for f in features
                         if f.user_id in organic_users]
    assert collusion_cotenancy and organic_cotenancy
    assert min(collusion_cotenancy) > max(organic_cotenancy)


def test_classifier_learns_separation(mixed_traffic):
    w, colluding, organic_users = mixed_traffic
    features = [f for f in extract_token_features(w.api.log)
                if f.user_id in colluding or f.user_id in organic_users]
    labels = [1 if f.user_id in colluding else 0 for f in features]
    train_x, train_y, test_x, test_y = train_test_split(
        features, labels, test_fraction=0.3, seed=1)
    classifier = LogisticAbuseClassifier().fit(train_x, train_y)
    correct = sum(
        1 for sample, label in zip(test_x, test_y)
        if classifier.predict(sample) == bool(label))
    assert correct / len(test_x) > 0.95


def test_detect_abusive_tokens_flags_colluders_not_organics(mixed_traffic):
    w, colluding, organic_users = mixed_traffic
    features = [f for f in extract_token_features(w.api.log)
                if f.user_id in colluding or f.user_id in organic_users]
    labels = [1 if f.user_id in colluding else 0 for f in features]
    classifier = LogisticAbuseClassifier().fit(features, labels)
    result = detect_abusive_tokens(classifier, features)
    organic_flagged = result.flagged_users & organic_users
    colluding_flagged = result.flagged_users & colluding
    assert len(organic_flagged) <= 0.02 * len(organic_users)
    assert len(colluding_flagged) > 0.9 * len(
        {f.user_id for f in features if f.user_id in colluding})


def test_classifier_guards():
    classifier = LogisticAbuseClassifier()
    with pytest.raises(ValueError):
        classifier.fit([], [])
    with pytest.raises(RuntimeError):
        from repro.detection.mlabuse import TokenFeatures

        classifier.predict_proba(TokenFeatures(
            "t", "u", 1.0, 1, 1, 0.0, 1.0))


def test_train_test_split_validation():
    with pytest.raises(ValueError):
        train_test_split([], [], test_fraction=1.5)


def test_organic_workload_validation(world):
    with pytest.raises(ValueError):
        OrganicWorkload(world, [])
