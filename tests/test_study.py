"""End-to-end tests for the Study facade."""

import pytest

from repro import Study, StudyConfig
from repro.countermeasures.campaign import CampaignConfig


@pytest.fixture(scope="module")
def completed_study():
    study = Study(StudyConfig(scale=0.004, seed=9, milking_days=6,
                              network_limit=3))
    study.build()
    study.milk()
    study.run_countermeasures(CampaignConfig(
        days=12, posts_per_day=5, rate_limit_day=3,
        invalidate_half_day=5, invalidate_all_day=6,
        daily_half_start_day=7, daily_all_start_day=8,
        ip_limit_day=9, clustering_start_day=10,
        clustering_interval_days=2, as_block_day=11,
        hublaa_outage=None, outgoing_per_hour=1.0))
    return study


def test_requires_build_first():
    study = Study(StudyConfig(scale=0.004))
    with pytest.raises(RuntimeError):
        study.artifacts
    with pytest.raises(RuntimeError):
        study.milk()


def test_build_is_single_shot(completed_study):
    with pytest.raises(RuntimeError):
        completed_study.build()


def test_report_covers_everything(completed_study):
    report = completed_study.report()
    for name in ("table1", "table2", "table3", "table4", "table5",
                 "table6", "fig4", "fig5", "fig6", "fig7", "fig8"):
        assert getattr(report, name) is not None, name


def test_report_render_is_complete_text(completed_study):
    text = completed_study.report().render()
    for marker in ("Table 1", "Table 4", "Table 6", "Figure 5",
                   "Figure 8"):
        assert marker in text


def test_report_cached(completed_study):
    assert completed_study.report() is completed_study.report()


def test_campaign_config_networks_filtered(completed_study):
    # Only built networks appear in the campaign even though the default
    # config may name others.
    campaign = completed_study.artifacts.campaign
    assert set(campaign.series) <= set(
        completed_study.ecosystem.networks)


def test_run_all_from_scratch():
    # campaign_days is compressed onto the paper's 75-day intervention
    # ladder, which needs at least 10 days.
    study = Study(StudyConfig(scale=0.002, seed=11, milking_days=3,
                              campaign_days=12, network_limit=2))
    # run_all drives every stage with defaults; just verify it completes
    # and produces a full report at an extremely small scale.
    report = study.run_all()
    assert report.table4 is not None
    assert report.fig5 is not None
