"""Tests for id allocation."""

import pytest

from repro.sim.ids import IdAllocator


def test_sequential_allocation():
    ids = IdAllocator()
    assert ids.next("acct") == "acct:1"
    assert ids.next("acct") == "acct:2"
    assert ids.next("post") == "post:1"


def test_count_tracks_per_kind():
    ids = IdAllocator()
    ids.next("a")
    ids.next("a")
    assert ids.count("a") == 2
    assert ids.count("b") == 0


def test_invalid_kind_rejected():
    ids = IdAllocator()
    with pytest.raises(ValueError):
        ids.next("")
    with pytest.raises(ValueError):
        ids.next("a:b")


def test_kind_of_parses():
    assert IdAllocator.kind_of("acct:12") == "acct"


def test_kind_of_rejects_malformed():
    with pytest.raises(ValueError):
        IdAllocator.kind_of("justtext")
    with pytest.raises(ValueError):
        IdAllocator.kind_of("acct:")
