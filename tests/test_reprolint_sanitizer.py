"""RL6xx sanitizer-coverage rules: fixture corpus, rule mechanics, and
the load-bearing gates over the real hook surface (``rng.py`` /
``sharding.py`` / the detection-side pragma sites)."""

import re
import textwrap
from pathlib import Path

import repro
from repro.lint import LintEngine, lint_source

DATA = (Path(__file__).resolve().parent / "data" / "reprolint" /
        "sanitizer")
PACKAGE = Path(repro.__file__).resolve().parent

_PRAGMA = re.compile(r"#\s*reprolint:\s*disable[^\n]*")


def fixture_findings(name, kind="violations",
                     path="repro/countermeasures/helpers.py"):
    source = (DATA / kind / name).read_text(encoding="utf-8")
    return lint_source(source, path=path)


def fixture_rules(name, kind="violations",
                  path="repro/countermeasures/helpers.py"):
    return [f.rule for f in fixture_findings(name, kind, path)]


def rules_of(source, path="repro/countermeasures/helpers.py"):
    return [f.rule
            for f in lint_source(textwrap.dedent(source), path=path)]


# ----------------------------------------------------------------------
# Fixture corpus: each violating module produces exactly its rule,
# each clean twin produces nothing.
# ----------------------------------------------------------------------
def test_rl601_fixture_pair():
    findings = fixture_findings("rl601_raw_stream.py")
    assert [f.rule for f in findings] == ["RL601"]
    assert "bypass" in findings[0].message
    assert fixture_rules("rl601_factory_stream.py", kind="clean") == []


def test_rl602_fixture_pair():
    findings = fixture_findings("rl602_state_transfer.py")
    assert [f.rule for f in findings] == ["RL602", "RL602"]
    assert fixture_rules("rl602_factory_transfer.py",
                         kind="clean") == []


def test_rl603_fixture_pair():
    findings = fixture_findings("rl603_dropped_capture.py")
    assert [f.rule for f in findings] == ["RL603", "RL603"]
    assert all("WorkDayDelta" in f.message for f in findings)
    assert fixture_rules("rl603_captured_delta.py", kind="clean") == []


def test_rl604_fixture_pair():
    findings = fixture_findings("rl604_laundering.py")
    assert [f.rule for f in findings] == ["RL604"] * 4
    # Direct access, one-hop launder, two-hop launder, getattr.
    messages = "\n".join(f.message for f in findings)
    assert "._streams" in messages
    assert "launders hook internals" in messages
    assert "getattr" in messages
    assert fixture_rules("rl604_public_surface.py", kind="clean") == []


# ----------------------------------------------------------------------
# Rule mechanics
# ----------------------------------------------------------------------
def test_rl601_inside_the_shells_is_sanctioned():
    source = """
        import random

        def make(seed):
            return random.Random(seed)
    """
    # Same source, shell path vs anywhere else: only the engine
    # allowlist distinguishes them (lint_source runs with none).
    engine_findings = LintEngine().lint_module(
        "repro/sim/rng.py", textwrap.dedent(source))
    assert [f.rule for f in engine_findings] == []
    assert rules_of(source) == ["RL601"]


def test_rl602_leaves_module_global_state_to_rl002():
    # ``random.getstate()`` is the shared global generator — RL002's
    # finding; RL602 owns per-generator transfer only.
    assert rules_of("""
        import random

        def f():
            return random.getstate()
    """) == ["RL002"]


def test_rl603_accepts_forwarding_and_local_binding():
    assert rules_of("""
        from dataclasses import dataclass
        from typing import Optional

        from repro.sanitizer.delta import capture_delta

        @dataclass(frozen=True)
        class HopDelta:
            sanitizer: Optional[object]

        def direct(trace, base):
            return HopDelta(sanitizer=capture_delta(trace, base, []))

        def bound(trace, base):
            grabbed = capture_delta(trace, base, [])
            return HopDelta(sanitizer=grabbed)

        def forwarded(other):
            return HopDelta(sanitizer=other.sanitizer)

        def merge(delta):
            return delta.sanitizer
    """) == []


def test_rl603_flags_a_name_not_bound_from_capture():
    assert rules_of("""
        from dataclasses import dataclass
        from typing import Optional

        @dataclass(frozen=True)
        class HopDelta:
            sanitizer: Optional[object]

        def smuggle(trace):
            grabbed = trace.events
            return HopDelta(sanitizer=grabbed)

        def merge(delta):
            return delta.sanitizer
    """) == ["RL603"]


def test_rl604_ignores_deltas_without_a_sanitizer_field_and_shells():
    # A *Delta with no sanitizer field is RL402's business, not RL603's;
    # and _streams access from a shell path is the sanctioned factory.
    assert rules_of("""
        def peek(factory):
            return len(factory._streams)
    """, path="repro/sanitizer/probe.py") == []
    assert rules_of("""
        def peek(factory):
            return len(factory._streams)
    """) == ["RL604"]


# ----------------------------------------------------------------------
# Load-bearing gates over the real tree
# ----------------------------------------------------------------------
def test_rl601_pragmas_on_detection_samplers_are_load_bearing():
    """Stripping the justification pragmas resurfaces the raw
    constructions in the detector/invalidator shells."""
    for rel, count in (("detection/lockstep.py", 1),
                       ("detection/synchrotrap.py", 1),
                       ("detection/mlabuse.py", 1),
                       ("countermeasures/invalidation.py", 1)):
        source = (PACKAGE / rel).read_text(encoding="utf-8")
        stripped = _PRAGMA.sub("", source)
        findings = lint_source(stripped, path=f"repro/{rel}")
        assert [f.rule for f in findings
                if f.rule == "RL601"] == ["RL601"] * count, rel
        assert [f.rule for f in lint_source(source, path=f"repro/{rel}")
                if f.rule == "RL601"] == [], rel


def test_rl602_allowlist_on_the_factory_is_load_bearing():
    """The factory really uses getstate/setstate; only the shell
    allowlist keeps the real tree clean."""
    source = (PACKAGE / "sim" / "rng.py").read_text(encoding="utf-8")
    engine = LintEngine(allowlist={})
    findings = engine.lint_module("repro/sim/rng.py", source)
    rl602 = [f for f in findings if f.rule == "RL602"]
    assert len(rl602) == 2          # export_states + install_states
    assert LintEngine().lint_module("repro/sim/rng.py", source) == []


def test_rl603_capture_wiring_in_sharding_is_load_bearing():
    """Unbinding capture_delta in the real sharding module makes every
    ShardDayDelta construction site an RL603 finding."""
    source = (PACKAGE / "countermeasures" / "sharding.py").read_text(
        encoding="utf-8")
    assert source.count("sanitizer=capture_san_delta(") == 2
    broken = source.replace("capture_delta as capture_san_delta",
                            "capture_delta as _unused_capture")
    findings = lint_source(broken,
                           path="repro/countermeasures/sharding.py")
    assert [f.rule for f in findings if f.rule == "RL603"] == \
        ["RL603", "RL603"]
    clean = lint_source(source,
                        path="repro/countermeasures/sharding.py")
    assert [f.rule for f in clean if f.rule == "RL603"] == []


def test_rl604_catches_an_injected_laundering_helper():
    """Grafting a _streams accessor onto the real recovery module is
    flagged at the access and at its caller."""
    source = (PACKAGE / "countermeasures" / "recovery.py").read_text(
        encoding="utf-8")
    grafted = source + textwrap.dedent("""

        def _grab_raw_stream(world, name):
            return world.rng._streams[name]

        def _resume_with_raw(world):
            return _grab_raw_stream(world, "campaign")
    """)
    findings = lint_source(grafted,
                           path="repro/countermeasures/recovery.py")
    assert [f.rule for f in findings if f.rule == "RL604"] == \
        ["RL604", "RL604"]
    clean = lint_source(source,
                        path="repro/countermeasures/recovery.py")
    assert [f.rule for f in clean if f.rule == "RL604"] == []
