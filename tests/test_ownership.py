"""Tests for the §5.2 ownership / self-promotion subsystem."""


from repro.collusion.ownership import OWNER_FOLLOWERS, ownership_report


def test_owners_created_for_every_network(mini_study):
    world, catalog, ecosystem = mini_study
    for domain, network in ecosystem.networks.items():
        owner = network.owner
        assert owner is not None
        account = world.platform.get_account(owner.account_id)
        assert account.follower_count == owner.followers
        assert len(owner.promo_post_ids) == 3
        world.platform.get_page(owner.page_id)  # exists


def test_owner_follower_scaling(mini_study):
    world, catalog, ecosystem = mini_study
    mg = ecosystem.network("mg-likers.com").owner
    hublaa = ecosystem.network("hublaa.me").owner
    scale = world.config.scale
    assert mg.followers == int(OWNER_FOLLOWERS["mg-likers.com"] * scale)
    assert mg.followers > hublaa.followers


def test_background_activity_promotes_owner(mini_study):
    world, catalog, ecosystem = mini_study
    network = ecosystem.network("mg-likers.com")
    owner = network.owner
    before = sum(world.platform.get_post(p).like_count
                 for p in owner.promo_post_ids)
    # Drive enough background actions that the 5% promotion share fires.
    members = list(network.token_db)[:40]
    for member in members:
        network.use_member_token_for_background(member, 10)
    after = sum(world.platform.get_post(p).like_count
                for p in owner.promo_post_ids)
    page_likes = world.platform.get_page(owner.page_id).like_count
    assert after + page_likes > before


def test_ownership_report(mini_study):
    world, catalog, ecosystem = mini_study
    report = ownership_report(world, ecosystem)
    assert len(report.rows) == len(ecosystem.networks)
    # Sorted by owner visibility; mg-likers' operator leads.
    assert report.rows[0].domain == "mg-likers.com"
    # Privacy-protected rows disclose nothing.
    for row in report.rows:
        if row.privacy_protected:
            assert row.registrant_name is None
            assert row.registrant_country is None
    countries = report.registrant_countries()
    assert all(isinstance(v, int) for v in countries.values())
    text = report.render()
    assert "Ownership analysis" in text
    assert "mg-likers.com" in text
