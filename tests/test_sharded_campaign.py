"""Per-network sharded campaign execution vs the serial path.

The sharded day executor (``repro.countermeasures.sharding``) forks one
worker per certified network component and merges the children's deltas
back at the day boundary.  For a certified plan the merged trajectory
must be *byte-identical* to the serial one — same request log, activity
log, limiter windows, per-network RNG streams and daily series.  For an
ineligible plan (the paper's default app-sharing ecosystem, outgoing
background traffic, or an active fault plan) the campaign must fall
back to the serial path and say why.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.countermeasures.campaign import (
    CampaignConfig,
    CountermeasureCampaign,
)
from repro.countermeasures.sharding import plan_shards
from repro.faults.plan import FaultPlan, FaultRule

#: The only app-distinct (hence token- and window-disjoint) pair among
#: the built profiles: fb-autolikers.com runs on NOKIA_ACCOUNT and
#: autolike.vn on PAGE_MANAGER_IOS, while everything else shares
#: HTC_SENSE.
DISJOINT = ("fb-autolikers.com", "autolike.vn")
SCALE = 0.004


def _run(shards, *, networks=DISJOINT, outgoing=0.0, fault_plan=None,
         seed=31):
    world = World(StudyConfig(scale=SCALE, seed=seed,
                              fault_plan=fault_plan or FaultPlan()))
    AppCatalog(world.apps, world.rng.stream("catalog"), tail_apps=0).build()
    ecosystem = build_ecosystem(world, build_membership=False,
                                network_limit=13)
    for domain in networks:
        network = ecosystem.network(domain)
        network.build_membership(network.profile.pool_size(SCALE))
    config = CampaignConfig.compressed(
        12, networks=networks, outgoing_per_hour=outgoing, shards=shards,
        hublaa_outage=None)
    campaign = CountermeasureCampaign(world, ecosystem, config)
    results = campaign.run()
    return world, ecosystem, results


def _log_digest(log) -> str:
    return hashlib.sha256(repr(log.export_rows(0)).encode()).hexdigest()


def _activity_digest(platform) -> str:
    by_actor = platform.activity_log._by_actor
    flat = [(actor, [(r.verb, r.target_id, r.target_kind, r.created_at,
                      r.via_app_id, r.source_ip) for r in records])
            for actor, records in sorted(by_actor.items())]
    return hashlib.sha256(repr(flat).encode()).hexdigest()


def _limiter_state(world):
    limiter = world.api.enforcer._token_limiter
    return sorted((key, tuple(events),
                   limiter._saturated_until.get(key))
                  for key, events in limiter._events.items())


def _network_state(ecosystem, domain):
    network = ecosystem.network(domain)
    return (network.rng.getstate(),
            sorted(network.token_db.items()),
            sorted(network.dead_members),
            list(network._member_list),
            network.total_likes_delivered,
            network.total_requests_served)


def _assert_byte_identical(serial, sharded, networks=DISJOINT):
    world_a, eco_a, res_a = serial
    world_b, eco_b, res_b = sharded
    assert len(world_a.api.log) == len(world_b.api.log)
    assert _log_digest(world_a.api.log) == _log_digest(world_b.api.log)
    assert (_activity_digest(world_a.platform)
            == _activity_digest(world_b.platform))
    assert len(world_a.platform.activity_log) == len(
        world_b.platform.activity_log)
    assert _limiter_state(world_a) == _limiter_state(world_b)
    assert world_a.api.charge_counters == world_b.api.charge_counters
    assert world_a.tokens._counter == world_b.tokens._counter
    for domain in networks:
        assert _network_state(eco_a, domain) == _network_state(
            eco_b, domain), domain
        assert (res_a.series[domain].posts_per_day
                == res_b.series[domain].posts_per_day)
        assert (res_a.series[domain].likes_per_day
                == res_b.series[domain].likes_per_day)
    assert res_a.interventions == res_b.interventions


@pytest.fixture(scope="module")
def serial_run():
    return _run(shards=1)


@pytest.fixture(scope="module")
def sharded_run():
    return _run(shards=2)


def test_disjoint_networks_shard_into_two_components(sharded_run):
    _world, _eco, results = sharded_run
    plan = results.shard_plan
    assert plan is not None
    assert plan.eligible
    assert plan.effective_shards == 2
    assert sorted(c[0] for c in plan.components) == sorted(DISJOINT)
    assert plan.conflicts == []


def test_sharded_day_is_byte_identical_to_serial(serial_run, sharded_run):
    _assert_byte_identical(serial_run, sharded_run)
    # Non-vacuous: the serial run must not have produced a plan at all
    # (shards=1 never plans), while the sharded one certified two.
    assert serial_run[2].shard_plan is None
    assert sharded_run[2].shard_plan.effective_shards == 2


def test_default_ecosystem_is_ineligible_and_reports_why():
    """The paper's focal networks share an app (and, after milking,
    hundreds of live tokens) — the planner must refuse to shard them."""
    world = World(StudyConfig(scale=SCALE, seed=7))
    AppCatalog(world.apps, world.rng.stream("catalog"), tail_apps=0).build()
    ecosystem = build_ecosystem(world, network_limit=2)
    networks = {d: ecosystem.network(d)
                for d in ("hublaa.me", "official-liker.net")}
    plan = plan_shards(networks, outgoing_per_hour=0.0,
                       requested_shards=2)
    assert not plan.eligible
    assert plan.effective_shards == 1
    assert len(plan.components) == 1
    assert plan.conflicts, "expected a recorded app/token conflict"
    assert plan.conflicts[0].shared_app is not None
    assert any("one component" in blocker for blocker in plan.blockers)
    assert "shared" in plan.describe()


def test_outgoing_traffic_blocks_sharding():
    """Outgoing background activity allocates global post ids mid-day;
    the planner must force the serial path even for disjoint networks."""
    world = World(StudyConfig(scale=SCALE, seed=7))
    AppCatalog(world.apps, world.rng.stream("catalog"), tail_apps=0).build()
    ecosystem = build_ecosystem(world, build_membership=False,
                                network_limit=13)
    networks = {d: ecosystem.network(d) for d in DISJOINT}
    plan = plan_shards(networks, outgoing_per_hour=7.0,
                       requested_shards=2)
    assert len(plan.components) == 2
    assert not plan.eligible
    assert any("outgoing" in blocker for blocker in plan.blockers)


def test_fault_plan_shards_and_stays_byte_identical():
    """An active fault plan no longer blocks sharding: fault decisions
    are keyed per-subject hashes, so forked components reproduce
    exactly the draws their own tokens would have seen serially and the
    merged day stays byte-identical to the serial oracle."""
    plan = FaultPlan((
        FaultRule(kind="transient", probability=0.02,
                  actions=frozenset({"LIKE_POST", "CHARGE_LIKE"})),
        FaultRule(kind="invalidate_token", probability=0.001,
                  actions=frozenset({"LIKE_POST"})),
        FaultRule(kind="chunk", probability=0.01),
    ))
    serial = _run(shards=1, fault_plan=plan, seed=47)
    sharded = _run(shards=2, fault_plan=plan, seed=47)
    shard_plan = sharded[2].shard_plan
    assert shard_plan is not None
    assert shard_plan.eligible
    assert shard_plan.effective_shards == 2
    assert not any("fault" in blocker for blocker in shard_plan.blockers)
    _assert_byte_identical(serial, sharded)
    # The fault stream actually fired in both runs, with the same tally
    # (the equivalence is not vacuous).
    assert serial[0].faults is not None
    assert serial[0].faults.total_injected() > 0
    assert (serial[0].faults.counters
            == sharded[0].faults.counters)
    # Invalidation decision order interleaves globally in the serial run
    # but per-component in the merge; the *set* must match exactly.
    assert (sorted(serial[0].faults.invalidations)
            == sorted(sharded[0].faults.invalidations))


def test_shard_plan_describe_lists_components_conflicts_and_blockers():
    """ShardPlan.describe() is the operator's fallback explanation: it
    must name every component, conflict, and blocker verbatim."""
    from repro.countermeasures.sharding import ShardConflict, ShardPlan

    plan = ShardPlan(
        components=[("a.com",), ("b.com",)],
        conflicts=[ShardConflict(a="a.com", b="b.com",
                                 shared_app="app-1", shared_tokens=3)],
        blockers=["outgoing background traffic active"])
    assert not plan.eligible
    assert plan.effective_shards == 1
    text = plan.describe()
    assert "serial fallback" in text
    assert "a.com" in text and "b.com" in text
    assert "app app-1" in text and "3 tokens" in text
    assert "blocked: outgoing background traffic active" in text

    eligible = ShardPlan(components=[("a.com",), ("b.com",)])
    assert eligible.eligible
    assert eligible.effective_shards == 2
    assert "eligible" in eligible.describe()
    assert "blocked" not in eligible.describe()


def test_sigkilled_shard_child_is_quarantined_and_reexecuted():
    """A child_crash fault SIGKILLs forked workers partway through their
    day; the supervisor must detect the deaths, quarantine the deltas,
    re-execute the components serially, and still merge every day
    byte-identical to the serial oracle."""
    plan = FaultPlan((
        FaultRule(kind="child_crash", probability=0.2),
    ))
    serial = _run(shards=1, fault_plan=plan, seed=31)
    sharded = _run(shards=2, fault_plan=plan, seed=31)
    # Non-vacuous: at least one child actually died on SIGKILL and was
    # recorded; the serial oracle never consults the crash rules.
    failures = sharded[2].shard_failures
    assert failures
    assert any("signal 9" in failure for failure in failures)
    assert all("re-executed serially" in failure for failure in failures)
    assert serial[2].shard_failures == []
    assert sharded[0].faults.counters.get("child_crash", 0) > 0
    _assert_byte_identical(serial, sharded)
