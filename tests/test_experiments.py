"""Tests for the table/figure experiment modules over a mini study."""

import pytest

from repro.apps.catalog import AppCatalog
from repro.collusion.ecosystem import build_ecosystem
from repro.core.config import StudyConfig
from repro.core.world import World
from repro.countermeasures.campaign import (
    CampaignConfig,
    CountermeasureCampaign,
)
from repro.experiments import (
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.formats import format_table, humanize_count
from repro.honeypot.milker import MilkingCampaign


@pytest.fixture(scope="module")
def full_artifacts():
    """A complete mini study: build + milk + campaign."""
    w = World(StudyConfig(scale=0.005, seed=5, milking_days=8))
    catalog = AppCatalog(w.apps, w.rng.stream("catalog"))
    catalog.build()
    eco = build_ecosystem(w)
    milking = MilkingCampaign(w, eco).run(8)
    config = CampaignConfig(
        days=20, posts_per_day=6, rate_limit_day=4,
        invalidate_half_day=7, invalidate_all_day=9,
        daily_half_start_day=10, daily_all_start_day=12,
        ip_limit_day=14, clustering_start_day=16,
        clustering_interval_days=2, as_block_day=18,
        hublaa_outage=None, outgoing_per_hour=2.0)
    campaign = CountermeasureCampaign(w, eco, config).run()
    return w, catalog, eco, milking, campaign


# ----------------------------------------------------------------------
# Formats
# ----------------------------------------------------------------------

def test_format_table_alignment():
    text = format_table(["name", "n"], [("a", 1), ("bb", 22)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert lines[-1].endswith("22")


def test_humanize_count():
    assert humanize_count(50_000_000) == "50M"
    assert humanize_count(1_500_000) == "1.5M"
    assert humanize_count(100_000) == "100K"
    assert humanize_count(42) == "42"


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------

def test_table1_reproduces_split(full_artifacts):
    w, catalog, eco, milking, campaign = full_artifacts
    result = table1.run(w, catalog)
    assert (result.susceptible, result.susceptible_short_term,
            result.susceptible_long_term) == (55, 46, 9)
    assert result.rows[0][1] == "Spotify"
    assert "Table 1" in result.render()


def test_table2_top_sites_and_countries(full_artifacts):
    w, catalog, eco, milking, campaign = full_artifacts
    result = table2.run(w)
    assert result.rows[0][0] == "hublaa.me"
    assert result.rank_of("hublaa.me") < result.rank_of("djliker.com")
    # Top countries survive the synthetic remainder split.
    by_domain = {r[0]: r for r in result.rows}
    assert by_domain["hublaa.me"][2] == "IN"
    assert by_domain["begeniyor.com"][2] == "TR"
    assert by_domain["autolike.vn"][2] == "VN"
    with pytest.raises(KeyError):
        result.rank_of("nope.example")


def test_table3_app_order_and_buckets(full_artifacts):
    w, catalog, eco, milking, campaign = full_artifacts
    result = table3.run(w)
    names = [r.name for r in result.rows]
    assert names == ["HTC Sense", "Nokia Account",
                     "Sony Xperia smartphone"]
    dau = [r.dau for r in result.rows]
    assert dau[0] > dau[1] > dau[2]
    ranks = [r.dau_rank for r in result.rows]
    assert ranks[0] < ranks[1] < ranks[2]


def test_table4_rows_and_totals(full_artifacts):
    w, catalog, eco, milking, campaign = full_artifacts
    result = table4.run(milking, scale=w.config.scale)
    assert result.rows[0].domain == "hublaa.me"  # biggest membership
    assert result.total_posts == milking.total_posts()
    assert result.unique_accounts <= result.total_memberships
    assert "Table 4" in result.render()
    row = result.row_for("official-liker.net")
    assert row.avg_likes_per_post == pytest.approx(390, rel=0.1)
    with pytest.raises(KeyError):
        result.row_for("missing")


def test_table5_rows(full_artifacts):
    w, catalog, eco, milking, campaign = full_artifacts
    result = table5.run(w, eco)
    assert len(result.rows) == 13
    assert result.rows[0].label == "goo.gl/jZ7Nyl"
    assert result.rows[0].report.short_url_clicks >= 147_959_735
    assert result.rows[0].app_name == "HTC Sense"
    assert result.total_long_url_clicks() > 289_000_000
    assert "Table 5" in result.render()


def test_table6_lexical_shape(full_artifacts):
    w, catalog, eco, milking, campaign = full_artifacts
    result = table6.run(milking)
    assert len(result.per_network) == 7
    for domain, analysis in result.per_network.items():
        assert analysis.comments > 0
        assert analysis.lexical_richness_pct < 40
    assert result.overall.unique_comment_pct < 30
    assert 5 < result.overall.non_dictionary_pct < 45
    assert "Table 6" in result.render()


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------

def test_fig4_curves(full_artifacts):
    w, catalog, eco, milking, campaign = full_artifacts
    result = fig4.run(milking)
    for domain, curve in result.curves.items():
        assert curve.posts > 0
        likes = curve.cumulative_likes
        assert all(a <= b for a, b in zip(likes, likes[1:]))
        unique = curve.cumulative_unique
        assert all(a <= b for a, b in zip(unique, unique[1:]))
        # Diminishing returns: the tail finds fewer new accounts per
        # like than the beginning.
        assert curve.new_unique_rate(tail_fraction=0.3) < 1.0
    assert "Figure 4" in result.render()


def test_fig5_phases(full_artifacts):
    w, catalog, eco, milking, campaign = full_artifacts
    result = fig5.run(campaign)
    baseline = result.phase_avg("official-liker.net", "baseline")
    ip_phase = result.phase_avg("official-liker.net", "IP rate limits")
    assert ip_phase < 0.2 * baseline
    assert "Figure 5" in result.render()
    with pytest.raises(KeyError):
        result.phase_avg("official-liker.net", "no such phase")


def test_fig6_histogram(full_artifacts):
    w, catalog, eco, milking, campaign = full_artifacts
    result = fig6.run(w, campaign, ecosystem=eco)
    for domain, hist in result.histograms.items():
        assert hist.accounts > 0
        assert sum(hist.shares.values()) == pytest.approx(1.0)
        # Most accounts like only a few posts (account rotation, §6.3).
        assert hist.share_at_most(3) > 0.5
    assert "Figure 6" in result.render()


def test_fig7_hourly_spread(full_artifacts):
    w, catalog, eco, milking, campaign = full_artifacts
    result = fig7.run(w, campaign)
    for domain, series in result.series.items():
        assert len(series.hourly_average) == 24
        assert series.total_actions > 0
        # Spread across the day, close to the configured 2/hour, with
        # no single-hour binge.
        assert series.peak < 12 * max(series.mean, 0.1)
    assert "Figure 7" in result.render()


def test_fig8_source_concentration(full_artifacts):
    w, catalog, eco, milking, campaign = full_artifacts
    result = fig8.run(w, campaign)
    official = result.breakdowns["official-liker.net"]
    hublaa = result.breakdowns["hublaa.me"]
    # official-liker.net: few IPs, traffic concentrated (zipf).
    assert official.distinct_ips < 20
    assert official.top_ip_share() > 0.5
    # hublaa.me: large pool across exactly the two bulletproof ASes.
    assert hublaa.distinct_ips > 100
    assert hublaa.distinct_asns == 2
    assert hublaa.top_ip_share() < 0.2
    assert "Figure 8" in result.render()
