"""SARIF 2.1.0 emission: required fields, fingerprint stability across
line shifts, and the suppression round-trip for pragma'd findings."""

import json
from pathlib import Path

from repro.lint import LintEngine

WALL_CLOCK = (
    "import time\n"
    "\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)

PRAGMAD_WALL_CLOCK = (
    "import time\n"
    "\n"
    "\n"
    "def stamp():\n"
    "    return time.time()  "
    "# reprolint: disable=RL001 — perf shell boundary\n"
)


def _sarif_for(tmp_path, name, source):
    target = tmp_path / name
    target.write_text(source, encoding="utf-8")
    engine = LintEngine(allowlist={})
    report = engine.run_files([(f"repro/{name}", target)])
    return report, json.loads(report.render_sarif())


# ----------------------------------------------------------------------
# Required 2.1.0 structure
# ----------------------------------------------------------------------
def test_document_carries_required_sarif_fields(tmp_path):
    _report, document = _sarif_for(tmp_path, "clocky.py", WALL_CLOCK)
    assert document["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in document["$schema"]
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "reprolint"
    assert driver["informationUri"]
    (rule,) = driver["rules"]
    assert rule["id"] == "RL001"
    assert rule["shortDescription"]["text"]
    (result,) = run["results"]
    assert result["ruleId"] == "RL001"
    assert result["level"] == "error"
    assert result["message"]["text"]
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "repro/clocky.py"
    region = location["region"]
    assert region["startLine"] == 5
    assert region["startColumn"] >= 1
    assert result["partialFingerprints"]["reprolintFingerprint/v1"]


def test_rule_table_covers_every_result_rule(tmp_path):
    # Every ruleId referenced by a result must have a driver rule
    # descriptor, or GitHub code scanning rejects the upload.
    source = WALL_CLOCK + "\nimport uuid\nNODE = uuid.uuid4()\n"
    _report, document = _sarif_for(tmp_path, "multi.py", source)
    run = document["runs"][0]
    declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    referenced = {result["ruleId"] for result in run["results"]}
    assert referenced <= declared


# ----------------------------------------------------------------------
# Fingerprint stability
# ----------------------------------------------------------------------
def test_fingerprints_survive_line_shifts(tmp_path):
    _report, before = _sarif_for(tmp_path, "shifty.py", WALL_CLOCK)
    shifted_source = "\n\n# a new header comment\n\n" + WALL_CLOCK
    _report, after = _sarif_for(tmp_path, "shifty.py", shifted_source)

    def prints(document):
        return [result["partialFingerprints"]["reprolintFingerprint/v1"]
                for result in document["runs"][0]["results"]]

    lines = [result["locations"][0]["physicalLocation"]["region"]
             ["startLine"] for result in after["runs"][0]["results"]]
    assert lines == [9]                  # the finding really moved...
    assert prints(before) == prints(after)   # ...the identity did not


# ----------------------------------------------------------------------
# Suppression round-trip
# ----------------------------------------------------------------------
def test_pragma_suppression_round_trips_as_in_source(tmp_path):
    report, document = _sarif_for(tmp_path, "shell.py",
                                  PRAGMAD_WALL_CLOCK)
    # The pragma keeps the run green...
    assert report.findings == []
    assert [f.rule for f in report.suppressed] == ["RL001"]
    # ...but the SARIF document still records the silenced finding.
    (result,) = document["runs"][0]["results"]
    assert result["ruleId"] == "RL001"
    (suppression,) = result["suppressions"]
    assert suppression["kind"] == "inSource"
    # And its rule is still declared in the driver table.
    declared = {rule["id"] for rule
                in document["runs"][0]["tool"]["driver"]["rules"]}
    assert declared == {"RL001"}


def test_suppressed_and_live_findings_coexist(tmp_path):
    source = PRAGMAD_WALL_CLOCK + (
        "\n"
        "\n"
        "def stamp_again():\n"
        "    return time.time()\n"
    )
    report, document = _sarif_for(tmp_path, "mixed.py", source)
    assert [f.rule for f in report.findings] == ["RL001"]
    assert [f.rule for f in report.suppressed] == ["RL001"]
    results = document["runs"][0]["results"]
    kinds = [tuple(s["kind"] for s in result.get("suppressions", ()))
             for result in results]
    assert kinds == [(), ("inSource",)]


def test_baselined_findings_keep_external_suppressions(tmp_path):
    from repro.lint.baseline import Baseline

    target = tmp_path / "base.py"
    target.write_text(WALL_CLOCK, encoding="utf-8")
    engine = LintEngine(allowlist={})
    pairs = [("repro/base.py", target)]
    baseline = Baseline.from_findings(
        engine.run_files(pairs).findings)
    report = engine.run_files(pairs, baseline=baseline)
    document = json.loads(report.render_sarif())
    (result,) = document["runs"][0]["results"]
    (suppression,) = result["suppressions"]
    assert suppression["kind"] == "external"
