"""Tests for the ecosystem builder and its web-intel seeding."""

import pytest

from repro.collusion.profiles import (
    BULLETPROOF_ASNS,
    MILKED_PROFILES,
    unique_table2_sites,
)


def test_networks_built(mini_study):
    world, catalog, ecosystem = mini_study
    assert len(ecosystem.networks) == 4
    assert "hublaa.me" in ecosystem.networks
    with pytest.raises(KeyError):
        ecosystem.network("not-built.example")


def test_membership_overlap_exists(mini_study):
    world, catalog, ecosystem = mini_study
    assert ecosystem.total_memberships() > ecosystem.unique_members()


def test_infrastructure_registered(mini_study):
    world, catalog, ecosystem = mini_study
    for asn in BULLETPROOF_ASNS:
        assert world.as_registry.get(asn).is_bulletproof
    hublaa = ecosystem.network("hublaa.me")
    asns = {world.as_registry.asn_of(ip)
            for ip in hublaa.ip_pool.addresses}
    assert asns == set(BULLETPROOF_ASNS)


def test_hublaa_pool_scaled_but_large(mini_study):
    world, catalog, ecosystem = mini_study
    hublaa = ecosystem.network("hublaa.me")
    official = ecosystem.network("official-liker.net")
    assert len(hublaa.ip_pool) >= 50 * len(official.ip_pool)


def test_short_urls_seeded(mini_study):
    world, catalog, ecosystem = mini_study
    assert len(ecosystem.table5_slugs) == 13
    # The biggest link carries its paper click history.
    label, slug = ecosystem.table5_slugs[0]
    assert label == "goo.gl/jZ7Nyl"
    assert world.shortener.get(slug).click_count >= 147_959_735


def test_shared_long_url_totals(mini_study):
    world, catalog, ecosystem = mini_study
    label_to_slug = dict(ecosystem.table5_slugs)
    shared = world.shortener.get(label_to_slug["goo.gl/jZ7Nyl"])
    # Seeded with the paper total; live joins keep adding clicks.
    total = world.shortener.long_url_click_count(shared.long_url)
    assert total >= 236_194_576
    assert total < 236_194_576 * 1.01


def test_member_joins_click_short_url(mini_study):
    world, catalog, ecosystem = mini_study
    hublaa = ecosystem.network("hublaa.me")
    slug = hublaa.short_url_slug
    assert slug is not None
    before = world.shortener.get(slug).click_count
    hublaa.join()
    assert world.shortener.get(slug).click_count == before + 1


def test_whois_seeded_for_all_sites(mini_study):
    world, catalog, ecosystem = mini_study
    for site in unique_table2_sites():
        record = world.whois.lookup(site.domain)
        assert record.nameserver_provider == "cloudflare"
    share = world.whois.privacy_protected_share()
    assert 0.15 < share < 0.6  # around the paper's 36%


def test_traffic_ranks_follow_table2(mini_study):
    world, catalog, ecosystem = mini_study
    ranking = {e.domain: e.rank for e in world.traffic_ranker.ranking()}
    assert ranking["hublaa.me"] < ranking["official-liker.net"]
    assert ranking["official-liker.net"] < ranking["arabfblike.com"]


def test_ad_profiles_seeded(mini_study):
    world, catalog, ecosystem = mini_study
    result = world.ad_scanner.scan("mg-likers.com")
    assert result.uses_redirect_monetization
    assert result.anti_adblock_detected


def test_exploited_apps_registered(mini_study):
    world, catalog, ecosystem = mini_study
    for profile in MILKED_PROFILES[:4]:
        app = world.apps.get(profile.app_id)
        assert app.is_susceptible
