"""RL4xx state-coverage rules: the fixture corpus, rule mechanics, and
the load-bearing gates over the real durability layer
(``recovery.py`` / ``sharding.py`` / ``wal.py``)."""

import re
import textwrap
from pathlib import Path

import repro
from repro.lint import lint_source

DATA = (Path(__file__).resolve().parent / "data" / "reprolint" /
        "stateflow")
PACKAGE = Path(repro.__file__).resolve().parent

_PRAGMA = re.compile(r"#\s*reprolint:\s*disable[^\n]*")


def fixture_findings(name, kind="violations",
                     path="repro/oauth/helpers.py"):
    source = (DATA / kind / name).read_text(encoding="utf-8")
    return lint_source(source, path=path)


def fixture_rules(name, kind="violations",
                  path="repro/oauth/helpers.py"):
    return [f.rule for f in fixture_findings(name, kind, path)]


def rules_of(source, path="repro/oauth/helpers.py"):
    return [f.rule
            for f in lint_source(textwrap.dedent(source), path=path)]


# ----------------------------------------------------------------------
# Fixture corpus: each violating module produces exactly its rule,
# each clean twin produces nothing.
# ----------------------------------------------------------------------
def test_rl401_snapshot_fixture_pair():
    findings = fixture_findings("rl401_missing_capture.py")
    assert [f.rule for f in findings] == ["RL401"]
    assert "'_peak'" in findings[0].message
    assert fixture_rules("rl401_full_coverage.py", kind="clean") == []


def test_rl401_checkpoint_fixture_pair():
    findings = fixture_findings("rl401_checkpoint_fields.py")
    assert [f.rule for f in findings] == ["RL401", "RL401"]
    # Both failure modes name the dropped field.
    assert all("spool" in f.message for f in findings)
    assert fixture_rules("rl401_checkpoint_fields.py",
                         kind="clean") == []


def test_rl402_delta_fixture_pair():
    findings = fixture_findings("rl402_delta_unread.py")
    assert [f.rule for f in findings] == ["RL402"]
    assert "failures" in findings[0].message
    assert fixture_rules("rl402_delta_complete.py", kind="clean") == []


def test_rl402_fork_purity_fixture_pair():
    findings = fixture_findings("rl402_impure_child.py")
    assert [f.rule for f in findings] == ["RL402", "RL402"]
    messages = " ".join(f.message for f in findings)
    assert "opens a file for writing" in messages
    assert "json.dump" in messages
    assert fixture_rules("rl402_pure_child.py", kind="clean") == []


def test_rl403_fixture_pair():
    findings = fixture_findings("rl403_raw_frame.py",
                                path="repro/journal/helpers.py")
    assert [f.rule for f in findings] == ["RL403", "RL403"]
    messages = " ".join(f.message for f in findings)
    assert "repr()" in messages
    assert "literal_eval" in messages
    assert fixture_rules("rl403_codec.py", kind="clean",
                         path="repro/journal/helpers.py") == []


def test_rl403_only_applies_inside_the_journal_package():
    # The same raw round-trip outside repro/journal/ is not this
    # rule's business.
    assert fixture_rules("rl403_raw_frame.py",
                         path="repro/oauth/helpers.py") == []


# ----------------------------------------------------------------------
# Rule mechanics beyond the corpus
# ----------------------------------------------------------------------
def test_rl401_capture_pair_cross_check_both_directions():
    findings = lint_source(textwrap.dedent("""
        def capture_windows(limiter):
            return {"events": dict(limiter.events),
                    "ghost": None}

        def install_windows(limiter, state):
            limiter.events = state["events"]
            limiter.extra = state["orphan"]
    """), path="repro/oauth/helpers.py")
    assert [f.rule for f in findings] == ["RL401", "RL401"]
    messages = " ".join(f.message for f in findings)
    assert "'ghost'" in messages      # captured, never installed
    assert "'orphan'" in messages     # installed, never captured


def test_rl401_dict_snapshot_skip_list_must_be_justified():
    # A __dict__ snapshot covers everything EXCEPT the skip list; a
    # mutated attribute on the skip list is exactly the state a resume
    # loses, so it is flagged (pragma + justification required).
    source = """
        class Box:
            _SKIP = ("cache",)

            def __init__(self):
                self.value = 0
                self.cache = {}

            def poke(self):
                self.value += 1
                self.cache["k"] = 1

            def export_state(self):
                return {k: v for k, v in self.__dict__.items()
                        if k not in self._SKIP}

            def install_state(self, state):
                self.__dict__.update(state)
    """
    findings = lint_source(textwrap.dedent(source),
                           path="repro/oauth/helpers.py")
    assert [f.rule for f in findings] == ["RL401"]
    assert "'cache'" in findings[0].message
    # Without the skip list the dynamic snapshot covers both attrs.
    assert rules_of(source.replace('_SKIP = ("cache",)',
                                   '_SKIP = ()')) == []


def test_rl402_transitive_child_impurity():
    # The child itself looks clean; the helper it calls writes a file.
    findings = lint_source(textwrap.dedent("""
        import os

        def spill(path):
            with open(path, "w") as sink:
                sink.write("x")

        def run(path):
            pid = os.fork()
            if pid == 0:
                spill(path)
                os._exit(0)
            os.waitpid(pid, 0)
    """), path="repro/oauth/helpers.py")
    assert [f.rule for f in findings] == ["RL402"]
    assert "spill" in findings[0].message


# ----------------------------------------------------------------------
# Load-bearing gates: undoing any shipped fix or pragma in the real
# durability layer makes the tree dirty again.
# ----------------------------------------------------------------------
def test_wal_codec_refactor_is_load_bearing():
    source = (PACKAGE / "journal" / "wal.py").read_text(
        encoding="utf-8")
    assert lint_source(source, path="repro/journal/wal.py") == []
    reverted = source.replace(
        "self._write_frame(encode_row(row))",
        'self._write_frame(b"R" + repr(row).encode("utf-8"))')
    reverted = reverted.replace(
        "yield decode_row(payload)",
        'yield literal_eval(payload[1:].decode("utf-8"))')
    assert reverted != source
    findings = lint_source(reverted, path="repro/journal/wal.py")
    assert [f.rule for f in findings] == ["RL403", "RL403"]


def test_sharding_child_pipe_pragma_is_load_bearing():
    source = (PACKAGE / "countermeasures" / "sharding.py").read_text(
        encoding="utf-8")
    path = "repro/countermeasures/sharding.py"
    assert lint_source(source, path=path) == []
    stripped = _PRAGMA.sub("", source)
    rules = [f.rule for f in lint_source(stripped, path=path)]
    assert "RL402" in rules           # the child's pickle.dump pipe


def test_sharding_domains_quarantine_is_load_bearing():
    # Reverting the merge-side component check leaves the delta's
    # ``domains`` field captured but never consumed.
    source = (PACKAGE / "countermeasures" / "sharding.py").read_text(
        encoding="utf-8")
    path = "repro/countermeasures/sharding.py"
    reverted = source.replace(
        "tuple(delta.domains) != tuple(component)", "False")
    reverted = reverted.replace("{tuple(delta.domains)!r}",
                                "{tuple(component)!r}")
    assert reverted != source
    findings = lint_source(reverted, path=path)
    assert [f.rule for f in findings] == ["RL402"]
    assert "domains" in findings[0].message


def test_recovery_checkpoint_pragma_is_load_bearing():
    # The fixpoint sees the token table flow export_state() ->
    # CampaignCheckpoint -> store.save(); only the justified pragma
    # keeps the deliberate durable image lintable.
    source = (PACKAGE / "countermeasures" / "recovery.py").read_text(
        encoding="utf-8")
    path = "repro/countermeasures/recovery.py"
    assert lint_source(source, path=path) == []
    stripped = _PRAGMA.sub("", source)
    rules = [f.rule for f in lint_source(stripped, path=path)]
    assert "RL103" in rules


def test_rl401_class_pragmas_are_load_bearing():
    cases = [
        ("collusion/network.py", "repro/collusion/network.py"),
        ("faults/plan.py", "repro/faults/plan.py"),
        ("graphapi/ratelimit.py", "repro/graphapi/ratelimit.py"),
    ]
    for rel, path in cases:
        source = (PACKAGE / Path(rel)).read_text(encoding="utf-8")
        assert lint_source(source, path=path) == [], rel
        stripped = _PRAGMA.sub("", source)
        rules = {f.rule for f in lint_source(stripped, path=path)}
        assert "RL401" in rules, rel
