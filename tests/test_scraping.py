"""Tests for the token-based data harvester."""


from repro.collusion.scraping import DataHarvester
from repro.graphapi.request import ApiAction


def test_harvest_reads_profiles(mini_study):
    world, catalog, ecosystem = mini_study
    network = ecosystem.network("hublaa.me")
    harvester = DataHarvester(world)
    report = harvester.harvest(network.token_db, limit=50)
    assert report.tokens_tried == 50
    assert report.accounts_exposed == 50 - report.tokens_dead
    assert report.accounts_exposed > 0
    for profile in report.profiles:
        assert profile.account_id in network.token_db
        assert profile.country
    assert sum(report.countries.values()) == report.accounts_exposed


def test_harvest_counts_dead_tokens(mini_study):
    world, catalog, ecosystem = mini_study
    network = ecosystem.network("official-liker.net")
    sample = dict(list(network.token_db.items())[:20])
    for member in list(sample)[:10]:
        world.tokens.invalidate(sample[member])
    report = DataHarvester(world).harvest(sample)
    assert report.tokens_tried == 20
    assert report.tokens_dead == 10
    assert report.accounts_exposed == 10


def test_harvest_visible_in_request_log(mini_study):
    world, catalog, ecosystem = mini_study
    network = ecosystem.network("mg-likers.com")
    attacker_ip = "10.62.42.42"
    before = len(world.api.log.for_ip(attacker_ip))
    DataHarvester(world, source_ip=attacker_ip).harvest(
        network.token_db, limit=15)
    records = world.api.log.for_ip(attacker_ip)
    assert len(records) - before == 15
    assert all(r.action is ApiAction.GET_PROFILE for r in records)


def test_friend_graph_reach_bound(mini_study):
    world, catalog, ecosystem = mini_study
    network = ecosystem.network("hublaa.me")
    members = list(network.token_db)[:3]
    world.platform.befriend(members[0], members[1])
    world.platform.befriend(members[0], members[2])
    report = DataHarvester(world).harvest(
        {m: network.token_db[m] for m in members})
    assert report.reachable_via_friend_graph >= 4  # 2 + 1 + 1
