"""Tests for deterministic randomness."""

from repro.sim.rng import RngFactory, derive_seed


def test_derive_seed_deterministic():
    assert derive_seed(1, "a") == derive_seed(1, "a")


def test_derive_seed_varies_by_name_and_seed():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_stream_is_shared_instance():
    factory = RngFactory(7)
    assert factory.stream("x") is factory.stream("x")


def test_streams_are_independent():
    first = RngFactory(7)
    second = RngFactory(7)
    # Drawing from one stream must not disturb another.
    first.stream("noise").random()
    a = first.stream("target").random()
    b = second.stream("target").random()
    assert a == b


def test_fresh_does_not_share_state():
    factory = RngFactory(7)
    a = factory.fresh("x")
    b = factory.fresh("x")
    assert a is not b
    assert a.random() == b.random()


def test_child_factory_differs_from_parent():
    factory = RngFactory(7)
    child = factory.child("sub")
    assert (factory.stream("x").random()
            != child.stream("x").random())


def test_same_seed_reproduces_sequences():
    rng1 = RngFactory(11).stream("s")
    seq1 = [rng1.random() for _ in range(5)]
    rng2 = RngFactory(11).stream("s")
    seq2 = [rng2.random() for _ in range(5)]
    assert seq1 == seq2


def test_install_states_warns_on_unknown_stream_name():
    import pytest

    source = RngFactory(7)
    source.stream("known").random()
    snapshot = source.export_states()
    target = RngFactory(7)
    # A typo'd checkpoint key must not silently become a pre-wound
    # stream: the install still happens (legitimate late-created
    # streams keep working) but it is reported.
    with pytest.warns(RuntimeWarning, match="'tpyo' does not exist"):
        target.install_states({"tpyo": snapshot["known"]})
    assert (target.stream("tpyo").random()
            == source.stream("known").random())


def test_install_states_known_names_do_not_warn():
    import warnings

    source = RngFactory(7)
    source.stream("known").random()
    target = RngFactory(7)
    target.stream("known")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        target.install_states(source.export_states())
    assert (target.stream("known").random()
            == source.stream("known").random())
