"""CLI-level tests: --changed, --prune-baseline, --format sarif and
the RL000 no-traceback guarantee."""

import json
import subprocess

import pytest

from repro.lint.baseline import Baseline
from repro.lint.cli import main

CLEAN = "x = 1\n"
WALL_CLOCK = (
    "import time\n"
    "\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)


# ----------------------------------------------------------------------
# RL000: syntax errors are findings with a non-zero exit, not crashes
# ----------------------------------------------------------------------
def test_syntax_error_file_reports_rl000_and_exits_1(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n    pass\n", encoding="utf-8")
    rc = main([str(bad), "--no-baseline"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "RL000" in out
    assert "broken.py:1" in out
    assert "Traceback" not in out


# ----------------------------------------------------------------------
# --format
# ----------------------------------------------------------------------
def test_sarif_output_is_valid_and_carries_findings(tmp_path, capsys):
    target = tmp_path / "clocky.py"
    target.write_text(WALL_CLOCK, encoding="utf-8")
    rc = main([str(target), "--no-baseline", "--format", "sarif"])
    out = capsys.readouterr().out
    assert rc == 1
    document = json.loads(out)
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "reprolint"
    results = run["results"]
    assert [r["ruleId"] for r in results] == ["RL001"]
    assert results[0]["level"] == "error"
    region = results[0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 5
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert rule_ids == {"RL001"}


def test_json_flag_is_a_format_alias(tmp_path, capsys):
    target = tmp_path / "ok.py"
    target.write_text(CLEAN, encoding="utf-8")
    assert main([str(target), "--no-baseline", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["files"] == 1


# ----------------------------------------------------------------------
# --changed
# ----------------------------------------------------------------------
def _git(repo, *argv):
    subprocess.run(
        ["git", "-c", "user.email=dev@example.com",
         "-c", "user.name=dev", *argv],
        cwd=repo, check=True, capture_output=True)


@pytest.fixture
def git_repo(tmp_path, monkeypatch):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "committed.py").write_text(CLEAN, encoding="utf-8")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "pkg/committed.py")
    _git(tmp_path, "commit", "-q", "-m", "init")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_changed_lints_only_modified_files(git_repo, capsys):
    (git_repo / "pkg" / "fresh.py").write_text(WALL_CLOCK,
                                               encoding="utf-8")
    rc = main(["pkg", "--changed", "--no-baseline"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "fresh.py" in out
    assert "committed.py" not in out
    assert "1 files" in out


def test_changed_with_no_modifications_is_clean(git_repo, capsys):
    rc = main(["pkg", "--changed", "--no-baseline"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "0 files" in out


def test_changed_sees_tracked_modifications(git_repo, capsys):
    (git_repo / "pkg" / "committed.py").write_text(WALL_CLOCK,
                                                   encoding="utf-8")
    rc = main(["pkg", "--changed", "HEAD", "--no-baseline"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "committed.py" in out


def test_changed_skips_deleted_files(git_repo, capsys):
    (git_repo / "pkg" / "committed.py").unlink()
    rc = main(["pkg", "--changed", "--no-baseline"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "RL000" not in out
    assert "0 files" in out


def test_changed_follows_renames_without_rl000_noise(git_repo, capsys):
    _git(git_repo, "mv", "pkg/committed.py", "pkg/renamed.py")
    (git_repo / "pkg" / "renamed.py").write_text(WALL_CLOCK,
                                                 encoding="utf-8")
    rc = main(["pkg", "--changed", "--no-baseline"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "RL000" not in out
    assert "renamed.py" in out
    assert "committed.py" not in out


def test_changed_works_from_a_subdirectory(git_repo, monkeypatch,
                                           capsys):
    # git reports paths relative to the toplevel; the scan must anchor
    # them there even when invoked from inside the tree.
    (git_repo / "pkg" / "fresh.py").write_text(WALL_CLOCK,
                                               encoding="utf-8")
    monkeypatch.chdir(git_repo / "pkg")
    rc = main([str(git_repo / "pkg"), "--changed", "--no-baseline"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "fresh.py" in out
    assert "RL000" not in out


def test_changed_outside_git_is_a_usage_error(tmp_path, monkeypatch,
                                              capsys):
    target = tmp_path / "ok.py"
    target.write_text(CLEAN, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_DIR", str(tmp_path / "nope"))
    rc = main([str(target), "--changed", "--no-baseline"])
    assert rc == 2
    assert "git" in capsys.readouterr().err


# ----------------------------------------------------------------------
# --prune-baseline
# ----------------------------------------------------------------------
def test_prune_baseline_drops_stale_keeps_live(tmp_path, capsys):
    target = tmp_path / "mixed.py"
    target.write_text(
        "import time\n"
        "import uuid\n"
        "\n"
        "\n"
        "def f():\n"
        "    stamp = time.time()\n"
        "    return stamp, uuid.uuid4()\n",
        encoding="utf-8")
    baseline_path = tmp_path / "baseline.json"
    assert main([str(target), "--write-baseline",
                 "--baseline", str(baseline_path)]) == 0
    assert len(Baseline.load(baseline_path)) == 2

    # Fix one of the two baselined findings, then prune.
    target.write_text(
        "import time\n"
        "\n"
        "\n"
        "def f():\n"
        "    stamp = time.time()\n"
        "    return stamp\n",
        encoding="utf-8")
    capsys.readouterr()
    rc = main([str(target), "--prune-baseline",
               "--baseline", str(baseline_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "kept 1 of 2" in out
    pruned = Baseline.load(baseline_path)
    assert len(pruned) == 1
    (key,) = pruned.entries
    assert key[1] == "RL001"

    # The pruned baseline still absorbs the remaining finding.
    assert main([str(target), "--baseline",
                 str(baseline_path)]) == 0


def test_prune_baseline_without_a_baseline_is_a_usage_error(
        tmp_path, monkeypatch, capsys):
    target = tmp_path / "ok.py"
    target.write_text(CLEAN, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    rc = main([str(target), "--prune-baseline"])
    assert rc == 2
    assert "baseline" in capsys.readouterr().err


def test_prune_baseline_refuses_partial_changed_scans(tmp_path,
                                                      capsys):
    target = tmp_path / "ok.py"
    target.write_text(CLEAN, encoding="utf-8")
    baseline_path = tmp_path / "baseline.json"
    Baseline().dump(baseline_path)
    rc = main([str(target), "--prune-baseline", "--changed",
               "--baseline", str(baseline_path)])
    assert rc == 2
    assert "--changed" in capsys.readouterr().err
