"""Durable write-ahead event journal for the Graph API request log.

The paper's countermeasure deployment ran live for months (§6.3); its
measurement plane had to survive process crashes without losing — or
silently corrupting — collected data.  :class:`EventJournal` gives the
simulator the same property: an append-only, hash-chained record of
every request-log row, written in day-aligned segment files that are
fsynced when the day is sealed.

Format
------
A journal directory holds one ``meta.json`` (configuration fingerprint)
plus one segment file per campaign day, ``day-00001.seg`` … — each a
sequence of *frames*::

    [4-byte big-endian payload length] [payload] [16-byte chain digest]

where ``chain = blake2b(prev_chain || payload, digest_size=16)`` and the
very first frame chains from a fixed genesis string.  The chain runs
*across* segments, so no suffix of the journal can be modified, dropped
or reordered without breaking verification.  Payloads are tagged by
their first byte:

``H``  segment header (JSON: segment day + expected previous chain)
``R``  one request-log row, encoded by :mod:`repro.journal.codec`
``S``  day seal (JSON: day + cumulative row-record count)

Recovery
--------
:meth:`EventJournal.open` walks the chain frame by frame.  The first
frame whose length field runs past the file or whose chain digest does
not verify marks the *torn tail*: the file is truncated back to the
last valid frame, later segments are dropped, and the damage is
reported in the returned :class:`JournalRecovery` — a corrupted tail is
never silently replayed.  :meth:`verify_chain` is the read-only variant
used by audits and tests.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.journal.codec import decode_row, encode_row
from repro.sanitizer.trace import SANITIZER as _SANITIZER
from repro.telemetry.registry import TELEMETRY

_GENESIS = b"repro-journal-v1"
_LEN = struct.Struct(">I")
_DIGEST_SIZE = 16
_SEGMENT_RE = re.compile(r"^day-(\d{5})\.seg$")
_META = "meta.json"
#: Upper bound on a single frame payload; a length field beyond this is
#: treated as tail corruption rather than attempted as an allocation.
_MAX_PAYLOAD = 1 << 24


class JournalCorruption(RuntimeError):
    """A chain-verification walk found an invalid frame."""


class SimulatedCrash(RuntimeError):
    """Raised by crash-fault injection to abort the process the way a
    power loss would — after the journal tail has been torn."""


def _chain(prev: bytes, payload: bytes) -> bytes:
    return hashlib.blake2b(prev + payload,
                           digest_size=_DIGEST_SIZE).digest()


@dataclass
class JournalRecovery:
    """What :meth:`EventJournal.open` found (and repaired) on disk."""

    #: Row records that survived recovery, across all kept segments.
    records: int = 0
    #: Last day whose seal frame was intact (0 = none).
    last_sealed_day: int = 0
    #: Bytes truncated off a torn segment tail (0 = tail was clean).
    truncated_bytes: int = 0
    #: Segment files dropped because they followed the torn frame.
    dropped_segments: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.truncated_bytes == 0 and not self.dropped_segments

    def describe(self) -> str:
        if self.clean:
            return (f"journal clean: {self.records} records through "
                    f"day {self.last_sealed_day}")
        dropped = (f", dropped {len(self.dropped_segments)} segment(s)"
                   if self.dropped_segments else "")
        return (f"journal recovered: torn tail truncated "
                f"({self.truncated_bytes} bytes{dropped}); "
                f"{self.records} records through day "
                f"{self.last_sealed_day} survive")


@dataclass
class _Segment:
    day: int
    path: str
    rows: int = 0
    sealed: bool = False
    end_chain: bytes = _GENESIS


class EventJournal:
    """Hash-chained, day-segmented WAL under one directory."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.meta: dict = {}
        self._segments: List[_Segment] = []
        self._chain = _GENESIS
        self._handle = None
        self._current: Optional[_Segment] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, directory: str, meta: dict) -> "EventJournal":
        """Start a fresh journal, clearing any previous segments."""
        os.makedirs(directory, exist_ok=True)
        journal = cls(directory)
        for name in sorted(os.listdir(directory)):
            if _SEGMENT_RE.match(name) or name == _META:
                os.remove(os.path.join(directory, name))
        journal.meta = dict(meta)
        with open(os.path.join(directory, _META), "w",
                  encoding="utf-8") as handle:
            json.dump(journal.meta, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        journal._fsync_directory()
        return journal

    @classmethod
    def exists(cls, directory: str) -> bool:
        """Whether ``directory`` holds a created journal (its meta file)."""
        return os.path.exists(os.path.join(directory, _META))

    @classmethod
    def open(cls, directory: str) -> Tuple["EventJournal", JournalRecovery]:
        """Open an existing journal, recovering a torn tail if present."""
        journal = cls(directory)
        try:
            with open(os.path.join(directory, _META), "r",
                      encoding="utf-8") as handle:
                journal.meta = json.load(handle)
        except (OSError, ValueError):
            journal.meta = {}
        recovery = journal._recover()
        return journal, recovery

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def begin_day(self, day: int) -> None:
        """Open the segment for campaign ``day`` and chain its header."""
        if self._handle is not None:
            raise RuntimeError("previous day not sealed")
        path = os.path.join(self.directory, f"day-{day:05d}.seg")
        segment = _Segment(day=day, path=path)
        self._current = segment
        self._handle = open(path, "wb")
        header = b"H" + json.dumps(
            {"day": day, "prev": self._chain.hex()},
            sort_keys=True).encode("utf-8")
        self._write_frame(header)

    def append_row(self, row: tuple) -> None:
        """Journal one exported request-log row.

        The journal is the request log's durable image: resume replays
        these rows back into the in-memory log, so the row must carry
        the live token string — a redacted digest could not reproduce
        the byte-identical log the recovery contract promises.
        """
        if self._handle is None:
            raise RuntimeError("no open day segment")
        self._write_frame(encode_row(row))
        self._current.rows += 1
        if TELEMETRY.enabled:
            TELEMETRY.count("journal_frames_total", kind="row")

    def seal_day(self) -> None:
        """Seal the open day: seal frame, flush, fsync, close."""
        if self._handle is None or self._current is None:
            raise RuntimeError("no open day segment")
        total = self.records + self._current.rows
        seal = b"S" + json.dumps(
            {"day": self._current.day, "records": total},
            sort_keys=True).encode("utf-8")
        self._write_frame(seal)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None
        self._current.sealed = True
        self._current.end_chain = self._chain
        self._segments.append(self._current)
        self._current = None
        self._fsync_directory()
        if TELEMETRY.enabled:
            TELEMETRY.count("journal_frames_total", kind="seal")
            TELEMETRY.count("journal_seals_total")

    def abandon(self) -> None:
        """Close without sealing (process teardown on error paths)."""
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - racy fs teardown
                pass
            self._handle = None
            self._current = None

    def _write_frame(self, payload: bytes) -> None:
        self._chain = _chain(self._chain, payload)
        self._handle.write(_LEN.pack(len(payload)) + payload + self._chain)
        if _SANITIZER.enabled:
            # Keyed by the WAL's own day, not the sim clock: under a
            # sharded campaign the frames are appended at merge time,
            # and they must land in the same epoch a serial day's
            # appends do.
            _SANITIZER.record_journal(
                self._current.day, payload[:1].decode("ascii"),
                self._chain)

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Reading / recovery
    # ------------------------------------------------------------------
    @property
    def records(self) -> int:
        """Row records across sealed segments."""
        return sum(segment.rows for segment in self._segments)

    @property
    def last_sealed_day(self) -> int:
        return self._segments[-1].day if self._segments else 0

    def _segment_paths(self) -> List[Tuple[int, str]]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        out = []
        for name in names:
            match = _SEGMENT_RE.match(name)
            if match:
                out.append((int(match.group(1)),
                            os.path.join(self.directory, name)))
        out.sort()
        return out

    @staticmethod
    def _scan_frames(path: str, chain: bytes):
        """Yield ``(offset, payload, chain_after)`` for valid frames.

        Stops (without raising) at the first frame whose length or chain
        digest does not verify; the caller decides whether that is a
        recoverable torn tail or a corruption error.
        """
        with open(path, "rb") as handle:
            data = handle.read()
        offset = 0
        size = len(data)
        while offset + _LEN.size <= size:
            (length,) = _LEN.unpack_from(data, offset)
            end = offset + _LEN.size + length + _DIGEST_SIZE
            if length > _MAX_PAYLOAD or end > size:
                break
            payload = data[offset + _LEN.size:offset + _LEN.size + length]
            digest = data[end - _DIGEST_SIZE:end]
            chain = _chain(chain, payload)
            if digest != chain:
                break
            yield offset, payload, chain
            offset = end

    def _recover(self) -> JournalRecovery:
        recovery = JournalRecovery()
        chain = _GENESIS
        torn = False
        for day, path in self._segment_paths():
            if torn:
                recovery.dropped_segments.append(os.path.basename(path))
                os.remove(path)
                continue
            segment = _Segment(day=day, path=path)
            good_end = 0
            sealed_end = None
            rows_at_seal = 0
            rows = 0
            end_chain = chain
            for offset, payload, chain_after in self._scan_frames(path,
                                                                  chain):
                end_chain = chain_after
                good_end = (offset + _LEN.size + len(payload)
                            + _DIGEST_SIZE)
                if payload[:1] == b"R":
                    rows += 1
                elif payload[:1] == b"S":
                    sealed_end = good_end
                    rows_at_seal = rows
            file_size = os.path.getsize(path)
            if sealed_end is None:
                # No intact seal: the whole segment is the torn tail of
                # a crashed day — drop it and everything after.
                recovery.truncated_bytes += file_size
                recovery.dropped_segments.append(os.path.basename(path))
                os.remove(path)
                torn = True
                continue
            if sealed_end < file_size or rows != rows_at_seal:
                # Valid seal followed by torn bytes (a crash during the
                # next day reusing... or fault-injected chop): keep the
                # sealed prefix, drop the rest.
                recovery.truncated_bytes += file_size - sealed_end
                self._truncate_file(path, sealed_end)
                torn = True
                # Chain head must match the sealed prefix: re-walk it.
                end_chain = self._chain_at(path, chain)
                rows = rows_at_seal
            segment.rows = rows
            segment.sealed = True
            segment.end_chain = end_chain
            self._segments.append(segment)
            chain = end_chain
        self._chain = chain
        recovery.records = self.records
        recovery.last_sealed_day = self.last_sealed_day
        if TELEMETRY.enabled:
            TELEMETRY.count("journal_recoveries_total")
            if recovery.truncated_bytes:
                TELEMETRY.count("journal_truncated_bytes_total",
                                recovery.truncated_bytes)
            if recovery.dropped_segments:
                TELEMETRY.count("journal_dropped_segments_total",
                                len(recovery.dropped_segments))
        return recovery

    @staticmethod
    def _truncate_file(path: str, size: int) -> None:
        with open(path, "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())

    def _chain_at(self, path: str, chain: bytes) -> bytes:
        for _offset, _payload, chain_after in self._scan_frames(path,
                                                                chain):
            chain = chain_after
        return chain

    def replay_rows(self, through_day: Optional[int] = None) -> Iterator[tuple]:
        """Yield exported row tuples from sealed segments, in order."""
        chain = _GENESIS
        for segment in self._segments:
            if through_day is not None and segment.day > through_day:
                break
            for _offset, payload, chain_after in self._scan_frames(
                    segment.path, chain):
                chain = chain_after
                if payload[:1] == b"R":
                    yield decode_row(payload)

    def records_through_day(self, day: int) -> int:
        return sum(segment.rows for segment in self._segments
                   if segment.day <= day)

    def drop_days_after(self, day: int) -> List[str]:
        """Delete segments for days after ``day``; reset the chain head.

        Used on resume to discard sealed days past the chosen
        checkpoint (they will be re-executed and re-journaled).
        """
        if self._handle is not None:
            raise RuntimeError("cannot drop segments with an open day")
        kept: List[_Segment] = []
        dropped: List[str] = []
        for segment in self._segments:
            if segment.day <= day:
                kept.append(segment)
            else:
                dropped.append(os.path.basename(segment.path))
                os.remove(segment.path)
        self._segments = kept
        self._chain = kept[-1].end_chain if kept else _GENESIS
        if dropped:
            self._fsync_directory()
        return dropped

    def chop_tail(self, nbytes: int) -> int:
        """Tear ``nbytes`` off the newest segment (crash-fault hook).

        Simulates the bytes a power loss would eat from the last,
        not-yet-durable writes.  Returns the bytes actually removed.
        """
        if self._handle is not None:
            raise RuntimeError("cannot chop with an open day")
        if not self._segments:
            return 0
        segment = self._segments[-1]
        size = os.path.getsize(segment.path)
        chopped = min(nbytes, max(size - 1, 0))
        if chopped:
            self._truncate_file(segment.path, size - chopped)
        return chopped

    def verify_chain(self) -> int:
        """Walk every frame of every segment, verifying the full chain.

        Returns the row-record count; raises :class:`JournalCorruption`
        on the first invalid frame (read-only: nothing is repaired).
        """
        chain = _GENESIS
        rows = 0
        for day, path in self._segment_paths():
            size = os.path.getsize(path)
            good_end = 0
            for offset, payload, chain_after in self._scan_frames(path,
                                                                  chain):
                chain = chain_after
                good_end = (offset + _LEN.size + len(payload)
                            + _DIGEST_SIZE)
                if payload[:1] == b"R":
                    rows += 1
            if good_end != size:
                raise JournalCorruption(
                    f"invalid frame in {os.path.basename(path)} at "
                    f"offset {good_end} (file size {size})")
        return rows
