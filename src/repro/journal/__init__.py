"""Durable write-ahead event journal (see :mod:`repro.journal.wal`)."""

from repro.journal.wal import (
    EventJournal,
    JournalCorruption,
    JournalRecovery,
    SimulatedCrash,
)

__all__ = [
    "EventJournal",
    "JournalCorruption",
    "JournalRecovery",
    "SimulatedCrash",
]
