"""The approved frame codec for journal row payloads.

``R`` frames carry one exported request-log row.  This module is the
*only* sanctioned place where a row is turned into frame bytes and
back (RL403 enforces that statically): the encode/decode pair lives
side by side so the round-trip property — ``decode_row(encode_row(r))
== r`` for any row of JSON-safe scalars — is reviewed as one unit and
pinned by ``tests/test_journal.py``.

Rows are rendered with ``repr()`` and parsed with
``ast.literal_eval``: total for the tuple-of-scalars shape the request
log exports, byte-stable across interpreter runs (no hash salting, no
pickle protocol drift), and safe to evaluate from a possibly-torn
file.  The journal is the request log's durable image, so the encoded
row carries the live token string — a redacted digest could not
reproduce the byte-identical log the recovery contract promises.
"""

from __future__ import annotations

from ast import literal_eval

#: First payload byte of a row frame.
ROW_TAG = b"R"


def encode_row(row: tuple) -> bytes:
    """One exported request-log row -> ``R``-tagged frame payload."""
    return ROW_TAG + repr(row).encode("utf-8")


def decode_row(payload: bytes) -> tuple:
    """``R``-tagged frame payload -> the exported row tuple."""
    return literal_eval(payload[len(ROW_TAG):].decode("utf-8"))
