"""Third-party application catalog and the susceptibility scanner.

``catalog`` builds the synthetic top-100 application population (plus the
lower-ranked apps collusion networks exploit); ``scanner`` reimplements the
paper's §2.2 scanning tool that drives each app's login flow end-to-end to
decide whether it can be exploited for reputation manipulation.
"""

from repro.apps.catalog import (
    AppCatalog,
    AppSpec,
    NAMED_SUSCEPTIBLE_APPS,
    COLLUSION_APPS,
    mau_bucket,
)
from repro.apps.scanner import AppScanner, ScanVerdict, SusceptibilityReport

__all__ = [
    "AppCatalog",
    "AppSpec",
    "NAMED_SUSCEPTIBLE_APPS",
    "COLLUSION_APPS",
    "mau_bucket",
    "AppScanner",
    "ScanVerdict",
    "SusceptibilityReport",
]
