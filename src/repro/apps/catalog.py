"""The synthetic third-party application population.

Reproduces the structure the paper measured:

* a top-100 catalog (by MAU) in which 55 apps are susceptible — 46 with
  short-term tokens and 9 with long-term tokens (Table 1);
* the three lower-ranked applications collusion networks actually exploit
  (Table 3): HTC Sense, Nokia Account, Sony Xperia smartphone.

Named applications keep their real numeric platform ids so table output
matches the paper row-for-row.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.oauth.apps import Application, ApplicationRegistry, AppSecuritySettings
from repro.oauth.scopes import PermissionScope
from repro.oauth.tokens import TokenLifetime


@dataclass(frozen=True)
class AppSpec:
    """Blueprint for one catalog application."""

    app_id: str
    name: str
    monthly_active_users: int
    daily_active_users: int
    client_side_flow_enabled: bool
    require_app_secret: bool
    token_lifetime: TokenLifetime
    has_publish_actions: bool = True


#: Table 1 — the 9 susceptible top-100 apps issued long-term tokens.
NAMED_SUSCEPTIBLE_APPS: Tuple[AppSpec, ...] = (
    AppSpec("174829003346", "Spotify", 50_000_000, 8_000_000,
            True, False, TokenLifetime.LONG_TERM),
    AppSpec("100577877361", "PlayStation Network", 5_000_000, 900_000,
            True, False, TokenLifetime.LONG_TERM),
    AppSpec("241284008322", "Deezer", 5_000_000, 850_000,
            True, False, TokenLifetime.LONG_TERM),
    AppSpec("139475280761", "Pandora", 5_000_000, 800_000,
            True, False, TokenLifetime.LONG_TERM),
    AppSpec("193278124048833", "HTC Sense", 1_000_000, 250_000,
            True, False, TokenLifetime.LONG_TERM),
    AppSpec("153996561399852", "Flipagram", 1_000_000, 240_000,
            True, False, TokenLifetime.LONG_TERM),
    AppSpec("226681500790782", "TownShip", 1_000_000, 230_000,
            True, False, TokenLifetime.LONG_TERM),
    AppSpec("137234499712326", "Tango", 1_000_000, 220_000,
            True, False, TokenLifetime.LONG_TERM),
    # Exact MAU 1.9M still reports as the "1M" bucket; the value places
    # HTC Sense near the paper's MAU rank of 85 once the tail exists.
    AppSpec("41158896424", "HTC Sense", 1_900_000, 1_000_000,
            True, False, TokenLifetime.LONG_TERM),
)

#: Table 3 — the applications collusion networks exploit.  HTC Sense
#: (41158896424) is also in Table 1; the other two rank below the top 100.
COLLUSION_APPS: Tuple[AppSpec, ...] = (
    NAMED_SUSCEPTIBLE_APPS[-1],  # HTC Sense, DAU 1M (rank 40)
    AppSpec("200758583311692", "Nokia Account", 1_000_000, 100_000,
            True, False, TokenLifetime.LONG_TERM),
    AppSpec("104018109673165", "Sony Xperia smartphone", 100_000, 10_000,
            True, False, TokenLifetime.LONG_TERM),
)

_SYNTH_NAME_STEMS = (
    "Candy", "Farm", "Quiz", "Photo", "Music", "Daily", "Word", "Bubble",
    "Video", "Pet", "City", "Star", "Puzzle", "Chef", "Racing", "Poker",
    "Horoscope", "Birthday", "Travel", "Fitness", "Weather", "News",
    "Karaoke", "Trivia", "Garden", "Galaxy", "Pirate", "Jungle", "Magic",
    "Soccer", "Cricket", "Bingo", "Slots", "Diary", "Sticker", "Recipe",
)
_SYNTH_NAME_SUFFIXES = (
    "Saga", "Story", "Mania", "World", "Life", "Heroes", "Blast", "Crush",
    "Quest", "Villa", "Land", "Dash", "Party", "Club", "Zone", "Go",
)


def mau_bucket(value: int) -> int:
    """Round an exact user count down to its order-of-magnitude bucket.

    Mirrors the Graph API's coarse reporting (1M, 100K, 10K, ...) used in
    Tables 1 and 3.
    """
    if value <= 0:
        return 0
    bucket = 1
    while bucket * 10 <= value:
        bucket *= 10
    return (value // bucket) * bucket


def _mau_for_rank(rank: int) -> int:
    """A smooth, decreasing MAU curve consistent with Table 1/3 anchors.

    Calibrated (exponent 1.38) so the top-100 floor sits near 1.2M MAU:
    with the long tail sampled below that floor, the named apps land at
    Graph-API usage ranks close to the paper's (HTC Sense MAU rank ~85,
    Nokia Account ~213, Sony Xperia ~1563).
    """
    return int(600_000_000 / (rank ** 1.38)) + 50_000


class AppCatalog:
    """Builds and registers the full application population."""

    def __init__(self, registry: ApplicationRegistry, rng: random.Random,
                 top_n: int = 100, susceptible_short_term: int = 46,
                 tail_apps: int = 1500) -> None:
        """``susceptible_short_term`` + the 9 named long-term apps gives
        the paper's 55 susceptible apps out of ``top_n``.

        ``tail_apps`` synthesizes the long tail of applications below the
        top 100, so the Graph API usage ranks of Table 3 (Nokia Account
        MAU rank ~213, Sony Xperia MAU rank ~1563) land in a realistic
        range instead of saturating at ~100.
        """
        if susceptible_short_term + len(NAMED_SUSCEPTIBLE_APPS) > top_n:
            raise ValueError("more susceptible apps than catalog slots")
        if tail_apps < 0:
            raise ValueError("tail_apps cannot be negative")
        self._registry = registry
        self._rng = rng
        self._top_n = top_n
        self._susceptible_short_term = susceptible_short_term
        self._tail_apps = tail_apps
        self._specs: List[AppSpec] = []
        self._apps: Dict[str, Application] = {}

    @property
    def specs(self) -> List[AppSpec]:
        return list(self._specs)

    def build(self) -> List[Application]:
        """Create all catalog apps in the registry and return them."""
        if self._apps:
            raise RuntimeError("catalog already built")
        specs = self._make_specs()
        self._specs = specs
        collusion_only = {spec.app_id for spec in COLLUSION_APPS[1:]}
        self._top100_ids = [
            s.app_id for s in specs
            if s.app_id not in collusion_only
            and not s.name.startswith("Longtail ")
        ][:self._top_n]
        full_scope = PermissionScope.full()
        read_scope = PermissionScope.basic()
        for spec in specs:
            approved = full_scope if spec.has_publish_actions else read_scope
            app = self._registry.register(
                name=spec.name,
                redirect_uri=f"https://{self._slug(spec.name)}.example/callback",
                security=AppSecuritySettings(
                    client_side_flow_enabled=spec.client_side_flow_enabled,
                    require_app_secret=spec.require_app_secret,
                ),
                approved_permissions=approved,
                token_lifetime=spec.token_lifetime,
                monthly_active_users=spec.monthly_active_users,
                daily_active_users=spec.daily_active_users,
                app_id=spec.app_id,
            )
            self._apps[spec.app_id] = app
        return list(self._apps.values())

    @staticmethod
    def _slug(name: str) -> str:
        return "".join(ch for ch in name.lower() if ch.isalnum()) or "app"

    def top_100(self) -> List[Application]:
        """The designated leaderboard apps (the scanner's input).

        The paper scanned a fixed AppData leaderboard list; we return the
        catalog's designated top-``top_n`` (the 9 named Table 1 apps plus
        the synthetic leaders), ordered by MAU.
        """
        members = [self._apps[app_id] for app_id in self._top100_ids]
        members.sort(key=lambda a: (-a.monthly_active_users, a.app_id))
        return members

    def get(self, app_id: str) -> Application:
        app = self._apps.get(app_id)
        if app is None:
            raise KeyError(f"app not in catalog: {app_id}")
        return app

    # ------------------------------------------------------------------
    # Spec generation
    # ------------------------------------------------------------------
    def _make_specs(self) -> List[AppSpec]:
        specs: List[AppSpec] = list(NAMED_SUSCEPTIBLE_APPS)
        specs.extend(COLLUSION_APPS[1:])  # Nokia + Sony (below top 100)
        synthetic_needed = self._top_n - len(NAMED_SUSCEPTIBLE_APPS)
        # Which of the synthetic top-100 slots are susceptible/short-term.
        susceptible_slots = set(self._rng.sample(
            range(synthetic_needed), self._susceptible_short_term))
        names = self._make_names(synthetic_needed)
        used_ids = {spec.app_id for spec in specs}
        rank = 0
        for i in range(synthetic_needed):
            rank += 1
            mau = _mau_for_rank(rank)
            app_id = self._mint_numeric_id(used_ids)
            used_ids.add(app_id)
            if i in susceptible_slots:
                # Susceptible: client-side flow on, secret not required,
                # but only short-term tokens (limited abuse window).
                spec = AppSpec(
                    app_id, names[i], mau, max(1, mau // 5),
                    client_side_flow_enabled=True,
                    require_app_secret=False,
                    token_lifetime=TokenLifetime.SHORT_TERM,
                )
            else:
                # Not susceptible: either the client-side flow is off or
                # the app demands its secret on API calls.
                secure_by_secret = self._rng.random() < 0.5
                spec = AppSpec(
                    app_id, names[i], mau, max(1, mau // 5),
                    client_side_flow_enabled=secure_by_secret,
                    require_app_secret=secure_by_secret,
                    token_lifetime=(TokenLifetime.LONG_TERM
                                    if self._rng.random() < 0.2
                                    else TokenLifetime.SHORT_TERM),
                )
            specs.append(spec)
        specs.extend(self._make_tail_specs(
            {s.app_id for s in specs},
            floor_mau=_mau_for_rank(max(1, synthetic_needed))))
        return specs

    def _make_tail_specs(self, used_ids: set, floor_mau: int) -> List[AppSpec]:
        """The long tail below the top 100: log-uniform MAU under the
        top-100 floor, varied DAU/MAU engagement ratios, read-only
        permissions (they are never scanned or exploited)."""
        tail: List[AppSpec] = []
        low = math.log(60_000)
        high = math.log(max(61_000, floor_mau))
        for i in range(self._tail_apps):
            mau = int(math.exp(self._rng.uniform(low, high)))
            engagement = math.exp(self._rng.uniform(math.log(4),
                                                    math.log(60)))
            app_id = self._mint_numeric_id(used_ids)
            used_ids.add(app_id)
            tail.append(AppSpec(
                app_id, f"Longtail App {i + 1}", mau,
                max(1, int(mau / engagement)),
                client_side_flow_enabled=False,
                require_app_secret=True,
                token_lifetime=TokenLifetime.SHORT_TERM,
                has_publish_actions=False,
            ))
        return tail

    def _make_names(self, count: int) -> List[str]:
        names: List[str] = []
        seen = set()
        while len(names) < count:
            name = (f"{self._rng.choice(_SYNTH_NAME_STEMS)} "
                    f"{self._rng.choice(_SYNTH_NAME_SUFFIXES)}")
            if name in seen:
                name = f"{name} {len(names) + 2}"
            seen.add(name)
            names.append(name)
        return names

    def _mint_numeric_id(self, used: set) -> str:
        while True:
            candidate = str(self._rng.randrange(10**11, 10**12))
            if candidate not in used:
                return candidate
