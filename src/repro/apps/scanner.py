"""The application scanning tool of §2.2.

For each application the scanner drives the *actual* login flow against
the authorization server with a test account — no shortcuts through app
metadata — and then probes the Graph API with the retrieved token:

1. launch the app's login URL and infer the OAuth redirect URI;
2. install the app on the test account with its full approved scope via
   the client-side (implicit) flow;
3. retrieve the access token from the redirect fragment;
4. call the API to read the test account's public profile; and
5. like a test post.

An app is *susceptible to reputation manipulation* only if every step
succeeds without presenting the application secret.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.graphapi.api import GraphApi
from repro.graphapi.errors import (
    AppSecretRequiredError,
    GraphApiError,
    PermissionDeniedError,
)
from repro.oauth.apps import Application
from repro.oauth.errors import FlowDisabledError, InvalidTokenError, OAuthError
from repro.oauth.server import AuthorizationRequest, AuthorizationServer
from repro.oauth.tokens import TokenLifetime
from repro.socialnet.platform import SocialPlatform


class ScanVerdict(enum.Enum):
    """Why an app is (or is not) exploitable."""

    SUSCEPTIBLE = "susceptible"
    CLIENT_FLOW_DISABLED = "client_side_flow_disabled"
    APP_SECRET_REQUIRED = "app_secret_required"
    NO_PUBLISH_PERMISSION = "no_publish_permission"
    OAUTH_ERROR = "oauth_error"


@dataclass(frozen=True)
class SusceptibilityReport:
    """The scanner's conclusion for one application."""

    app_id: str
    app_name: str
    verdict: ScanVerdict
    token_lifetime: Optional[TokenLifetime]
    monthly_active_users: int
    redirect_uri: Optional[str] = None

    @property
    def susceptible(self) -> bool:
        return self.verdict is ScanVerdict.SUSCEPTIBLE


class AppScanner:
    """Runs the end-to-end susceptibility probe against applications."""

    def __init__(self, platform: SocialPlatform,
                 auth_server: AuthorizationServer, api: GraphApi) -> None:
        self._platform = platform
        self._auth = auth_server
        self._api = api
        self._test_account = platform.register_account(
            "Scanner Test Account", is_honeypot=True)

    @property
    def test_account_id(self) -> str:
        return self._test_account.account_id

    def scan(self, app: Application) -> SusceptibilityReport:
        """Probe one application end to end."""
        # Step 1: launch the login URL; the redirect URI is inferred from
        # the login-flow redirections (here: read off the dialog URL).
        self._auth.login_dialog_url(
            app.app_id, "token", app.approved_permissions)
        redirect_uri = app.redirect_uri

        # Step 2+3: install with the app's originally-acquired permission
        # scope via the implicit flow, and lift the token from the
        # redirect fragment.
        request = AuthorizationRequest(
            app_id=app.app_id,
            redirect_uri=redirect_uri,
            response_type="token",
            scope=app.approved_permissions,
        )
        try:
            result = self._auth.authorize(
                request, self._test_account.account_id)
        except FlowDisabledError:
            return self._report(app, ScanVerdict.CLIENT_FLOW_DISABLED,
                                redirect_uri)
        except OAuthError:
            return self._report(app, ScanVerdict.OAUTH_ERROR, redirect_uri)
        token = result.token_from_fragment()
        if token is None:
            return self._report(app, ScanVerdict.OAUTH_ERROR, redirect_uri)

        # Step 4: read the public profile with the bare token.
        try:
            self._probe(self._api.get_profile, token)
        except AppSecretRequiredError:
            return self._report(app, ScanVerdict.APP_SECRET_REQUIRED,
                                redirect_uri)
        except (GraphApiError, InvalidTokenError):
            # Persistent injected outage, rate-limit jitter, or a token
            # invalidated mid-probe: inconclusive, not susceptible.
            return self._report(app, ScanVerdict.OAUTH_ERROR, redirect_uri)

        # Step 5: like a fresh test post with the bare token.
        test_post = self._platform.create_post(
            self._test_account.account_id, "scanner probe post")
        try:
            self._probe(self._api.like_post, token, test_post.post_id)
        except AppSecretRequiredError:
            return self._report(app, ScanVerdict.APP_SECRET_REQUIRED,
                                redirect_uri)
        except PermissionDeniedError:
            return self._report(app, ScanVerdict.NO_PUBLISH_PERMISSION,
                                redirect_uri)
        except (GraphApiError, InvalidTokenError):
            return self._report(app, ScanVerdict.OAUTH_ERROR, redirect_uri)
        return self._report(app, ScanVerdict.SUSCEPTIBLE, redirect_uri)

    #: API probe attempts before a transient failure is allowed through
    #: (only reachable on fault-injection runs).
    _PROBE_ATTEMPTS = 4

    @staticmethod
    def _probe(call, *args):
        """Run one API probe, absorbing retryable failures (injected
        transient errors, rate-limit jitter)."""
        for attempt in range(AppScanner._PROBE_ATTEMPTS):
            try:
                return call(*args)
            except GraphApiError as error:
                if (not error.is_transient
                        or attempt == AppScanner._PROBE_ATTEMPTS - 1):
                    raise

    def scan_all(self, apps: Iterable[Application]) -> List[SusceptibilityReport]:
        return [self.scan(app) for app in apps]

    @staticmethod
    def summarize(reports: Iterable[SusceptibilityReport]) -> dict:
        """The §2.2 headline numbers: total susceptible / short / long."""
        reports = list(reports)
        susceptible = [r for r in reports if r.susceptible]
        short = [r for r in susceptible
                 if r.token_lifetime is TokenLifetime.SHORT_TERM]
        long_term = [r for r in susceptible
                     if r.token_lifetime is TokenLifetime.LONG_TERM]
        return {
            "scanned": len(reports),
            "susceptible": len(susceptible),
            "susceptible_short_term": len(short),
            "susceptible_long_term": len(long_term),
        }

    @staticmethod
    def _report(app: Application, verdict: ScanVerdict,
                redirect_uri: Optional[str]) -> SusceptibilityReport:
        return SusceptibilityReport(
            app_id=app.app_id,
            app_name=app.name,
            verdict=verdict,
            token_lifetime=app.token_lifetime,
            monthly_active_users=app.monthly_active_users,
            redirect_uri=redirect_uri,
        )
