"""repro — a full reproduction of "Measuring and Mitigating OAuth Access
Token Abuse by Collusion Networks" (Farooqi et al., IMC 2017).

The paper measured live Facebook collusion networks and deployed
countermeasures with Facebook; both are long gone, so this library builds
the entire stack as a deterministic simulation — an OSN platform with
OAuth 2.0 and a Graph API, the collusion-network services, the honeypot
measurement apparatus, and the countermeasure suite — and regenerates
every table and figure from the paper's evaluation.

Quick start::

    from repro import Study, StudyConfig

    study = Study(StudyConfig(scale=0.02, seed=2017))
    report = study.run_all()
    print(report.render())
"""

from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.core.world import World

__version__ = "1.0.0"

__all__ = ["Study", "StudyConfig", "World", "__version__"]
