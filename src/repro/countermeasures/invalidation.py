"""§6.2 — honeypot-based access token invalidation.

Accounts observed by honeypots are colluding by construction (honeypots
perform no organic activity).  The platform maps each observed account to
its live token for the exploited application and invalidates it.  The
paper's escalation ladder — half-once, all-once, daily-half, daily-all —
is expressed as methods over the milked-token ledger.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from repro.honeypot.ledger import MilkedTokenLedger
from repro.oauth.tokens import TokenStore


class TokenInvalidator:
    """Invalidates tokens of ledger-observed colluding accounts."""

    def __init__(self, tokens: TokenStore, ledger: MilkedTokenLedger,
                 rng: Optional[random.Random] = None) -> None:
        self._tokens = tokens
        self._ledger = ledger
        self._rng = rng or random.Random(0)  # reprolint: disable=RL601 — defender-side fallback sampler for direct construction in tests; campaign runs inject the "invalidation" stream
        self.total_invalidated = 0

    # ------------------------------------------------------------------
    def _invalidate_accounts(self, accounts: Iterable[str],
                             reason: str) -> int:
        """Invalidate each account's live token for the app it was
        observed abusing; returns how many live tokens died."""
        killed = 0
        for account_id in accounts:
            observation = self._ledger.get(account_id)
            if observation is None or observation.app_id is None:
                continue
            token = self._tokens.live_token_for(account_id,
                                                observation.app_id)
            if token is not None and self._tokens.invalidate(
                    token.token, reason):
                killed += 1
        self.total_invalidated += killed
        return killed

    # ------------------------------------------------------------------
    # The §6.2 escalation ladder
    # ------------------------------------------------------------------
    def invalidate_fraction_of_observed(self, until_day: int,
                                        fraction: float = 0.5) -> int:
        """Invalidate a random ``fraction`` of every account observed up
        to ``until_day`` (day 23: half of all milked tokens)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        observed = self._ledger.observed_until(until_day)
        count = int(len(observed) * fraction)
        sample = self._rng.sample(observed, count) if count else []
        return self._invalidate_accounts(sample, "honeypot-milked (sampled)")

    def invalidate_all_observed(self, until_day: int) -> int:
        """Invalidate every account observed up to ``until_day``."""
        return self._invalidate_accounts(
            self._ledger.observed_until(until_day), "honeypot-milked (all)")

    def invalidate_new_observations(self, day: int,
                                    fraction: float = 1.0) -> int:
        """Daily pass: invalidate the newly observed tokens of ``day``.

        "Newly observed tokens" means every still-live token seen acting
        against the honeypots that day — which covers brand-new members
        and returning members who re-joined with a fresh token after a
        previous invalidation (accounts whose token already died and who
        did not act again are skipped by the live-token lookup).
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        fresh = self._ledger.observed_on(day)
        if fraction < 1.0:
            count = int(len(fresh) * fraction)
            fresh = self._rng.sample(fresh, count) if count else []
        return self._invalidate_accounts(
            fresh, f"honeypot-daily (day {day})")

    def invalidate_specific(self, accounts: Iterable[str],
                            reason: str = "targeted") -> int:
        """Invalidate an explicit account list (used by the clustering
        countermeasure)."""
        return self._invalidate_accounts(accounts, reason)
