"""Fake-engagement cleanup.

Alongside invalidating tokens, the platform removes the reputation
manipulation those tokens produced (the paper's ethics section:
"disclose our findings to Facebook to remove all artifacts of reputation
manipulation during our measurements").  The cleaner walks the Graph API
request log, finds successful likes performed with invalidated tokens of
a given app, and deletes them from the platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set

from repro.graphapi.log import RequestLog
from repro.graphapi.request import ApiAction
from repro.oauth.tokens import TokenStore
from repro.socialnet.errors import SocialNetworkError
from repro.socialnet.platform import SocialPlatform


@dataclass
class CleanupReport:
    """What one cleanup pass removed."""

    likes_examined: int = 0
    likes_removed: int = 0
    posts_touched: int = 0


class EngagementCleaner:
    """Removes platform writes attributed to invalidated tokens."""

    def __init__(self, platform: SocialPlatform, tokens: TokenStore,
                 log: RequestLog) -> None:
        self._platform = platform
        self._tokens = tokens
        self._log = log

    def remove_fake_likes(self, app_ids: Optional[Iterable[str]] = None,
                          since: Optional[int] = None) -> CleanupReport:
        """Remove likes performed via now-invalidated tokens.

        ``app_ids`` restricts cleanup to specific exploited applications
        (the paper's scoping discipline); ``since`` bounds the log scan.
        """
        app_filter: Optional[Set[str]] = (set(app_ids)
                                          if app_ids is not None else None)
        report = CleanupReport()
        touched: Set[str] = set()
        actions, tokens, apps, users, targets = self._log.like_columns(
            ("action", "token", "app_id", "user_id", "target_id"),
            since=since)
        peek = self._tokens.peek
        for action, token_string, app_id, user_id, target_id in zip(
                actions, tokens, apps, users, targets):
            if action is not ApiAction.LIKE_POST:
                continue
            if app_filter is not None and app_id not in app_filter:
                continue
            token = peek(token_string)
            if token is None or not token.invalidated:
                continue
            report.likes_examined += 1
            if user_id is None or target_id is None:
                continue
            try:
                removed = self._platform.remove_like(target_id, user_id)
            except SocialNetworkError:
                continue
            if removed:
                report.likes_removed += 1
                touched.add(target_id)
        report.posts_touched = len(touched)
        return report
