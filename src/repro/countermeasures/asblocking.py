"""§6.4 — AS-level blocking for networks that defeat per-IP limits.

hublaa.me rotated >6,000 addresses, keeping each under the IP limits; all
of them sat inside two bulletproof-hosting ASes.  Blocking those ASes —
*only* for the susceptible applications — stops the abuse while capping
collateral damage.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set

from repro.graphapi.log import RequestLog
from repro.graphapi.ratelimit import RateLimitPolicy
from repro.netsim.asn import AsRegistry


def identify_abusive_asns(log: RequestLog, as_registry: AsRegistry,
                          min_ips: int = 50, min_share: float = 0.05,
                          since: Optional[int] = None) -> List[int]:
    """ASes whose like traffic fans out across many source IPs.

    ``min_ips`` is the discriminator between "IP rate limits suffice"
    (few addresses, already dead) and "the network rotates a large pool
    inside this AS" (the hublaa.me case); ``min_share`` requires the AS
    to carry a meaningful share of all abusive like traffic in the
    window, which keeps the threshold independent of simulation scale.
    """
    if not 0 < min_share <= 1:
        raise ValueError(f"min_share must be in (0, 1], got {min_share}")
    ips_by_asn: Dict[int, Set[str]] = defaultdict(set)
    likes_by_asn: Dict[int, int] = defaultdict(int)
    total = 0
    ips, asns = log.like_columns(("source_ip", "asn"), since=since)
    for source_ip, asn in zip(ips, asns):
        if source_ip is None:
            continue
        if asn is None:
            asn = as_registry.asn_of(source_ip)
        if asn is None:
            continue
        ips_by_asn[asn].add(source_ip)
        likes_by_asn[asn] += 1
        total += 1
    if not total:
        return []
    return sorted(
        asn for asn in likes_by_asn
        if len(ips_by_asn[asn]) >= min_ips
        and likes_by_asn[asn] / total >= min_share
    )


def block_asns_for_apps(policy: RateLimitPolicy, asns: Iterable[int],
                        app_ids: Iterable[str]) -> int:
    """Block ``asns`` for each protected application; returns the number
    of (app, AS) block entries installed."""
    installed = 0
    asns = list(asns)
    for app_id in app_ids:
        for asn in asns:
            policy.block_as_for_app(app_id, asn)
            installed += 1
    return installed
