"""§6.1 — access-token rate limiting.

Facebook already rate limits per-token activity; collusion traffic "slips
under the current rate limit" because pool sampling keeps per-token usage
tiny.  The countermeasure reduces the limit by more than an order of
magnitude; reducing it further risks false positives, so the paper stops
there.
"""

from __future__ import annotations

from repro.graphapi.ratelimit import (
    DEFAULT_TOKEN_ACTIONS_PER_DAY,
    REDUCED_TOKEN_ACTIONS_PER_DAY,
    RateLimitPolicy,
)


def apply_reduced_token_limit(policy: RateLimitPolicy,
                              limit: int = REDUCED_TOKEN_ACTIONS_PER_DAY) -> int:
    """Drop the per-token daily action budget; returns the new limit."""
    if limit <= 0:
        raise ValueError(f"limit must be positive, got {limit}")
    if limit >= policy.token_actions_per_day:
        raise ValueError(
            f"reduction expected: {limit} >= current "
            f"{policy.token_actions_per_day}"
        )
    policy.token_actions_per_day = limit
    return limit


def restore_default_token_limit(policy: RateLimitPolicy) -> int:
    """Put the baseline budget back (used by ablations/tests)."""
    policy.token_actions_per_day = DEFAULT_TOKEN_ACTIONS_PER_DAY
    return policy.token_actions_per_day
