"""The blunt countermeasures the paper considered and rejected (§6).

Two interventions would stop collusion networks instantly:

* **suspending the exploited applications** — "relatively simple to
  implement; however, it will negatively impact their millions of
  legitimate users";
* **mandating the application secret** for publish actions — kills
  leaked-token abuse outright, but "many Facebook applications solely
  rely on client-side operations", so it "would adversely impact
  legitimate use cases".

This module implements both so the tradeoff can be *measured*: apply
one, then watch organic app users fail alongside the collusion network.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BluntImpact:
    """What one blunt intervention did."""

    app_id: str
    intervention: str
    tokens_invalidated: int


def suspend_application(world, app_id: str) -> BluntImpact:
    """Suspend an application: every live token dies and the login flows
    are disabled, so neither abusers nor legitimate users can act."""
    app = world.apps.get(app_id)
    killed = world.tokens.invalidate_many(
        (t.token for t in world.tokens.live_tokens_for_app(app_id)),
        reason="application suspended")
    app.security.client_side_flow_enabled = False
    # With the secret rotated to an unusable sentinel, the server-side
    # flow cannot authenticate either: the app is dead.
    app.secret = "__suspended__"
    return BluntImpact(app_id=app_id, intervention="suspend",
                       tokens_invalidated=killed)


def mandate_app_secret(world, app_id: str) -> BluntImpact:
    """Flip the Fig. 2b switch: Graph API calls now require the
    appsecret_proof.

    Existing tokens stay alive, but any caller that cannot compute the
    HMAC proof — collusion networks holding bare leaked tokens *and*
    purely client-side legitimate apps — loses write access.
    """
    app = world.apps.get(app_id)
    app.security.require_app_secret = True
    return BluntImpact(app_id=app_id, intervention="mandate-secret",
                       tokens_invalidated=0)


def measure_collateral(world, users, attempts_per_user: int = 1) -> float:
    """Fraction of organic users whose app writes now fail.

    ``users`` is an iterable of :class:`~repro.workloads.organic.OrganicUser`;
    each tries a like through their token exactly as their app's
    client-side code would (no appsecret_proof).
    """
    from repro.graphapi.errors import GraphApiError
    from repro.oauth.errors import InvalidTokenError

    users = list(users)
    if not users:
        return 0.0
    broken = 0
    for user in users:
        failed = False
        for i in range(attempts_per_user):
            target = world.platform.create_post(
                user.account_id, f"collateral probe {i}")
            try:
                world.api.like_post(user.token, target.post_id,
                                    source_ip=user.home_ip)
            except (GraphApiError, InvalidTokenError):
                failed = True
                break
        if failed:
            broken += 1
    return broken / len(users)
