"""Per-network sharding of the countermeasure campaign's day execution.

The campaign's in-day workload — honeypot like deliveries and the bulk
background-serving charge waves — is partitioned *by collusion network*
and executed in forked worker processes, one per shard, with the
children's state merged back deterministically at the day boundary.
Day-end work (timeline crawls, interventions, clustering, replenishment)
stays in the parent, where it sees exactly the merged state a serial run
would have produced.

Sharding is only sound when the shards cannot observe each other's
mid-day mutations, so a :func:`plan_shards` pass first partitions the
networks into *components* by shared mutable state and certifies the
plan:

* networks that share an OAuth application are merged into one
  component — shared app means shared (or shareable) access tokens,
  hence shared per-token rate-limit windows.  The paper's measured
  ecosystem reproduces exactly this coupling: cross-network membership
  overlap (§4, Table 3) puts the two focal Fig. 5 networks on the same
  app with hundreds of shared tokens, so the default campaign plans to
  a *single* component and runs serially.  Sharding only engages for
  app-disjoint network sets;
* networks that share live token strings or server IPs are merged (the
  token/IP sliding windows are keyed by those strings);
* outgoing background activity (``outgoing_per_hour > 0``) disables
  sharding entirely: that path allocates post ids from the global
  :class:`~repro.sim.ids.IdAllocator` and draws members from the shared
  :class:`~repro.collusion.network.MemberDirectory` stream mid-day, and
  both sequences are defined by the global event interleaving.

An active fault plan is *not* a blocker: fault decisions are keyed
per-subject hashes (see :mod:`repro.faults.plan`), so each child
reproduces exactly the draws its own tokens and networks would have
seen serially, and ships its draw-counter/tally deltas (plus any token
invalidations it performed) home in the day delta.

An ineligible plan is not an error — the campaign simply runs the
serial path and reports why, so ``shards > 1`` is always byte-identical
to ``shards = 1`` (see tests/test_sharded_campaign.py).

Worker supervision: children are run under a :class:`ShardSupervisor`
that watches each fork with a wall-clock deadline.  A child that dies
(crash-fault SIGKILL, OOM-kill), hangs past the deadline, or ships a
truncated/unreadable delta is *quarantined*: its failure is recorded,
and the parent deterministically re-executes the component's
pre-planned :class:`DayEvent` slice inline — mutating its own state
directly, exactly as the serial path would — so the merged day remains
byte-identical to the serial oracle no matter how the child died.

Merge protocol, per day: the parent first creates the day's honeypot
posts in global event order (pinning the id-allocator sequence), then
forks one child per component.  Each child executes its component's
events in (timestamp, seq) order against its copy-on-write world and
ships home a :class:`ShardDayDelta`: request-log rows and platform
activity records tagged by event, the component's limiter windows,
per-network object state (including the network RNG), honeypot post
likes and charge-counter deltas.  The parent interleaves all children's
log/activity segments by global event order — restoring exactly the
rows a serial run appends — and installs the disjoint state deltas.

On this container the executor is about parallel *safety*, not speed:
with one CPU core the forked children run sequentially, so a sharded
day costs slightly more than a serial one (fork + pickle).  The value
is the certified determinism contract and the measured conflict report.
"""

from __future__ import annotations

import os
import pickle
import select
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sanitizer.delta import (
    SanitizerDelta,
    capture_delta as capture_san_delta,
    delta_pieces as san_delta_pieces,
    merge_pieces as san_merge_pieces,
)
from repro.sanitizer.trace import SANITIZER
from repro.sim.clock import DAY
from repro.telemetry.delta import TelemetryDelta, capture_delta, merge_delta
from repro.telemetry.registry import TELEMETRY
from repro.telemetry.tracing import TRACER


@dataclass(frozen=True)
class DayEvent:
    """One planned in-day campaign action.

    ``seq`` mirrors the scheduler's submission tie-break: executing a
    day's events in ``(when, seq)`` order reproduces the serial
    trajectory exactly.  ``kind`` is ``"request"`` (honeypot like
    request), ``"outgoing"`` (background use of the honeypot token) or
    ``"serving"`` (bulk background charge waves); ``count`` only
    matters for serving events.
    """

    seq: int
    when: int
    kind: str
    domain: str
    count: int = 1


@dataclass(frozen=True)
class ShardConflict:
    """Why two networks were merged into one component."""

    a: str
    b: str
    shared_app: Optional[str] = None
    shared_tokens: int = 0
    shared_ips: int = 0

    def describe(self) -> str:
        parts = []
        if self.shared_app is not None:
            parts.append(f"app {self.shared_app}")
        if self.shared_tokens:
            parts.append(f"{self.shared_tokens} tokens")
        if self.shared_ips:
            parts.append(f"{self.shared_ips} IPs")
        return f"{self.a} <-> {self.b}: shared {', '.join(parts)}"


@dataclass
class ShardPlan:
    """The certified partition of campaign networks into shards."""

    components: List[Tuple[str, ...]]
    conflicts: List[ShardConflict] = field(default_factory=list)
    #: Reasons the plan cannot execute sharded (empty when eligible).
    blockers: List[str] = field(default_factory=list)

    @property
    def eligible(self) -> bool:
        return not self.blockers and len(self.components) > 1

    @property
    def effective_shards(self) -> int:
        return len(self.components) if self.eligible else 1

    def describe(self) -> str:
        lines = [f"shard plan: {len(self.components)} component(s), "
                 f"{'eligible' if self.eligible else 'serial fallback'}"]
        for component in self.components:
            lines.append("  - " + ", ".join(component))
        for conflict in self.conflicts:
            lines.append("  conflict: " + conflict.describe())
        for blocker in self.blockers:
            lines.append("  blocked: " + blocker)
        return "\n".join(lines)


def plan_shards(networks: Dict[str, object], *,
                outgoing_per_hour: float,
                requested_shards: int = 2) -> ShardPlan:
    """Partition ``networks`` into independently executable components.

    Networks sharing an app, a live token string, or a server IP are
    placed in one component (their rate-limit windows alias).  The
    returned plan carries the conflict evidence and any blockers that
    force the serial path regardless of the partition.
    """
    domains = list(networks)
    parent: Dict[str, str] = {d: d for d in domains}

    def find(d: str) -> str:
        while parent[d] != d:
            parent[d] = parent[parent[d]]
            d = parent[d]
        return d

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    tokens = {d: frozenset(networks[d].token_db.values()) for d in domains}
    ips = {d: frozenset(networks[d].ip_pool.addresses) for d in domains}
    apps = {d: networks[d].profile.app_id for d in domains}
    conflicts: List[ShardConflict] = []
    for i, a in enumerate(domains):
        for b in domains[i + 1:]:
            shared_app = apps[a] if apps[a] == apps[b] else None
            shared_tokens = len(tokens[a] & tokens[b])
            shared_ips = len(ips[a] & ips[b])
            if shared_app or shared_tokens or shared_ips:
                conflicts.append(ShardConflict(
                    a=a, b=b, shared_app=shared_app,
                    shared_tokens=shared_tokens, shared_ips=shared_ips))
                union(a, b)

    grouped: Dict[str, List[str]] = {}
    for d in domains:
        grouped.setdefault(find(d), []).append(d)
    components = [tuple(members) for members in grouped.values()]
    components.sort(key=lambda c: c[0])

    blockers: List[str] = []
    if requested_shards <= 1:
        blockers.append("sharding not requested (shards <= 1)")
    if len(components) <= 1:
        blockers.append(
            "all networks fall in one component (shared app/token/IP "
            "state; the paper's cross-network overlap makes this the "
            "default ecosystem's shape)")
    if outgoing_per_hour > 0:
        blockers.append("outgoing background activity allocates global "
                        "post ids and draws from the shared member "
                        "directory mid-day")
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
        blockers.append("fork unavailable on this platform")
    return ShardPlan(components=components, conflicts=conflicts,
                     blockers=blockers)


@dataclass
class ShardDayDelta:
    """Everything one shard child mutated during one campaign day.

    ``rows`` / ``activity`` hold the child's appended request-log rows
    (as exported tuples) and platform activity records; ``segments``
    maps them back to the originating events as
    ``(seq, when, row_lo, row_hi, act_lo, act_hi)`` slices so the
    parent can interleave multiple children in global event order.
    """

    domains: Tuple[str, ...]
    rows: list
    activity: list
    segments: List[Tuple[int, int, int, int, int, int]]
    windows: dict
    network_states: Dict[str, dict]
    #: Per-domain member drops in execution order; replayed onto the
    #: parent's own ``dead_members`` sets (see
    #: CollusionNetwork._SHARD_SKIP_FIELDS for why the set itself does
    #: not cross the process boundary).
    drop_journals: Dict[str, List[str]]
    post_likes: Dict[str, list]
    charge_delta: Dict[str, int]
    likes_delivered: Dict[str, int]
    #: FaultInjector.export_delta output (draw counters, fault tallies,
    #: token invalidations to replay) — ``None`` when no plan is active.
    fault_state: Optional[dict] = None
    #: Metric increments the child recorded during the component —
    #: ``None`` when telemetry is disabled or the component was
    #: re-executed inline (the parent's registry already has them).
    telemetry: Optional[TelemetryDelta] = None
    #: Shadow-trace events the component's execution captured, sliced
    #: per event so the parent can replay all components' slices in
    #: global ``(when, seq)`` order — ``None`` when the sanitizer is
    #: disabled.  Unlike ``telemetry``, an inline re-execution ships
    #: this too: the parent records in capture mode for the whole
    #: sharded day, so even its own executions must be replayed in
    #: merged order rather than applied at execution order.
    sanitizer: Optional[SanitizerDelta] = None


def _execute_component(campaign, component: Sequence[str], events,
                       request_posts: Dict[int, str],
                       crash_after: Optional[int] = None) -> ShardDayDelta:
    """Run one component's day inside the forked child.

    ``crash_after`` is the child-crash fault decision shipped in from
    the parent: after executing that many events the child SIGKILLs
    itself, leaving the supervisor to recover the component.
    """
    world = campaign.world
    api = world.api
    log = api.log
    platform = world.platform
    row0 = len(log)
    charge_before = dict(api.charge_counters)
    telemetry_before = (TELEMETRY.export_state()
                        if TELEMETRY.enabled else None)
    injector = api.faults
    fault_snapshot = injector.snapshot() if injector is not None else None
    sanitizing = SANITIZER.enabled
    # The parent began capture before the pre-pass, so the fork
    # inherited an active capture list; the child's own events start at
    # this mark.
    san_base = SANITIZER.begin_capture() if sanitizing else 0
    san_segments: List[Tuple[int, int, int, int]] = []
    san_lo = san_base
    journal = platform.activity_log.start_journal()
    likes_delivered = {domain: 0 for domain in component}
    # Limiter keys this component owns: its networks' token strings
    # (snapshotted both before and after the day, so windows of tokens
    # dropped mid-day still ship home) and their server IPs.
    owned_tokens = set()
    owned_ips = set()
    for domain in component:
        network = campaign.networks[domain]
        owned_tokens.update(network.token_db.values())
        owned_ips.update(network.ip_pool.addresses)
        network._shard_drop_journal = []
    segments: List[Tuple[int, int, int, int, int, int]] = []
    clock = world.clock
    executed = 0
    for event in events:
        if crash_after is not None and executed >= crash_after:
            os.kill(os.getpid(), signal.SIGKILL)
        # Children replay their slice of the day from its start, which
        # may sit before the parent's post-creation pre-pass clock;
        # within the slice timestamps are non-decreasing.  The direct
        # assignment bypasses advance_to, so the sanitizer's epoch day
        # is pinned explicitly.
        clock._now = event.when
        if sanitizing:
            SANITIZER.set_day(event.when // DAY)
            san_lo = SANITIZER.capture_mark()
        row_lo = len(log) - row0
        act_lo = len(journal)
        network = campaign.networks[event.domain]
        if event.kind == "request":
            report = network.submit_like_request(
                campaign.honeypots[event.domain].account_id,
                request_posts[event.seq])
            likes_delivered[event.domain] += report.delivered
        elif event.kind == "serving":
            network.serve_background_requests(event.count)
        else:  # pragma: no cover - excluded by plan eligibility
            raise RuntimeError(f"unshardable event kind {event.kind!r}")
        segments.append((event.seq, event.when, row_lo, len(log) - row0,
                         act_lo, len(journal)))
        if sanitizing:
            san_segments.append((event.seq, event.when, san_lo,
                                 SANITIZER.capture_mark()))
        executed += 1
    platform.activity_log.stop_journal()
    for domain in component:
        owned_tokens.update(campaign.networks[domain].token_db.values())
    charge_delta = {
        key: value - charge_before.get(key, 0)
        for key, value in api.charge_counters.items()
        if value != charge_before.get(key, 0)}
    post_likes = {}
    for seq, post_id in request_posts.items():
        likes = platform.posts[post_id].likes
        if likes:
            post_likes[post_id] = list(likes)
    return ShardDayDelta(
        domains=tuple(component),
        rows=log.export_rows(row0),
        activity=journal,
        segments=segments,
        windows=api.enforcer.export_shard_windows(owned_tokens, owned_ips),
        network_states={domain: campaign.networks[domain].export_state()
                        for domain in component},
        drop_journals={domain: campaign.networks[domain]._shard_drop_journal
                       for domain in component},
        post_likes=post_likes,
        charge_delta=charge_delta,
        likes_delivered=likes_delivered,
        fault_state=(injector.export_delta(fault_snapshot)
                     if injector is not None else None),
        telemetry=(capture_delta(TELEMETRY, telemetry_before)
                   if telemetry_before is not None else None),
        sanitizer=capture_san_delta(SANITIZER, san_base, san_segments),
    )


@dataclass(frozen=True)
class ShardWorkerFailure:
    """One quarantined shard child and why it was quarantined."""

    day: int
    component: Tuple[str, ...]
    reason: str

    def describe(self) -> str:
        return (f"day {self.day}: shard child for "
                f"{'+'.join(self.component)} {self.reason}; "
                f"re-executed serially")


class ShardSupervisor:
    """Runs shard children under a crash/hang watch.

    A child that exits abnormally (e.g. the ``child_crash`` fault's
    SIGKILL), hangs past ``child_timeout`` wall-clock seconds, or ships
    an unreadable delta is quarantined: the failure is recorded in
    :attr:`failures` and ``run_component`` returns ``None``, telling
    the caller to re-execute the component's pre-planned events
    serially in the parent.  The timeout is real wall-clock time — it
    bounds a wedged *process*, not simulated time.
    """

    def __init__(self, child_timeout: float = 600.0) -> None:
        self.child_timeout = child_timeout
        self.failures: List[ShardWorkerFailure] = []

    def run_component(self, campaign, component, events, request_posts,
                      day: int,
                      crash_after: Optional[int] = None,
                      ) -> Optional[ShardDayDelta]:
        """Fork, execute the component's day, ship the delta home."""
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            status = 1
            try:
                os.close(read_fd)
                # Only the parent may write the shared WAL: the child
                # exports its rows in the delta instead.
                campaign.world.api.log.detach_journal()
                delta = _execute_component(campaign, component, events,
                                           request_posts,
                                           crash_after=crash_after)
                with os.fdopen(write_fd, "wb") as sink:
                    pickle.dump(delta, sink,  # reprolint: disable=RL402 — the inherited fd pipe is the delta's one sanctioned channel home
                                protocol=pickle.HIGHEST_PROTOCOL)
                status = 0
            finally:
                os._exit(status)
        os.close(write_fd)
        payload, timed_out = self._drain(read_fd, pid)
        _, exit_status = os.waitpid(pid, 0)
        reason = None
        if timed_out:
            reason = (f"hung past the {self.child_timeout:.0f}s deadline "
                      f"and was killed")
        elif exit_status != 0:
            code = os.waitstatus_to_exitcode(exit_status)
            reason = (f"died on signal {-code}" if code < 0
                      else f"exited with status {code}")
        elif not payload:
            reason = "exited cleanly but shipped no delta"
        if reason is None:
            try:
                return pickle.loads(payload)
            except Exception as exc:  # noqa: BLE001 - quarantine any bad payload
                reason = f"shipped an unreadable delta ({exc!r})"
        self.failures.append(ShardWorkerFailure(
            day=day, component=tuple(component), reason=reason))
        return None

    def _drain(self, read_fd: int, pid: int) -> Tuple[bytes, bool]:
        """Read the child's pipe to EOF under the wall-clock deadline.

        Supervising a real forked process: the hang deadline must be
        wall-clock, not sim time, hence the RL001 pragmas.
        """
        deadline = time.monotonic() + self.child_timeout  # reprolint: disable=RL001 — real child supervision
        chunks: List[bytes] = []
        try:
            while True:
                remaining = deadline - time.monotonic()  # reprolint: disable=RL001 — real child supervision
                if remaining <= 0:
                    os.kill(pid, signal.SIGKILL)
                    return b"", True
                ready, _, _ = select.select([read_fd], [], [], remaining)
                if not ready:
                    continue
                data = os.read(read_fd, 1 << 20)
                if not data:
                    return b"".join(chunks), False
                chunks.append(data)
        finally:
            os.close(read_fd)


def _reexecute_inline(campaign, component, events,
                      request_posts: Dict[int, str]) -> ShardDayDelta:
    """Serially re-execute a quarantined component in the parent.

    The events mutate the parent's own limiter windows, network
    objects, token store, posts and charge counters directly — exactly
    like the serial path — so the returned delta is *reduced*: it
    carries only the log rows and activity records (rolled back here,
    re-applied by the merge in global event order) plus the delivered
    counts.  Everything else is already in place.
    """
    world = campaign.world
    api = world.api
    log = api.log
    platform = world.platform
    row0 = len(log)
    sanitizing = SANITIZER.enabled
    # The parent is still in the sharded day's capture mode, so the
    # re-execution's trace events land on the capture list exactly like
    # a child's would; slicing them per event lets the merge replay
    # them in global order alongside the surviving children's.
    san_base = SANITIZER.capture_mark() if sanitizing else 0
    san_segments: List[Tuple[int, int, int, int]] = []
    san_lo = san_base
    journal = platform.activity_log.start_journal()
    likes_delivered = {domain: 0 for domain in component}
    segments: List[Tuple[int, int, int, int, int, int]] = []
    clock = world.clock
    for event in events:
        clock._now = event.when
        if sanitizing:
            SANITIZER.set_day(event.when // DAY)
            san_lo = SANITIZER.capture_mark()
        row_lo = len(log) - row0
        act_lo = len(journal)
        network = campaign.networks[event.domain]
        if event.kind == "request":
            report = network.submit_like_request(
                campaign.honeypots[event.domain].account_id,
                request_posts[event.seq])
            likes_delivered[event.domain] += report.delivered
        elif event.kind == "serving":
            network.serve_background_requests(event.count)
        else:  # pragma: no cover - excluded by plan eligibility
            raise RuntimeError(f"unshardable event kind {event.kind!r}")
        segments.append((event.seq, event.when, row_lo, len(log) - row0,
                         act_lo, len(journal)))
        if sanitizing:
            san_segments.append((event.seq, event.when, san_lo,
                                 SANITIZER.capture_mark()))
    platform.activity_log.stop_journal()
    rows = log.export_rows(row0)
    log.truncate(row0)
    platform.activity_log.rollback(journal)
    return ShardDayDelta(
        domains=tuple(component),
        rows=rows,
        activity=journal,
        segments=segments,
        windows={},
        network_states={},
        drop_journals={domain: [] for domain in component},
        post_likes={},
        charge_delta={},
        likes_delivered=likes_delivered,
        fault_state=None,
        telemetry=None,
        sanitizer=capture_san_delta(SANITIZER, san_base, san_segments),
    )


def run_sharded_day(campaign, plan: ShardPlan, events, day_start: int,
                    likes_today: Dict[str, int],
                    posts_today: Dict[str, int]) -> None:
    """Execute one campaign day under ``plan`` and merge the results.

    Equivalent, state-for-state, to scheduling ``events`` on the world
    scheduler and running them serially (the ``shards = 1`` path).
    Children run under the campaign's :class:`ShardSupervisor`; a
    quarantined component is re-executed inline before the merge.
    """
    world = campaign.world
    api = world.api
    platform = world.platform
    day = day_start // DAY
    # The WAL is suspended for the whole sharded day: rows are journaled
    # once, at the merge below, in exactly the interleaved order the
    # serial path would have appended them.
    wal = api.log.detach_journal()

    # The sanitizer records the whole sharded day in capture mode: the
    # pre-pass and every component's execution append replayable event
    # slices instead of advancing stream chains, and the merge below
    # replays all slices in global (when, seq) order — reproducing the
    # per-stream sequences a serial day applies directly.
    sanitizing = SANITIZER.enabled
    pre_segments: List[Tuple[int, int, int, int]] = []
    san_lo = 0
    if sanitizing:
        SANITIZER.record_shard(
            f"fork day={day} components={len(plan.components)}")
        san_base = SANITIZER.begin_capture()

    # Pre-pass: create the day's honeypot posts in global event order so
    # the id-allocator sequence matches the serial run exactly.  Request
    # posts are the only in-day allocations (plan eligibility excludes
    # the outgoing path).
    request_posts: Dict[int, str] = {}
    for event in sorted((e for e in events if e.kind == "request"),
                        key=lambda e: (e.when, e.seq)):
        world.clock.advance_to(event.when)
        if sanitizing:
            san_lo = SANITIZER.capture_mark()
        request_posts[event.seq] = campaign._create_request_post(
            campaign.honeypots[event.domain])
        posts_today[event.domain] += 1
        if sanitizing:
            pre_segments.append((event.seq, event.when, san_lo,
                                 SANITIZER.capture_mark()))
    pre_delta = (capture_san_delta(SANITIZER, san_base, pre_segments)
                 if sanitizing else None)

    component_of = {domain: index
                    for index, component in enumerate(plan.components)
                    for domain in component}
    by_component: Dict[int, list] = {}
    for event in events:
        by_component.setdefault(component_of[event.domain], []).append(event)

    supervisor = campaign.shard_supervisor
    injector = api.faults
    deltas: List[ShardDayDelta] = []
    for index, component in enumerate(plan.components):
        component_events = sorted(by_component.get(index, ()),
                                  key=lambda e: (e.when, e.seq))
        if not component_events:
            continue
        component_posts = {e.seq: request_posts[e.seq]
                           for e in component_events
                           if e.kind == "request"}
        # The crash fault is decided in the parent (so the tally and
        # draws survive the child's death) and shipped into the child.
        crash_after = None
        if injector is not None:
            crash_after = injector.decide_child_crash(
                day, component[0], len(component_events))
        span = TRACER.begin("shard_component", domains="+".join(component),
                            events=len(component_events))
        if TELEMETRY.enabled:
            TELEMETRY.count("shard_components_total")
        delta = supervisor.run_component(
            campaign, component, component_events, component_posts, day,
            crash_after=crash_after)
        if delta is not None and tuple(delta.domains) != tuple(component):
            # A delta for the wrong component means the pipe carried a
            # stale or crossed payload; quarantine it like an
            # unreadable one rather than merging foreign state.
            supervisor.failures.append(ShardWorkerFailure(
                day=day, component=tuple(component),
                reason=f"shipped a delta for component "
                       f"{tuple(delta.domains)!r}"))
            delta = None
        if delta is None:
            if TELEMETRY.enabled:
                TELEMETRY.count("shard_quarantines_total")
            delta = _reexecute_inline(campaign, component,
                                      component_events, component_posts)
        TRACER.end(span)
        deltas.append(delta)

    if sanitizing:
        # Leave capture mode before the WAL reattaches: the merge-time
        # journal appends below must record directly (the serial day's
        # journal stream is exactly this frame sequence).  Events the
        # sharded path captured outside any segment (supervision,
        # tracing, clock reads between components) are discarded with
        # the capture list — a serial day never records them.  Stable
        # sort: a pre-pass piece precedes its event's execution piece,
        # matching the serial create-then-submit order.
        SANITIZER.end_capture()
        pieces = list(san_delta_pieces(pre_delta))
        for delta in deltas:
            pieces.extend(san_delta_pieces(delta.sanitizer))
        san_merge_pieces(SANITIZER, pieces)
        SANITIZER.record_shard(f"merge day={day} deltas={len(deltas)}")

    # Merge: interleave every child's log/activity segments by global
    # event order, then install the disjoint state deltas.
    if wal is not None:
        api.log.attach_journal(wal)
    stream = []
    for delta in deltas:
        for seq, when, row_lo, row_hi, act_lo, act_hi in delta.segments:
            stream.append((when, seq, delta, row_lo, row_hi, act_lo,
                           act_hi))
    stream.sort(key=lambda item: (item[0], item[1]))
    log = api.log
    record_activity = platform.activity_log.record
    for when, seq, delta, row_lo, row_hi, act_lo, act_hi in stream:
        if row_hi > row_lo:
            log.append_exported(delta.rows[row_lo:row_hi])
        for record in delta.activity[act_lo:act_hi]:
            record_activity(record)
    for delta in deltas:
        # An inline re-execution ships a reduced delta: its window /
        # network / charge state already landed on the parent's own
        # objects, so only the non-empty pieces are installed.
        if delta.windows:
            api.enforcer.install_shard_windows(delta.windows)
        for domain, state in delta.network_states.items():
            campaign.networks[domain].adopt_state(
                state, dropped=delta.drop_journals[domain])
        for post_id, likes in delta.post_likes.items():
            post = platform.posts[post_id]
            for like in likes:
                post.add_like(like)
        for key, value in delta.charge_delta.items():
            api.charge_counters[key] = (
                api.charge_counters.get(key, 0) + value)
        for domain, delivered in delta.likes_delivered.items():
            likes_today[domain] += delivered
        if delta.fault_state is not None and injector is not None:
            injector.apply_delta(delta.fault_state)
        if delta.telemetry is not None:
            merge_delta(TELEMETRY, delta.telemetry)
    world.clock.advance_to(day_start + DAY - 1)
