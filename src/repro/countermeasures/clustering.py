"""§6.3 — clustering-based token invalidation.

Runs the SynchroTrap detector over the recent Graph API like log and
invalidates the tokens of every flagged account.  The paper found "no
major impact": collusion networks never reuse the same account subsets
and spread per-token activity, so almost no colluding pair crosses the
similarity threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.countermeasures.invalidation import TokenInvalidator
from repro.detection.actions import actions_from_request_log
from repro.detection.synchrotrap import DetectionResult, SynchroTrap
from repro.graphapi.log import RequestLog
from repro.sim.clock import DAY


@dataclass
class ClusteringOutcome:
    """One clustering pass: what was detected and what was invalidated."""

    detection: DetectionResult
    tokens_invalidated: int


class ClusteringCountermeasure:
    """Daily SynchroTrap pass over a sliding window of the request log."""

    def __init__(self, detector: Optional[SynchroTrap] = None,
                 window_days: int = 7) -> None:
        self.detector = detector or SynchroTrap()
        self.window_days = window_days

    def run(self, log: RequestLog, invalidator: TokenInvalidator,
            now: int) -> ClusteringOutcome:
        """Detect over the last ``window_days`` and invalidate hits."""
        since = max(0, now - self.window_days * DAY)
        actions = actions_from_request_log(log, since=since, until=now)
        detection = self.detector.detect(actions)
        killed = invalidator.invalidate_specific(
            detection.flagged_accounts, reason="synchrotrap-cluster")
        return ClusteringOutcome(detection=detection,
                                 tokens_invalidated=killed)
