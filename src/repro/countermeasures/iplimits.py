"""§6.4 — per-IP like-request limits and the Fig. 8 source analyses.

The limits apply only to like requests made through the Graph API with
access tokens, so ordinary browser traffic is untouched; networks that
funnel their whole delivery through a handful of servers (every network
except hublaa.me) die immediately.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.graphapi.log import RequestLog
from repro.graphapi.ratelimit import RateLimitPolicy
from repro.netsim.asn import AsRegistry
from repro.sim.clock import DAY

#: Defaults tuned to the scale of abuse: thousands of likes/day from one
#: address is far beyond any legitimate token-bearing client.
DEFAULT_IP_DAILY_LIKE_LIMIT = 100
DEFAULT_IP_WEEKLY_LIKE_LIMIT = 400


def apply_ip_like_limits(policy: RateLimitPolicy,
                         daily: int = DEFAULT_IP_DAILY_LIKE_LIMIT,
                         weekly: int = DEFAULT_IP_WEEKLY_LIKE_LIMIT) -> None:
    """Turn on the daily + weekly per-IP like limits."""
    if daily <= 0 or weekly <= 0:
        raise ValueError("limits must be positive")
    if weekly < daily:
        raise ValueError("weekly limit cannot be below the daily limit")
    policy.ip_likes_per_day = daily
    policy.ip_likes_per_week = weekly


@dataclass(frozen=True)
class SourceStats:
    """Fig. 8 scatter point: one source (IP or AS)."""

    source: str
    days_observed: int
    total_likes: int


def ip_observation_stats(log: RequestLog,
                         since: Optional[int] = None) -> List[SourceStats]:
    """Per-IP (days observed, likes) over successful like requests."""
    days: Dict[str, Set[int]] = defaultdict(set)
    likes: Dict[str, int] = defaultdict(int)
    timestamps, ips = log.like_columns(("timestamp", "source_ip"),
                                       since=since)
    for timestamp, source_ip in zip(timestamps, ips):
        if source_ip is None:
            continue
        days[source_ip].add(timestamp // DAY)
        likes[source_ip] += 1
    return [SourceStats(ip, len(days[ip]), likes[ip])
            for ip in sorted(likes, key=likes.get, reverse=True)]


def as_observation_stats(log: RequestLog, as_registry: AsRegistry,
                         since: Optional[int] = None) -> List[SourceStats]:
    """Per-AS (days observed, likes) over successful like requests."""
    days: Dict[int, Set[int]] = defaultdict(set)
    likes: Dict[int, int] = defaultdict(int)
    timestamps, ips, asns = log.like_columns(
        ("timestamp", "source_ip", "asn"), since=since)
    for timestamp, source_ip, asn in zip(timestamps, ips, asns):
        if asn is None and source_ip is not None:
            asn = as_registry.asn_of(source_ip)
        if asn is None:
            continue
        days[asn].add(timestamp // DAY)
        likes[asn] += 1
    return [SourceStats(f"AS{asn}", len(days[asn]), likes[asn])
            for asn in sorted(likes, key=likes.get, reverse=True)]


def heavy_hitter_ips(log: RequestLog, min_likes: int,
                     since: Optional[int] = None) -> List[str]:
    """IPs whose like volume exceeds ``min_likes`` (rate-limit targets)."""
    return [stats.source for stats in ip_observation_stats(log, since)
            if stats.total_likes >= min_likes]
