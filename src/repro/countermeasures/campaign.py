"""The countermeasure campaign of §6 / Fig. 5.

Re-runs honeypot milking against the focal collusion networks while the
platform escalates through the paper's intervention ladder:

====  ==========================================================
Day   Intervention
====  ==========================================================
1-11  baseline milking (no countermeasures)
12    per-token rate limit reduced by >10x
23    invalidate half of all milked tokens
28    invalidate all milked tokens
29+   invalidate half of newly observed tokens daily
36+   invalidate all newly observed tokens daily
46    daily + weekly per-IP like limits
55+   SynchroTrap clustering-based invalidation
70    AS blocking for susceptible apps
====  ==========================================================

(hublaa.me's site outage on days 45-50 is reproduced as an availability
window.)  Every intervention day is configurable, and each countermeasure
can be disabled independently for ablation studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.collusion.ecosystem import CollusionEcosystem
from repro.collusion.network import CollusionNetwork
from repro.countermeasures.asblocking import (
    block_asns_for_apps,
    identify_abusive_asns,
)
from repro.countermeasures.clustering import (
    ClusteringCountermeasure,
    ClusteringOutcome,
)
from repro.countermeasures.invalidation import TokenInvalidator
from repro.countermeasures.iplimits import apply_ip_like_limits
from repro.countermeasures.ratelimits import apply_reduced_token_limit
from repro.countermeasures.sharding import (
    DayEvent,
    ShardPlan,
    ShardSupervisor,
    plan_shards,
    run_sharded_day,
)
from repro.detection.synchrotrap import SynchroTrap
from repro.honeypot.account import HoneypotAccount, create_honeypot
from repro.honeypot.crawler import TimelineCrawler
from repro.honeypot.ledger import MilkedTokenLedger
from repro.perf import PERF
from repro.sim.clock import DAY, HOUR
from repro.telemetry.registry import TELEMETRY
from repro.telemetry.tracing import TRACER


@dataclass
class CampaignConfig:
    """Knobs of the countermeasure campaign (defaults follow Fig. 5)."""

    days: int = 75
    posts_per_day: int = 10
    networks: Tuple[str, ...] = ("hublaa.me", "official-liker.net")
    # Interventions (1-indexed campaign days, as labelled in Fig. 5).
    rate_limit_day: int = 12
    reduced_token_limit: int = 40
    invalidate_half_day: int = 23
    invalidate_all_day: int = 28
    daily_half_start_day: int = 29
    daily_all_start_day: int = 36
    ip_limit_day: int = 46
    ip_daily_limit: int = 100
    ip_weekly_limit: int = 400
    clustering_start_day: int = 55
    clustering_interval_days: int = 3
    as_block_day: int = 70
    as_block_min_ips: int = 50
    hublaa_outage: Optional[Tuple[int, int]] = (45, 51)
    #: Average background likes/hour the networks perform with each
    #: honeypot token during the campaign (Fig. 7's 5-10/hour band).
    outgoing_per_hour: float = 7.0
    #: Whether the focal networks also serve their bulk anonymous
    #: workload (charge-only path).  Ablations may disable it to study
    #: a single mechanism in isolation.
    background_serving: bool = True
    #: Process-shard the in-day workload by collusion network.  Values
    #: above 1 request sharding; it only engages when
    #: :func:`repro.countermeasures.sharding.plan_shards` certifies the
    #: network set as state-disjoint (the result's ``shard_plan`` says
    #: whether it did, and why not otherwise).  Ineligible plans run the
    #: ordinary serial path, byte-identical to ``shards = 1``.
    shards: int = 1
    # Per-countermeasure switches (for ablations).
    enable_rate_limit: bool = True
    enable_invalidation: bool = True
    enable_ip_limits: bool = True
    enable_clustering: bool = True
    enable_as_block: bool = True

    def __post_init__(self) -> None:
        if self.days <= 0 or self.posts_per_day <= 0:
            raise ValueError("days and posts_per_day must be positive")

    @classmethod
    def compressed(cls, days: int, **overrides) -> "CampaignConfig":
        """The paper's 75-day schedule squeezed into ``days``.

        Intervention days are remapped proportionally and then nudged so
        each stage still fires on its own day (strictly increasing).
        Useful for quick runs and CI; ``days=75`` returns the paper's
        schedule unchanged.
        """
        if days <= 8:
            raise ValueError("need at least 9 days to fit every stage")
        reference = cls()
        ratio = days / reference.days
        stages = ("rate_limit_day", "invalidate_half_day",
                  "invalidate_all_day", "daily_half_start_day",
                  "daily_all_start_day", "ip_limit_day",
                  "clustering_start_day", "as_block_day")
        mapped = {}
        previous = 1
        for name in stages:
            value = max(previous + 1,
                        round(getattr(reference, name) * ratio))
            mapped[name] = value
            previous = value
        if mapped["as_block_day"] >= days:
            raise ValueError(
                f"{days} days cannot fit the full intervention ladder")
        outage = reference.hublaa_outage
        if outage is not None:
            start = max(2, round(outage[0] * ratio))
            mapped["hublaa_outage"] = (start,
                                       max(start + 1,
                                           round(outage[1] * ratio)))
        interval = max(1, round(reference.clustering_interval_days
                                * ratio))
        mapped["clustering_interval_days"] = interval
        mapped.update(overrides)
        return cls(days=days, **mapped)


@dataclass
class NetworkDailySeries:
    """Fig. 5's measured series for one network."""

    domain: str
    posts_per_day: List[int] = field(default_factory=list)
    likes_per_day: List[int] = field(default_factory=list)

    @property
    def avg_likes_per_post(self) -> List[float]:
        return [likes / posts if posts else 0.0
                for likes, posts in zip(self.likes_per_day,
                                        self.posts_per_day)]

    def window_average(self, start_day: int, end_day: int) -> float:
        """Mean avg-likes/post over campaign days [start, end] (1-based,
        inclusive)."""
        values = self.avg_likes_per_post[start_day - 1:end_day]
        return sum(values) / len(values) if values else 0.0


@dataclass
class CampaignResults:
    """Everything the Fig. 5-8 experiments consume."""

    config: CampaignConfig
    start_day: int
    series: Dict[str, NetworkDailySeries]
    honeypots: Dict[str, HoneypotAccount]
    ledger: MilkedTokenLedger
    interventions: List[Tuple[int, str]]
    clustering_outcomes: List[Tuple[int, ClusteringOutcome]]
    tokens_invalidated: int
    #: The certified shard partition, when ``config.shards > 1`` asked
    #: for one (None otherwise).
    shard_plan: Optional[ShardPlan] = None
    #: Human-readable records of quarantined shard children that were
    #: re-executed serially by the supervisor.
    shard_failures: List[str] = field(default_factory=list)
    #: Campaign day a crash-recovery resume restarted from (None for an
    #: uninterrupted run).
    resumed_from_day: Optional[int] = None


class CountermeasureCampaign:
    """Runs the Fig. 5 campaign against a built ecosystem."""

    def __init__(self, world, ecosystem: CollusionEcosystem,
                 config: Optional[CampaignConfig] = None) -> None:
        self.world = world
        self.ecosystem = ecosystem
        self.config = config or CampaignConfig()
        self.rng = world.rng.stream("campaign")
        self.ledger = MilkedTokenLedger()
        self.crawler = TimelineCrawler(world, self.ledger)
        self.invalidator = TokenInvalidator(
            world.tokens, self.ledger, world.rng.stream("invalidation"))
        self.clustering = ClusteringCountermeasure(
            SynchroTrap(max_bucket_actors=100),
            window_days=self.config.clustering_interval_days)
        self.networks: Dict[str, CollusionNetwork] = {}
        self.honeypots: Dict[str, HoneypotAccount] = {}
        self.series: Dict[str, NetworkDailySeries] = {}
        for domain in self.config.networks:
            network = ecosystem.network(domain)
            network.refresh_all_tokens()
            network.replenishment_enabled = True
            network.background_serving_enabled = (
                self.config.background_serving)
            self.networks[domain] = network
            self.honeypots[domain] = create_honeypot(world, network)
            self.series[domain] = NetworkDailySeries(domain=domain)
        self.interventions: List[Tuple[int, str]] = []
        self.clustering_outcomes: List[Tuple[int, ClusteringOutcome]] = []
        self.shard_plan: Optional[ShardPlan] = None
        self.shard_supervisor = ShardSupervisor()
        if self.config.shards > 1:
            self.shard_plan = plan_shards(
                self.networks,
                outgoing_per_hour=self.config.outgoing_per_hour,
                requested_shards=self.config.shards)
        self._start_day = world.clock.day()
        self._campaign_start_ts = world.clock.now()

    # ------------------------------------------------------------------
    def run(self, recovery=None) -> CampaignResults:
        """Run the campaign, optionally under a
        :class:`~repro.countermeasures.recovery.CampaignRecovery` that
        journals rows, checkpoints day boundaries and — on resume —
        fast-forwards past the days already on disk."""
        config = self.config
        self._schedule_outages()
        first_day = 1
        if recovery is not None:
            first_day = recovery.prepare(self)
        for campaign_day in range(first_day, config.days + 1):
            if recovery is not None:
                recovery.begin_day(self, campaign_day)
            self._run_day(campaign_day)
            if recovery is not None:
                recovery.on_day_complete(self, campaign_day)
        if recovery is not None:
            recovery.finish(self)
        return CampaignResults(
            config=config,
            start_day=self._start_day,
            series=self.series,
            honeypots=self.honeypots,
            ledger=self.ledger,
            interventions=self.interventions,
            clustering_outcomes=self.clustering_outcomes,
            tokens_invalidated=self.invalidator.total_invalidated,
            shard_plan=self.shard_plan,
            shard_failures=[failure.describe() for failure
                            in self.shard_supervisor.failures],
            resumed_from_day=(recovery.resumed_from_day
                              if recovery is not None else None),
        )

    # ------------------------------------------------------------------
    def _schedule_outages(self) -> None:
        outage = self.config.hublaa_outage
        if outage and "hublaa.me" in self.networks:
            start_day, end_day = outage
            base = self._campaign_start_ts
            self.networks["hublaa.me"].schedule_outage(
                base + (start_day - 1) * DAY, base + (end_day - 1) * DAY)

    def _run_day(self, campaign_day: int) -> None:
        world = self.world
        day_start = world.clock.now()
        day_span = TRACER.begin("campaign_day", day=campaign_day)
        likes_today = {domain: 0 for domain in self.networks}
        posts_today = {domain: 0 for domain in self.networks}

        events = self._plan_day_events(day_start)
        if self.shard_plan is not None and self.shard_plan.eligible:
            run_sharded_day(self, self.shard_plan, events, day_start,
                            likes_today, posts_today)
        else:
            self._schedule_day_events(events, likes_today, posts_today)
            world.scheduler.run_until(day_start + DAY - 1)

        for honeypot in self.honeypots.values():
            self.crawler.crawl_incoming(honeypot)
        self._apply_interventions(campaign_day)
        for network in self.networks.values():
            network.daily_tick()

        for domain in self.networks:
            self.series[domain].posts_per_day.append(posts_today[domain])
            self.series[domain].likes_per_day.append(likes_today[domain])
        world.clock.advance_to(day_start + DAY)
        if TELEMETRY.enabled:
            self._sample_window_occupancy()
        TRACER.end(day_span)

    def _sample_window_occupancy(self) -> None:
        """Day-end gauges over the limiter windows (parent only; the
        sharded path has already merged the children's window state, so
        serial and sharded runs sample identical occupancy)."""
        occupancy = self.world.api.enforcer.window_occupancy()
        for window in sorted(occupancy):
            keys, events = occupancy[window]
            TELEMETRY.gauge_set("ratelimit_window_keys", keys,
                                window=window)
            TELEMETRY.gauge_set("ratelimit_window_events", events,
                                window=window)

    def _plan_day_events(self, day_start: int) -> List[DayEvent]:
        """Array-plan one day's workload before any of it executes.

        Produces the day's request / outgoing / serving events — with
        their timestamps already drawn — in the exact per-network order
        (and therefore the exact campaign-RNG draw order) the scheduling
        loop used to produce while enqueueing thunks.  ``seq`` mirrors
        the scheduler's submission tie-break, so executing the plan in
        ``(when, seq)`` order is the serial trajectory.
        """
        events: List[DayEvent] = []
        seq = 0
        per_hour = self.config.outgoing_per_hour
        for domain, network in self.networks.items():
            for when in self._request_times(day_start):
                events.append(DayEvent(seq, when, "request", domain))
                seq += 1
            if per_hour > 0:
                for hour in range(24):
                    actions = self._poisson(per_hour)
                    for _ in range(actions):
                        when = (day_start + hour * HOUR
                                + self.rng.randrange(HOUR))
                        events.append(
                            DayEvent(seq, when, "outgoing", domain))
                        seq += 1
            if network.background_serving_enabled:
                total = network.profile.background_requests_per_day
                if total > 0:
                    hourly, remainder = divmod(total, 24)
                    for hour in range(24):
                        count = hourly + (1 if hour < remainder else 0)
                        if count <= 0:
                            continue
                        when = (day_start + hour * HOUR
                                + self.rng.randrange(HOUR))
                        events.append(
                            DayEvent(seq, when, "serving", domain, count))
                        seq += 1
        return events

    def _schedule_day_events(self, events: List[DayEvent],
                             likes_today: Dict[str, int],
                             posts_today: Dict[str, int]) -> None:
        """Enqueue a planned day on the world scheduler (serial path)."""
        at = self.world.scheduler.at
        for event in events:
            domain = event.domain
            network = self.networks[domain]
            honeypot = self.honeypots[domain]
            if event.kind == "request":
                at(event.when,
                   lambda n=network, h=honeypot, d=domain:
                       self._submit_request(n, h, d, likes_today,
                                            posts_today),
                   label=f"cm-request:{domain}")
            elif event.kind == "outgoing":
                at(event.when,
                   lambda n=network, h=honeypot:
                       n.use_member_token_for_background(h.account_id, 1),
                   label=f"cm-outgoing:{domain}")
            else:
                at(event.when,
                   lambda n=network, c=event.count:
                       n.serve_background_requests(c),
                   label=f"cm-serving:{domain}")

    def _request_times(self, day_start: int) -> List[int]:
        """Spread the day's requests across a working window."""
        count = self.config.posts_per_day
        window_start = day_start + 7 * HOUR
        window = 15 * HOUR
        step = window // max(1, count)
        return [window_start + i * step + self.rng.randrange(max(1, step // 2))
                for i in range(count)]

    def _create_request_post(self, honeypot: HoneypotAccount) -> str:
        """Create the honeypot status post one like request targets.

        Split from :meth:`_submit_request` so the sharded day can hoist
        every post creation into the parent's pre-pass (pinning the
        global id-allocator sequence) before the forked shards deliver.
        """
        post = self.world.platform.create_post(
            honeypot.account_id,
            f"campaign status #{len(honeypot.like_post_ids) + 1}")
        honeypot.like_post_ids.append(post.post_id)
        return post.post_id

    def _submit_request(self, network: CollusionNetwork,
                        honeypot: HoneypotAccount, domain: str,
                        likes_today: Dict[str, int],
                        posts_today: Dict[str, int]) -> None:
        post_id = self._create_request_post(honeypot)
        report = network.submit_like_request(honeypot.account_id, post_id)
        posts_today[domain] += 1
        likes_today[domain] += report.delivered

    def _poisson(self, mean: float) -> int:
        limit = math.exp(-mean)
        k, product = 0, self.rng.random()
        while product > limit:
            k += 1
            product *= self.rng.random()
        return k

    # ------------------------------------------------------------------
    # Interventions
    # ------------------------------------------------------------------
    def _apply_interventions(self, campaign_day: int) -> None:
        config = self.config
        abs_day = self.world.clock.day()

        if config.enable_rate_limit and campaign_day == config.rate_limit_day:
            apply_reduced_token_limit(self.world.policy,
                                      config.reduced_token_limit)
            self._note(campaign_day,
                       f"token rate limit -> {config.reduced_token_limit}/day")

        if config.enable_invalidation:
            if campaign_day == config.invalidate_half_day:
                killed = self.invalidator.invalidate_fraction_of_observed(
                    abs_day, fraction=0.5)
                self._note(campaign_day,
                           f"invalidated half of milked tokens ({killed})")
            elif campaign_day == config.invalidate_all_day:
                killed = self.invalidator.invalidate_all_observed(abs_day)
                self._note(campaign_day,
                           f"invalidated all milked tokens ({killed})")
            elif (config.daily_half_start_day <= campaign_day
                  < config.daily_all_start_day):
                killed = self.invalidator.invalidate_new_observations(
                    abs_day, fraction=0.5)
                self._note(campaign_day,
                           f"daily half invalidation ({killed})")
            elif campaign_day >= config.daily_all_start_day:
                killed = self.invalidator.invalidate_new_observations(
                    abs_day, fraction=1.0)
                self._note(campaign_day,
                           f"daily full invalidation ({killed})")

        if config.enable_ip_limits and campaign_day == config.ip_limit_day:
            apply_ip_like_limits(self.world.policy,
                                 daily=config.ip_daily_limit,
                                 weekly=config.ip_weekly_limit)
            self._note(campaign_day,
                       f"IP like limits: {config.ip_daily_limit}/day, "
                       f"{config.ip_weekly_limit}/week")

        if (config.enable_clustering
                and campaign_day >= config.clustering_start_day
                and (campaign_day - config.clustering_start_day)
                % config.clustering_interval_days == 0):
            with PERF.stage("detection"):
                outcome = self.clustering.run(self.world.api.log,
                                              self.invalidator,
                                              now=self.world.clock.now())
            PERF.count("detection.pairs_scored",
                       outcome.detection.pairs_scored)
            self.clustering_outcomes.append((campaign_day, outcome))
            self._note(campaign_day,
                       f"clustering invalidated "
                       f"{outcome.tokens_invalidated} tokens "
                       f"({outcome.detection.flagged_count} flagged)")

        if config.enable_as_block and campaign_day == config.as_block_day:
            since = (self._campaign_start_ts
                     + (config.ip_limit_day - 1) * DAY)
            asns = identify_abusive_asns(
                self.world.api.log, self.world.as_registry,
                min_ips=config.as_block_min_ips, since=since)
            susceptible = [app.app_id for app in self.world.apps
                           if app.is_susceptible]
            installed = block_asns_for_apps(self.world.policy, asns,
                                            susceptible)
            self._note(campaign_day,
                       f"blocked ASes {asns} for {len(susceptible)} "
                       f"susceptible apps ({installed} entries)")

    def _note(self, campaign_day: int, message: str) -> None:
        self.interventions.append((campaign_day, message))
