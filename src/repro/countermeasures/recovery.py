"""Crash-recoverable campaigns: WAL journaling + day-boundary resume.

A :class:`CampaignRecovery` wraps one countermeasure campaign run with
two durability layers (see ``repro.journal.wal`` for the on-disk
format):

* every request-log row is journaled to a hash-chained, day-segmented
  WAL as it is appended (fsync at each day seal), and
* at every completed campaign day a :class:`CampaignCheckpoint` — the
  full set of state the day's events mutated — is written atomically
  next to the journal.

Resume protocol.  The campaign world is *rebuilt* deterministically by
the caller (same seed, same build + pre-campaign sequence), never
unpickled: several hot structures (``dead_members`` and friends) are
Python sets whose *iteration order* feeds RNG-visible decisions, and a
pickle round-trip silently rebuilds their internal layout.  On top of
the rebuilt base world, ``prepare`` then

1. opens the journal, truncating any torn tail to the last intact
   record (never silently replayed — the recovery report says exactly
   what was dropped);
2. picks the newest checkpoint the sealed journal still covers
   (``checkpoint.journal_records`` must equal the journal's record
   count through that day — a checkpoint that outran a chopped journal
   is skipped);
3. replays the journal's rows back into the request log, byte for
   byte;
4. installs the checkpoint overlay: clock, id counters, RNG streams,
   token store, limiter windows, charge counters, fault-injector state,
   per-network state plus the ordered membership-op journal (replayed
   onto the rebuilt ``dead_members`` sets, reproducing their layout),
   the platform delta (new accounts/posts/pages, engagement suffixes on
   pre-existing objects, activity-log suffixes), shortener analytics
   and the campaign's own series/ledger/cursors; and
5. discards already-executed scheduler events and hands back the first
   day still to run.

A resumed run's request log is byte-identical to an uninterrupted run's
(``tests/test_campaign_resume.py`` kills a run with SIGKILL mid-day and
checks the digest).

The ``torn_tail`` fault kind lives here too: when the active fault plan
fires it, the freshly sealed segment's tail is chopped and a
:class:`SimulatedCrash` is raised — at most once per journal lifetime,
guarded by a marker file, so the recovered re-run converges instead of
crash-looping.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.checkpoint import MISSING, CheckpointStore
from repro.journal.wal import EventJournal, JournalRecovery, SimulatedCrash
from repro.sanitizer.trace import SANITIZER
from repro.telemetry.registry import TELEMETRY

#: Subdirectory of the journal holding the per-day checkpoint pickles.
_CHECKPOINT_DIR = "checkpoints"
#: Marker file recording that the torn_tail fault already fired for
#: this journal; its presence disarms the fault so a resumed run
#: converges instead of re-tearing the same seal forever.
_TORN_MARKER = "torn-tail.fired"


class RecoveryError(RuntimeError):
    """The journal directory cannot support resuming this campaign."""


# ----------------------------------------------------------------------
# Base marks: platform sizes at campaign start, recomputed (not stored)
# on resume — the rebuilt world reproduces them exactly.
# ----------------------------------------------------------------------
@dataclass
class _PlatformMarks:
    """Sizes of every platform registry when recording began."""

    accounts: int
    posts: int
    pages: int
    post_marks: Dict[str, Tuple[int, int]]
    page_marks: Dict[str, int]
    activity: Dict[str, int]


def _platform_marks(platform) -> _PlatformMarks:
    return _PlatformMarks(
        accounts=len(platform.accounts),
        posts=len(platform.posts),
        pages=len(platform.pages),
        post_marks={post_id: (len(post.likes), len(post.comments))
                    for post_id, post in platform.posts.items()},
        page_marks={page_id: len(page.likes)
                    for page_id, page in platform.pages.items()},
        activity={actor: len(records) for actor, records
                  in platform.activity_log._by_actor.items()},
    )


# ----------------------------------------------------------------------
# The checkpoint payload
# ----------------------------------------------------------------------
@dataclass
class CampaignCheckpoint:
    """Everything one campaign day mutated, as of the day boundary."""

    day: int
    clock: int
    #: Journal record count through this day — the coverage handshake
    #: that pairs a checkpoint with a (possibly truncated) journal.
    journal_records: int
    ids: Dict[str, int]
    rng_states: Dict[str, tuple]
    tokens: dict
    enforcer: dict
    charge_counters: Dict[str, int]
    faults: Optional[dict]
    #: Per-domain ``CollusionNetwork.export_state()`` payloads.
    networks: Dict[str, dict]
    #: Per-domain ordered ("store"|"drop", account_id) ops since the
    #: campaign started; replayed onto the rebuilt ``dead_members``
    #: sets (which are never pickled — see network._SHARD_SKIP_FIELDS).
    member_ops: Dict[str, List[Tuple[str, str]]]
    directory: dict
    platform: dict
    shortener: dict
    campaign: dict
    #: ``TELEMETRY.export_state()`` payload; installed wholesale on
    #: resume so the recovered run's metrics converge on the
    #: uninterrupted reference.  None when telemetry is disabled.
    telemetry: Optional[dict]
    #: ``SANITIZER.export_state()`` payload; installed wholesale on
    #: resume (replacing the rebuild's re-recorded trace) so a resumed
    #: run's shadow trace converges on the uninterrupted reference.
    #: The export's chain fold is digest-neutral here because the
    #: checkpoint sits at a day boundary (see SanitizerTrace._fold).
    #: None when the sanitizer is disabled.
    sanitizer: Optional[dict] = None


def _capture_platform(platform, base: _PlatformMarks) -> dict:
    """The platform delta beyond the campaign-start base marks.

    Registries are insertion-ordered dicts, so "everything beyond the
    base count" is a stable slice; engagement on pre-existing objects
    ships as per-object suffixes.
    """
    accounts = list(platform.accounts.values())
    posts = list(platform.posts.values())
    pages = list(platform.pages.values())
    touched_posts = []
    for post_id, (n_likes, n_comments) in base.post_marks.items():
        post = platform.posts[post_id]
        if len(post.likes) > n_likes or len(post.comments) > n_comments:
            touched_posts.append((post_id, post.likes[n_likes:],
                                  post.comments[n_comments:]))
    touched_pages = []
    for page_id, n_likes in base.page_marks.items():
        page = platform.pages[page_id]
        if len(page.likes) > n_likes:
            touched_pages.append((page_id, page.likes[n_likes:]))
    activity = {}
    for actor, records in platform.activity_log._by_actor.items():
        seen = base.activity.get(actor, 0)
        if len(records) > seen:
            activity[actor] = records[seen:]
    return {
        "new_accounts": accounts[base.accounts:],
        "new_posts": posts[base.posts:],
        "new_pages": pages[base.pages:],
        "touched_posts": touched_posts,
        "touched_pages": touched_pages,
        "activity": activity,
    }


def _install_platform(platform, delta: dict) -> None:
    for account in delta["new_accounts"]:
        platform.accounts[account.account_id] = account
    for post in delta["new_posts"]:
        platform.posts[post.post_id] = post
        platform._posts_by_author.setdefault(post.author_id,
                                             []).append(post)
    for page in delta["new_pages"]:
        platform.pages[page.page_id] = page
    for post_id, likes, comments in delta["touched_posts"]:
        post = platform.posts[post_id]
        for like in likes:
            post.add_like(like)
        for comment in comments:
            post.add_comment(comment)
    for page_id, likes in delta["touched_pages"]:
        page = platform.pages[page_id]
        for like in likes:
            page.add_like(like)
    activity_log = platform.activity_log
    for records in delta["activity"].values():
        for record in records:
            activity_log.record(record)


def _capture_shortener(shortener) -> dict:
    return {slug: (url.click_count, dict(url.clicks_by_country),
                   dict(url.clicks_by_referrer), dict(url.clicks_by_day))
            for slug, url in shortener._by_slug.items()}


def _install_shortener(shortener, state: dict) -> None:
    for slug, (count, by_country, by_referrer, by_day) in state.items():
        url = shortener._by_slug.get(slug)
        if url is None:  # pragma: no cover - defensive
            continue
        url.click_count = count
        url.clicks_by_country = dict(by_country)
        url.clicks_by_referrer = dict(by_referrer)
        url.clicks_by_day = dict(by_day)


def _capture_campaign(campaign) -> dict:
    ledger = campaign.ledger
    crawler = campaign.crawler
    return {
        "series": {domain: (list(series.posts_per_day),
                            list(series.likes_per_day))
                   for domain, series in campaign.series.items()},
        "interventions": list(campaign.interventions),
        "clustering_outcomes": list(campaign.clustering_outcomes),
        "total_invalidated": campaign.invalidator.total_invalidated,
        "ledger": (ledger._observations, ledger._new_by_day,
                   ledger._seen_by_day),
        "crawler": (dict(crawler._like_cursor),
                    dict(crawler._comment_cursor)),
        "honeypots": {domain: (list(h.like_post_ids),
                               list(h.comment_post_ids))
                      for domain, h in campaign.honeypots.items()},
    }


def _install_campaign(campaign, state: dict) -> None:
    for domain, (posts, likes) in state["series"].items():
        series = campaign.series[domain]
        series.posts_per_day = list(posts)
        series.likes_per_day = list(likes)
    campaign.interventions[:] = state["interventions"]
    campaign.clustering_outcomes[:] = state["clustering_outcomes"]
    campaign.invalidator.total_invalidated = state["total_invalidated"]
    ledger = campaign.ledger
    observations, new_by_day, seen_by_day = state["ledger"]
    ledger._observations = observations
    ledger._new_by_day = new_by_day
    ledger._seen_by_day = seen_by_day
    like_cursor, comment_cursor = state["crawler"]
    campaign.crawler._like_cursor = dict(like_cursor)
    campaign.crawler._comment_cursor = dict(comment_cursor)
    for domain, (like_ids, comment_ids) in state["honeypots"].items():
        honeypot = campaign.honeypots[domain]
        honeypot.like_post_ids[:] = like_ids
        honeypot.comment_post_ids[:] = comment_ids


def capture_checkpoint(campaign, day: int, base: _PlatformMarks,
                       journal_records: int) -> CampaignCheckpoint:
    """Snapshot everything campaign days 1..``day`` mutated."""
    world = campaign.world
    directory = next(iter(campaign.networks.values())).directory
    return CampaignCheckpoint(
        day=day,
        clock=world.clock.now(),
        journal_records=journal_records,
        ids=dict(world.ids._counters),
        rng_states=world.rng.export_states(),
        tokens=world.tokens.export_state(),
        enforcer=world.api.enforcer.export_state(),
        charge_counters=dict(world.api.charge_counters),
        faults=(world.faults.export_state()
                if world.faults is not None else None),
        networks={domain: network.export_state()
                  for domain, network in campaign.networks.items()},
        member_ops={domain: list(network._member_op_journal or ())
                    for domain, network in campaign.networks.items()},
        directory={"accounts": list(directory._accounts),
                   "counter": directory._counter},
        platform=_capture_platform(world.platform, base),
        shortener=_capture_shortener(world.shortener),
        campaign=_capture_campaign(campaign),
        telemetry=(TELEMETRY.export_state()
                   if TELEMETRY.enabled else None),
        sanitizer=(SANITIZER.export_state()
                   if SANITIZER.enabled else None),
    )


def install_checkpoint(campaign, checkpoint: CampaignCheckpoint) -> None:
    """Overlay ``checkpoint`` onto a freshly rebuilt campaign world."""
    world = campaign.world
    world.clock.advance_to(checkpoint.clock)
    world.ids._counters = dict(checkpoint.ids)
    world.rng.install_states(checkpoint.rng_states)
    world.tokens.install_state(checkpoint.tokens)
    world.api.enforcer.install_state(checkpoint.enforcer)
    world.api.charge_counters.clear()
    world.api.charge_counters.update(checkpoint.charge_counters)
    # The charge fast path caches (token, app, granted) triples; the
    # restored token store mutated the underlying objects in place, but
    # grant verdicts may have changed — drop the memo wholesale.
    world.api._charge_token_cache.clear()
    if checkpoint.faults is not None and world.faults is not None:
        world.faults.install_state(checkpoint.faults)
    _install_platform(world.platform, checkpoint.platform)
    directory = next(iter(campaign.networks.values())).directory
    directory._accounts = list(checkpoint.directory["accounts"])
    directory._counter = checkpoint.directory["counter"]
    for domain, network in campaign.networks.items():
        network.adopt_state(checkpoint.networks[domain])
        ops = [tuple(op) for op in checkpoint.member_ops[domain]]
        for op, account_id in ops:
            if op == "drop":
                network.dead_members.add(account_id)
            else:
                network.dead_members.discard(account_id)
        network._member_op_journal = ops
    _install_shortener(world.shortener, checkpoint.shortener)
    _install_campaign(campaign, checkpoint.campaign)
    if checkpoint.telemetry is not None:
        TELEMETRY.install_state(checkpoint.telemetry)
    if checkpoint.sanitizer is not None and SANITIZER.enabled:
        SANITIZER.install_state(checkpoint.sanitizer)
    # Events the restored days already executed (e.g. milking follow-ups
    # scheduled into the campaign window) must not run twice.
    world.scheduler.discard_until(checkpoint.clock)


# ----------------------------------------------------------------------
# The recovery driver
# ----------------------------------------------------------------------
class CampaignRecovery:
    """Journals, checkpoints and (on request) resumes one campaign.

    Pass an instance to
    :meth:`repro.countermeasures.campaign.CountermeasureCampaign.run`.
    ``resume=False`` forces a fresh journal even over an existing
    directory; ``resume=True`` (the default) resumes when the directory
    holds a matching journal and starts fresh otherwise.
    """

    def __init__(self, directory: str, resume: bool = True) -> None:
        self.directory = directory
        self.resume = resume
        self.journal: Optional[EventJournal] = None
        #: Torn-tail recovery report from opening an existing journal.
        self.report: Optional[JournalRecovery] = None
        self.resumed_from_day: Optional[int] = None
        self.store: Optional[CheckpointStore] = None
        self._base: Optional[_PlatformMarks] = None

    # -- campaign.run() protocol ---------------------------------------
    def prepare(self, campaign) -> int:
        """Open/create the journal; returns the first day to run."""
        world = campaign.world
        self._base = _platform_marks(world.platform)
        for network in campaign.networks.values():
            if network._member_op_journal is None:
                network._member_op_journal = []
        fingerprint = self._fingerprint(campaign)
        self.store = CheckpointStore(
            os.path.join(self.directory, _CHECKPOINT_DIR))
        first_day = 1
        resumable = self.resume and EventJournal.exists(self.directory)
        if resumable:
            first_day = self._try_resume(campaign, fingerprint)
        if self.journal is None:
            if not resumable:
                # An explicitly fresh run re-arms the torn-tail fault; a
                # failed resume keeps the marker, else the same keyed
                # draw would re-tear the same seal forever.
                self._remove_torn_marker()
            self.store.clear()
            self.journal = EventJournal.create(self.directory, fingerprint)
            first_day = 1
        world.api.log.attach_journal(self.journal)
        return first_day

    def begin_day(self, campaign, campaign_day: int) -> None:
        self.journal.begin_day(campaign_day)

    def on_day_complete(self, campaign, campaign_day: int) -> None:
        self.journal.seal_day()
        checkpoint = capture_checkpoint(campaign, campaign_day,
                                        self._base, self.journal.records)
        # The checkpoint must carry the live token table verbatim — a
        # resumed run re-issues byte-identical Graph API calls against
        # the same tokens.  The store writes only to the experiment's
        # private checkpoint directory, never to exported artifacts.
        self.store.save(  # reprolint: disable=RL103 — durable resume image carries the live token table by design
            f"day-{campaign_day:05d}", checkpoint)
        self._maybe_tear_tail(campaign, campaign_day)

    def finish(self, campaign) -> None:
        campaign.world.api.log.detach_journal()

    # -- resume internals ----------------------------------------------
    def _fingerprint(self, campaign) -> dict:
        world = campaign.world
        config = campaign.config
        return {
            "format": "repro-journal-v1",
            "seed": world.rng.master_seed,
            "scale": world.config.scale,
            "days": config.days,
            "posts_per_day": config.posts_per_day,
            "networks": list(config.networks),
            "base_rows": len(world.api.log),
        }

    def _try_resume(self, campaign, fingerprint: dict) -> int:
        journal, report = EventJournal.open(self.directory)
        self.report = report
        if journal.meta != fingerprint:
            raise RecoveryError(
                f"journal at {self.directory} belongs to a different "
                f"campaign configuration ({journal.meta!r} != "
                f"{fingerprint!r})")
        checkpoint = self._latest_covered_checkpoint(journal)
        if checkpoint is None:
            # Sealed days without a usable checkpoint (e.g. the crash
            # landed between seal and checkpoint write on day 1):
            # nothing to resume from, start over on a fresh journal.
            return 1
        journal.drop_days_after(checkpoint.day)
        log = campaign.world.api.log
        rows = list(journal.replay_rows())
        if len(rows) != checkpoint.journal_records:  # pragma: no cover
            raise RecoveryError(
                f"journal replay produced {len(rows)} rows but the day "
                f"{checkpoint.day} checkpoint recorded "
                f"{checkpoint.journal_records}")
        log.append_exported(rows)
        install_checkpoint(campaign, checkpoint)
        self.journal = journal
        self.resumed_from_day = checkpoint.day + 1
        return checkpoint.day + 1

    def _latest_covered_checkpoint(
            self, journal: EventJournal) -> Optional[CampaignCheckpoint]:
        days = []
        for name in self.store.completed():
            if name.startswith("day-"):
                try:
                    days.append(int(name[4:]))
                except ValueError:
                    continue
        for day in sorted(days, reverse=True):
            if day > journal.last_sealed_day:
                continue
            checkpoint = self.store.load(f"day-{day:05d}")
            if checkpoint is MISSING:
                continue
            if checkpoint.journal_records != journal.records_through_day(
                    day):
                continue
            return checkpoint
        return None

    # -- torn-tail chaos -----------------------------------------------
    def _torn_marker_path(self) -> str:
        return os.path.join(self.directory, _TORN_MARKER)

    def _remove_torn_marker(self) -> None:
        try:
            os.remove(self._torn_marker_path())
        except OSError:
            pass

    def _maybe_tear_tail(self, campaign, campaign_day: int) -> None:
        injector = campaign.world.faults
        if injector is None or os.path.exists(self._torn_marker_path()):
            return
        nbytes = injector.decide_torn_tail(campaign_day)
        if not nbytes:
            return
        with open(self._torn_marker_path(), "w",
                  encoding="utf-8") as handle:
            handle.write(f"day {campaign_day}: tore {nbytes} byte(s)\n")
            handle.flush()
            os.fsync(handle.fileno())
        chopped = self.journal.chop_tail(nbytes)
        campaign.world.api.log.detach_journal()
        raise SimulatedCrash(
            f"torn_tail fault: chopped {chopped} byte(s) off the day "
            f"{campaign_day} segment and crashed")

    # -- reporting -----------------------------------------------------
    def describe(self) -> str:
        lines = []
        if self.resumed_from_day is not None:
            lines.append(f"campaign resumed from day "
                         f"{self.resumed_from_day}")
        if self.report is not None:
            lines.append("journal recovery: " + self.report.describe())
        if self.journal is not None:
            lines.append(f"journal: {self.journal.records} row(s) "
                         f"sealed through day "
                         f"{self.journal.last_sealed_day}")
        return "\n".join(lines)
