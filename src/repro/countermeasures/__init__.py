"""The §6 countermeasure suite and the Fig. 5 campaign orchestrator."""

from repro.countermeasures.ratelimits import (
    apply_reduced_token_limit,
    restore_default_token_limit,
)
from repro.countermeasures.invalidation import TokenInvalidator
from repro.countermeasures.iplimits import (
    apply_ip_like_limits,
    heavy_hitter_ips,
    ip_observation_stats,
    as_observation_stats,
)
from repro.countermeasures.asblocking import (
    identify_abusive_asns,
    block_asns_for_apps,
)
from repro.countermeasures.clustering import ClusteringCountermeasure
from repro.countermeasures.campaign import (
    CampaignConfig,
    CampaignResults,
    CountermeasureCampaign,
    NetworkDailySeries,
)

__all__ = [
    "apply_reduced_token_limit",
    "restore_default_token_limit",
    "TokenInvalidator",
    "apply_ip_like_limits",
    "heavy_hitter_ips",
    "ip_observation_stats",
    "as_observation_stats",
    "identify_abusive_asns",
    "block_asns_for_apps",
    "ClusteringCountermeasure",
    "CampaignConfig",
    "CampaignResults",
    "CountermeasureCampaign",
    "NetworkDailySeries",
]
