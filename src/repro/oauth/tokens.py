"""Access tokens: issuance, expiry, validation and invalidation.

Tokens are opaque strings (§2.1).  Facebook issues *short-term* tokens
(1–2 h) and *long-term* tokens (~2 months); the 9 susceptible apps of
Table 1 matter precisely because they receive long-term tokens, giving
collusion networks a two-month abuse window per token.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.oauth.errors import InvalidTokenError
from repro.oauth.scopes import Permission, PermissionScope
from repro.sim.clock import DAY, HOUR, SimClock

#: Short-term token lifetime (Facebook: 1-2 hours; we use the midpoint).
SHORT_TERM_LIFETIME = int(1.5 * HOUR)

#: Long-term token lifetime (~2 months).
LONG_TERM_LIFETIME = 60 * DAY


class TokenLifetime(enum.Enum):
    """Which expiry class an application's tokens get."""

    SHORT_TERM = "short_term"
    LONG_TERM = "long_term"

    @property
    def seconds(self) -> int:
        if self is TokenLifetime.SHORT_TERM:
            return SHORT_TERM_LIFETIME
        return LONG_TERM_LIFETIME


@dataclass
class AccessToken:
    """An issued OAuth 2.0 bearer token."""

    token: str
    user_id: str
    app_id: str
    scope: PermissionScope
    issued_at: int
    expires_at: int
    invalidated: bool = False
    invalidation_reason: Optional[str] = None

    def is_expired(self, now: int) -> bool:
        return now >= self.expires_at

    def is_valid(self, now: int) -> bool:
        return not self.invalidated and not self.is_expired(now)

    def grants(self, permission: Permission) -> bool:
        return self.scope.contains(permission)


class TokenStore:
    """Issues and tracks every access token on the platform.

    The store is the enforcement point for the honeypot-based token
    invalidation countermeasure (§6.2): invalidating a token here makes
    every subsequent Graph API call with it fail.
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._tokens: Dict[str, AccessToken] = {}
        self._by_user_app: Dict[tuple, str] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._tokens)

    def _mint_token_string(self, user_id: str, app_id: str) -> str:
        """Create an opaque, unguessable-looking token string."""
        self._counter += 1
        digest = hashlib.sha256(
            f"{user_id}|{app_id}|{self._counter}".encode("utf-8")
        ).hexdigest()
        return f"EAAB{digest[:40]}"

    def issue(self, user_id: str, app_id: str, scope: PermissionScope,
              lifetime: TokenLifetime) -> AccessToken:
        """Issue a fresh token for (user, app) with the given scope.

        Re-authorizing replaces the previous live token for the same
        (user, app) pair, mirroring Facebook's behaviour when a user
        re-installs an application.
        """
        now = self._clock.now()
        token = AccessToken(
            token=self._mint_token_string(user_id, app_id),
            user_id=user_id,
            app_id=app_id,
            scope=scope,
            issued_at=now,
            expires_at=now + lifetime.seconds,
        )
        previous = self._by_user_app.get((user_id, app_id))
        if previous is not None and previous in self._tokens:
            old = self._tokens[previous]
            if old.is_valid(now):
                old.invalidated = True
                old.invalidation_reason = "superseded"
        self._tokens[token.token] = token
        self._by_user_app[(user_id, app_id)] = token.token
        return token

    def validate(self, token_string: str) -> AccessToken:
        """Return the live token for ``token_string`` or raise."""
        token = self._tokens.get(token_string)
        if token is None:
            raise InvalidTokenError("unknown access token")
        if token.invalidated:
            raise InvalidTokenError(
                f"access token invalidated ({token.invalidation_reason})"
            )
        if token.is_expired(self._clock.now()):
            raise InvalidTokenError("access token expired")
        return token

    def peek(self, token_string: str) -> Optional[AccessToken]:
        """Look up a token without validity checks (for analyses)."""
        return self._tokens.get(token_string)

    def invalidate(self, token_string: str,
                   reason: str = "invalidated") -> bool:
        """Invalidate one token; returns False if it was already dead."""
        token = self._tokens.get(token_string)
        if token is None or not token.is_valid(self._clock.now()):
            return False
        token.invalidated = True
        token.invalidation_reason = reason
        return True

    def invalidate_many(self, token_strings: Iterable[str],
                        reason: str = "invalidated") -> int:
        """Invalidate a batch; returns how many were live before the call."""
        return sum(1 for t in token_strings if self.invalidate(t, reason))

    def export_state(self) -> Dict:
        """Full store snapshot for a campaign checkpoint.

        Token strings and attributes are copied into plain picklable
        rows; :meth:`install_state` rebuilds identical
        :class:`AccessToken` objects (scope objects are shared — they
        are immutable by convention).
        """
        return {
            "counter": self._counter,
            "tokens": [
                (t.token, t.user_id, t.app_id, t.scope, t.issued_at,
                 t.expires_at, t.invalidated, t.invalidation_reason)
                for t in self._tokens.values()],
            "by_user_app": dict(self._by_user_app),
        }

    def install_state(self, state: Dict) -> None:
        """Restore an :meth:`export_state` snapshot.

        Tokens already present keep their *object identity* and are
        updated in place — callers across the simulation (API caches,
        network token books) hold references to the live objects, and a
        resume restores state onto the same world those holders see.
        """
        self._counter = state["counter"]
        existing = self._tokens
        rebuilt: Dict[str, AccessToken] = {}
        for (token, user_id, app_id, scope, issued_at, expires_at,
             invalidated, reason) in state["tokens"]:
            live = existing.get(token)
            if live is None:
                live = AccessToken(
                    token=token, user_id=user_id, app_id=app_id,
                    scope=scope, issued_at=issued_at,
                    expires_at=expires_at, invalidated=invalidated,
                    invalidation_reason=reason)
            else:
                live.user_id = user_id
                live.app_id = app_id
                live.scope = scope
                live.issued_at = issued_at
                live.expires_at = expires_at
                live.invalidated = invalidated
                live.invalidation_reason = reason
            rebuilt[token] = live
        self._tokens = rebuilt
        self._by_user_app = dict(state["by_user_app"])

    def live_tokens_for_app(self, app_id: str) -> List[AccessToken]:
        now = self._clock.now()
        return [t for t in self._tokens.values()
                if t.app_id == app_id and t.is_valid(now)]

    def live_token_for(self, user_id: str, app_id: str) -> Optional[AccessToken]:
        """The currently-valid token for (user, app), if any."""
        token_string = self._by_user_app.get((user_id, app_id))
        if token_string is None:
            return None
        token = self._tokens[token_string]
        return token if token.is_valid(self._clock.now()) else None
