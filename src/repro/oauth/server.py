"""The OAuth 2.0 authorization server (implicit + authorization-code flows).

The flows follow the message sequence of the paper's Fig. 1.  Redirects are
materialized as URL strings, so the collusion-network trick of having the
user copy ``#access_token=...`` out of the browser address bar (§3) is
reproduced literally by parsing the redirect URL fragment.
"""

from __future__ import annotations

import hashlib
import urllib.parse
from dataclasses import dataclass
from typing import Dict, Optional

from repro.oauth.apps import Application, ApplicationRegistry
from repro.oauth.errors import (
    FlowDisabledError,
    InvalidAppSecretError,
    InvalidAuthorizationCodeError,
    InvalidRedirectUriError,
    InvalidTokenError,
    PermissionNotGrantedError,
)
from repro.oauth.scopes import PermissionScope
from repro.oauth.tokens import AccessToken, TokenStore
from repro.sim.clock import MINUTE, SimClock

#: Authorization codes are single-use and expire quickly (RFC 6749 §4.1.2
#: recommends a maximum of 10 minutes).
AUTHORIZATION_CODE_LIFETIME = 10 * MINUTE


@dataclass(frozen=True)
class AuthorizationRequest:
    """The parameters the login button sends to the authorization server."""

    app_id: str
    redirect_uri: str
    response_type: str  # "token" (implicit) or "code" (server-side)
    scope: PermissionScope
    state: Optional[str] = None


@dataclass(frozen=True)
class AuthorizationResult:
    """Outcome of a completed authorization: the browser redirect."""

    redirect_url: str
    access_token: Optional[AccessToken] = None
    authorization_code: Optional[str] = None

    def token_from_fragment(self) -> Optional[str]:
        """Extract ``access_token`` from the redirect URL fragment.

        This is exactly what a colluding user does manually when the
        collusion network shows them the dialog with ``view-source``
        prepended: the token rides in the fragment of the address bar.
        """
        fragment = urllib.parse.urlparse(self.redirect_url).fragment
        params = urllib.parse.parse_qs(fragment)
        values = params.get("access_token")
        return values[0] if values else None

    def code_from_query(self) -> Optional[str]:
        query = urllib.parse.urlparse(self.redirect_url).query
        params = urllib.parse.parse_qs(query)
        values = params.get("code")
        return values[0] if values else None


@dataclass
class _PendingCode:
    code: str
    user_id: str
    app_id: str
    redirect_uri: str
    scope: PermissionScope
    issued_at: int
    used: bool = False


class AuthorizationServer:
    """Validates authorization requests and issues tokens/codes."""

    def __init__(self, clock: SimClock, apps: ApplicationRegistry,
                 tokens: TokenStore) -> None:
        self._clock = clock
        self._apps = apps
        self._tokens = tokens
        self._codes: Dict[str, _PendingCode] = {}
        self._code_counter = 0

    # ------------------------------------------------------------------
    # Request validation
    # ------------------------------------------------------------------
    def _validate(self, request: AuthorizationRequest) -> Application:
        app = self._apps.get(request.app_id)
        if request.redirect_uri != app.redirect_uri:
            raise InvalidRedirectUriError(app.app_id, request.redirect_uri)
        if request.response_type == "token":
            if not app.security.client_side_flow_enabled:
                raise FlowDisabledError(app.app_id, "client-side")
        elif request.response_type != "code":
            raise ValueError(
                f"unsupported response_type: {request.response_type!r}"
            )
        for permission in request.scope.sensitive():
            if not app.approved_permissions.contains(permission):
                raise PermissionNotGrantedError(app.app_id, permission.value)
        return app

    # ------------------------------------------------------------------
    # User-facing authorization (the dialog of Fig. 1)
    # ------------------------------------------------------------------
    def authorize(self, request: AuthorizationRequest,
                  user_id: str) -> AuthorizationResult:
        """User approves the dialog; returns the resulting redirect.

        For ``response_type="token"`` the access token is appended to the
        redirect URI *fragment* (implicit flow); for ``"code"`` an
        authorization code is appended to the *query string*.
        """
        app = self._validate(request)
        if request.response_type == "token":
            token = self._tokens.issue(
                user_id, app.app_id, request.scope, app.token_lifetime
            )
            fragment = urllib.parse.urlencode({
                "access_token": token.token,
                "expires_in": token.expires_at - token.issued_at,
                "token_type": "bearer",
            })
            if request.state:
                fragment += "&" + urllib.parse.urlencode(
                    {"state": request.state})
            return AuthorizationResult(
                redirect_url=f"{request.redirect_uri}#{fragment}",
                access_token=token,
            )

        code = self._mint_code(user_id, app, request)
        query = {"code": code}
        if request.state:
            query["state"] = request.state
        return AuthorizationResult(
            redirect_url=(f"{request.redirect_uri}?"
                          f"{urllib.parse.urlencode(query)}"),
            authorization_code=code,
        )

    def _mint_code(self, user_id: str, app: Application,
                   request: AuthorizationRequest) -> str:
        self._code_counter += 1
        code = hashlib.sha256(
            f"code|{user_id}|{app.app_id}|{self._code_counter}".encode()
        ).hexdigest()[:32]
        self._codes[code] = _PendingCode(
            code=code, user_id=user_id, app_id=app.app_id,
            redirect_uri=request.redirect_uri, scope=request.scope,
            issued_at=self._clock.now(),
        )
        return code

    # ------------------------------------------------------------------
    # Server-side code exchange (Fig. 1, final step)
    # ------------------------------------------------------------------
    def exchange_code(self, app_id: str, redirect_uri: str, code: str,
                      app_secret: str) -> AccessToken:
        """Exchange an authorization code for an access token.

        This leg runs app-server-to-authorization-server and is
        authenticated with the application secret — which is why tokens
        never reach the browser in the server-side flow.
        """
        app = self._apps.get(app_id)
        if not app.check_secret(app_secret):
            raise InvalidAppSecretError(app_id)
        pending = self._codes.get(code)
        now = self._clock.now()
        if (pending is None or pending.used or pending.app_id != app_id
                or pending.redirect_uri != redirect_uri
                or now - pending.issued_at > AUTHORIZATION_CODE_LIFETIME):
            raise InvalidAuthorizationCodeError()
        pending.used = True
        return self._tokens.issue(
            pending.user_id, app.app_id, pending.scope, app.token_lifetime
        )

    # ------------------------------------------------------------------
    # Token introspection and extension (Facebook's debug_token and
    # fb_exchange_token endpoints)
    # ------------------------------------------------------------------
    def debug_token(self, input_token: str) -> Dict[str, object]:
        """Inspect a token's metadata (the ``/debug_token`` endpoint).

        Never raises for dead tokens — introspection reports validity,
        which is how the platform's abuse team inspects milked tokens.
        """
        token = self._tokens.peek(input_token)
        if token is None:
            return {"is_valid": False, "error": "unknown token"}
        now = self._clock.now()
        return {
            "is_valid": token.is_valid(now),
            "app_id": token.app_id,
            "user_id": token.user_id,
            "scopes": sorted(p.value for p in token.scope),
            "issued_at": token.issued_at,
            "expires_at": token.expires_at,
            "invalidation_reason": token.invalidation_reason,
        }

    def extend_token(self, app_id: str, app_secret: str,
                     exchange_token: str) -> AccessToken:
        """Exchange a live short-term token for a long-term one.

        The ``fb_exchange_token`` grant: server-to-server, authenticated
        with the application secret — which is why collusion networks,
        holding only bare tokens, cannot stretch a short-term leak into
        a two-month one.
        """
        app = self._apps.get(app_id)
        if not app.check_secret(app_secret):
            raise InvalidAppSecretError(app_id)
        token = self._tokens.validate(exchange_token)
        if token.app_id != app_id:
            raise InvalidTokenError(
                "token was not issued to this application")
        from repro.oauth.tokens import TokenLifetime

        return self._tokens.issue(token.user_id, app_id, token.scope,
                                  TokenLifetime.LONG_TERM)

    # ------------------------------------------------------------------
    # Convenience: the full login-dialog URL an application embeds
    # ------------------------------------------------------------------
    def login_dialog_url(self, app_id: str, response_type: str,
                         scope: PermissionScope) -> str:
        """The ``facebook.com/dialog/oauth``-style URL for an app login."""
        app = self._apps.get(app_id)
        params = urllib.parse.urlencode({
            "client_id": app.app_id,
            "redirect_uri": app.redirect_uri,
            "response_type": response_type,
            "scope": scope.to_scope_string(),
        })
        return f"https://social.example/dialog/oauth?{params}"
