"""The ``appsecret_proof`` mechanism (Fig. 2b's "Require App Secret").

Real Graph API calls never send the application secret itself: the
server-side caller sends ``appsecret_proof = HMAC-SHA256(key=app_secret,
msg=access_token)``, which proves possession of the secret without
exposing it on the wire.  This is exactly why requiring it defeats token
leakage — a collusion network holding only the bare token cannot compute
the proof.
"""

from __future__ import annotations

import hashlib
import hmac


def compute_appsecret_proof(app_secret: str, access_token: str) -> str:
    """The HMAC-SHA256 proof a legitimate app server attaches."""
    return hmac.new(app_secret.encode("utf-8"),
                    access_token.encode("utf-8"),
                    hashlib.sha256).hexdigest()


def verify_appsecret_proof(app_secret: str, access_token: str,
                           candidate: str) -> bool:
    """Constant-time check of a presented proof."""
    if not candidate:
        return False
    expected = compute_appsecret_proof(app_secret, access_token)
    return hmac.compare_digest(expected, candidate)
