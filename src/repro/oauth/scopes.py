"""Permissions and permission scopes.

Facebook splits permissions into *basic* ones (granted without review) and
*sensitive* ones that pass a manual review (§2.1).  ``publish_actions`` — the
permission collusion networks need to like and comment on behalf of users —
is sensitive, which is why collusion networks must piggyback on existing
approved applications instead of registering their own (§3).
"""

from __future__ import annotations

import enum
import hashlib
from typing import FrozenSet, Iterable


class Permission(enum.Enum):
    """The subset of the platform permission vocabulary the paper uses."""

    PUBLIC_PROFILE = "public_profile"
    EMAIL = "email"
    USER_FRIENDS = "user_friends"
    USER_POSTS = "user_posts"
    PUBLISH_ACTIONS = "publish_actions"
    MANAGE_PAGES = "manage_pages"

    @property
    def is_sensitive(self) -> bool:
        return self in SENSITIVE_PERMISSIONS


#: Permissions that require platform review before an app may request them.
SENSITIVE_PERMISSIONS: FrozenSet[Permission] = frozenset({
    Permission.PUBLISH_ACTIONS,
    Permission.MANAGE_PAGES,
})

#: Permissions granted to any app without review.
BASIC_PERMISSIONS: FrozenSet[Permission] = frozenset(
    set(Permission) - SENSITIVE_PERMISSIONS
)


class PermissionScope:
    """An immutable set of permissions attached to a token or request."""

    __slots__ = ("_permissions", "_hash")

    def __init__(self, permissions: Iterable[Permission]) -> None:
        self._permissions = frozenset(permissions)
        self._hash = None

    @classmethod
    def parse(cls, scope_string: str) -> "PermissionScope":
        """Parse a comma- or space-separated scope string."""
        names = scope_string.replace(",", " ").split()
        return cls(Permission(name) for name in names)

    @classmethod
    def full(cls) -> "PermissionScope":
        """Every permission — what the scanner requests (§2.2)."""
        return cls(set(Permission))

    @classmethod
    def basic(cls) -> "PermissionScope":
        return cls(BASIC_PERMISSIONS)

    @property
    def permissions(self) -> FrozenSet[Permission]:
        return self._permissions

    def contains(self, permission: Permission) -> bool:
        return permission in self._permissions

    def sensitive(self) -> FrozenSet[Permission]:
        """The sensitive subset of this scope."""
        return self._permissions & SENSITIVE_PERMISSIONS

    def issubset(self, other: "PermissionScope") -> bool:
        return self._permissions <= other._permissions

    def to_scope_string(self) -> str:
        return ",".join(sorted(p.value for p in self._permissions))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PermissionScope):
            return NotImplemented
        return self._permissions == other._permissions

    def __hash__(self) -> int:
        # Builtin hash() of the frozenset would be identity-based (enum
        # members) and salted per process; a blake2b digest of the
        # canonical scope string keeps scope-keyed dict/set ordering
        # stable across interpreter processes.
        if self._hash is None:
            digest = hashlib.blake2b(
                self.to_scope_string().encode("utf-8"),
                digest_size=8).digest()
            self._hash = int.from_bytes(digest, "big")
        return self._hash

    def __iter__(self):
        return iter(sorted(self._permissions, key=lambda p: p.value))

    def __len__(self) -> int:
        return len(self._permissions)

    def __repr__(self) -> str:
        return f"PermissionScope({self.to_scope_string()!r})"
