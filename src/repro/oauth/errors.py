"""OAuth protocol and token errors."""

from __future__ import annotations


class OAuthError(Exception):
    """Base class for OAuth-layer failures."""


class UnknownApplicationError(OAuthError):
    def __init__(self, app_id: str) -> None:
        super().__init__(f"unknown application: {app_id}")
        self.app_id = app_id


class InvalidRedirectUriError(OAuthError):
    def __init__(self, app_id: str, redirect_uri: str) -> None:
        super().__init__(
            f"redirect URI {redirect_uri!r} not registered for {app_id}"
        )
        self.app_id = app_id
        self.redirect_uri = redirect_uri


class FlowDisabledError(OAuthError):
    """The requested OAuth flow is disabled in the app's settings."""

    def __init__(self, app_id: str, flow: str) -> None:
        super().__init__(f"{flow} flow disabled for application {app_id}")
        self.app_id = app_id
        self.flow = flow


class PermissionNotGrantedError(OAuthError):
    """The app requested a sensitive permission it was never approved for."""

    def __init__(self, app_id: str, permission: str) -> None:
        super().__init__(
            f"application {app_id} not approved for permission {permission}"
        )
        self.app_id = app_id
        self.permission = permission


class InvalidTokenError(OAuthError):
    """Token is unknown, expired, or has been invalidated."""

    def __init__(self, reason: str = "invalid access token") -> None:
        super().__init__(reason)


class InvalidAuthorizationCodeError(OAuthError):
    def __init__(self) -> None:
        super().__init__("invalid or already-used authorization code")


class InvalidAppSecretError(OAuthError):
    def __init__(self, app_id: str) -> None:
        super().__init__(f"bad application secret for {app_id}")
        self.app_id = app_id
