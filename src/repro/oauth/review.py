"""The platform's manual application review process (§3).

Applications requesting write permissions pass a review.  Collusion
networks cannot get their own applications approved — the review rejects
applicants with reputation-manipulation indicators — which is why they
must exploit *existing*, legitimately approved applications.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.oauth.apps import Application
from repro.oauth.scopes import PermissionScope


class ReviewDecision(enum.Enum):
    APPROVED = "approved"
    REJECTED = "rejected"


@dataclass(frozen=True)
class ReviewOutcome:
    app_id: str
    decision: ReviewDecision
    requested: PermissionScope
    reason: str


#: Keyword indicators of reputation-manipulation intent.  Mirrors the
#: paper's observation that autoliker-style services "would not pass
#: Facebook's strict manual review process".
_SUSPICIOUS_NAME_FRAGMENTS = (
    "liker", "likes", "autolike", "follower", "fans", "boost",
)


class AppReviewProcess:
    """Approves or rejects sensitive-permission requests for apps."""

    def __init__(self) -> None:
        self._outcomes: List[ReviewOutcome] = []

    @property
    def history(self) -> List[ReviewOutcome]:
        return list(self._outcomes)

    def submit(self, app: Application, requested: PermissionScope,
               declared_purpose: str = "") -> ReviewOutcome:
        """Review an app's request for sensitive permissions.

        On approval the app's ``approved_permissions`` is widened in
        place.  Basic permissions never need review and are approved
        trivially.
        """
        sensitive = requested.sensitive()
        if not sensitive:
            outcome = ReviewOutcome(app.app_id, ReviewDecision.APPROVED,
                                    requested, "basic permissions only")
        elif self._looks_manipulative(app, declared_purpose):
            outcome = ReviewOutcome(
                app.app_id, ReviewDecision.REJECTED, requested,
                "reputation-manipulation indicators in app name/purpose",
            )
        else:
            outcome = ReviewOutcome(app.app_id, ReviewDecision.APPROVED,
                                    requested, "passed manual review")
        if outcome.decision is ReviewDecision.APPROVED:
            app.approved_permissions = PermissionScope(
                set(app.approved_permissions.permissions)
                | set(requested.permissions)
            )
        self._outcomes.append(outcome)
        return outcome

    @staticmethod
    def _looks_manipulative(app: Application, declared_purpose: str) -> bool:
        haystack = f"{app.name} {declared_purpose}".lower()
        return any(fragment in haystack
                   for fragment in _SUSPICIOUS_NAME_FRAGMENTS)
