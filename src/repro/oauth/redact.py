"""The registered token redactor.

The paper's measurement of collusion networks (§3-§4) turns on access
tokens leaking out of the flows that minted them; the reproduction
statically enforces the inverse property on itself (reprolint RL1xx):
a token value may only reach logs, exception messages or persisted
artifacts after passing through :func:`redact_token`.

The redaction is a stable 8-hex-character blake2b digest, so two log
lines about the same token still correlate, diffs across seeded runs
stay byte-identical, and nothing recoverable ever leaves the token
store.
"""

from __future__ import annotations

import hashlib

#: Digest size in bytes; hexdigest is twice this (8 characters).
_DIGEST_SIZE = 4


def redact_token(token: str) -> str:
    """Stable, irreversible 8-char reference for a token string.

    >>> redact_token("EAAB" + "0" * 40)   # doctest: +SKIP
    '91f59e0f'
    """
    digest = hashlib.blake2b(token.encode("utf-8"),
                             digest_size=_DIGEST_SIZE)
    return digest.hexdigest()
