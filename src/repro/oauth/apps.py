"""Third-party application registry and per-app security settings."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.oauth.errors import UnknownApplicationError
from repro.oauth.scopes import Permission, PermissionScope
from repro.oauth.tokens import TokenLifetime


@dataclass
class AppSecuritySettings:
    """The two security knobs from the paper's Fig. 2.

    ``client_side_flow_enabled`` — whether the implicit flow may be used
    (Fig. 2a, "Client OAuth Login").  ``require_app_secret`` — whether Graph
    API calls must carry proof of the application secret (Fig. 2b, "Require
    App Secret").  An app is *susceptible* to token leakage and abuse when
    the first is on and the second is off (§2.2).
    """

    client_side_flow_enabled: bool = True
    require_app_secret: bool = False

    @property
    def is_susceptible(self) -> bool:
        return self.client_side_flow_enabled and not self.require_app_secret


@dataclass
class Application:
    """A registered third-party application."""

    app_id: str
    name: str
    secret: str
    redirect_uri: str
    security: AppSecuritySettings = field(default_factory=AppSecuritySettings)
    approved_permissions: PermissionScope = field(
        default_factory=PermissionScope.basic
    )
    token_lifetime: TokenLifetime = TokenLifetime.SHORT_TERM
    monthly_active_users: int = 0
    daily_active_users: int = 0

    def check_secret(self, candidate: str) -> bool:
        return candidate == self.secret

    def may_request(self, scope: PermissionScope) -> bool:
        """Whether every permission in ``scope`` has been approved."""
        return scope.issubset(self.approved_permissions)

    @property
    def is_susceptible(self) -> bool:
        """Exploitable for reputation manipulation (§2.2 criteria)."""
        return (self.security.is_susceptible
                and self.approved_permissions.contains(
                    Permission.PUBLISH_ACTIONS))


class ApplicationRegistry:
    """All applications registered on the platform."""

    def __init__(self) -> None:
        self._apps: Dict[str, Application] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._apps)

    def __iter__(self):
        return iter(self._apps.values())

    def _mint_secret(self, app_id: str) -> str:
        return hashlib.sha256(f"secret|{app_id}".encode()).hexdigest()[:32]

    def register(self, name: str, redirect_uri: str,
                 security: Optional[AppSecuritySettings] = None,
                 approved_permissions: Optional[PermissionScope] = None,
                 token_lifetime: TokenLifetime = TokenLifetime.SHORT_TERM,
                 monthly_active_users: int = 0,
                 daily_active_users: int = 0,
                 app_id: Optional[str] = None) -> Application:
        """Register an application and return it.

        ``app_id`` may be pinned (used to reproduce the numeric ids from
        Tables 1 and 3); otherwise a sequential id is allocated.
        """
        if app_id is None:
            self._counter += 1
            app_id = f"app:{self._counter}"
        if app_id in self._apps:
            raise ValueError(f"application id already registered: {app_id}")
        app = Application(
            app_id=app_id,
            name=name,
            secret=self._mint_secret(app_id),
            redirect_uri=redirect_uri,
            security=security or AppSecuritySettings(),
            approved_permissions=(approved_permissions
                                  or PermissionScope.basic()),
            token_lifetime=token_lifetime,
            monthly_active_users=monthly_active_users,
            daily_active_users=daily_active_users,
        )
        self._apps[app_id] = app
        return app

    def get(self, app_id: str) -> Application:
        app = self._apps.get(app_id)
        if app is None:
            raise UnknownApplicationError(app_id)
        return app

    def find_by_name(self, name: str) -> List[Application]:
        return [a for a in self._apps.values() if a.name == name]

    def top_by_mau(self, n: int) -> List[Application]:
        """The ``n`` applications with the most monthly active users."""
        ranked = sorted(self._apps.values(),
                        key=lambda a: a.monthly_active_users, reverse=True)
        return ranked[:n]
