"""OAuth 2.0 authorization framework over the simulated platform.

Implements the two user-token workflows of RFC 6749 that the paper
analyses — the *implicit* (client-side) flow and the *authorization code*
(server-side) flow — plus the two per-application security settings from
the paper's Fig. 2: whether the client-side flow is enabled, and whether
the application secret is required on Graph API calls.
"""

from repro.oauth.scopes import Permission, PermissionScope, SENSITIVE_PERMISSIONS
from repro.oauth.tokens import (
    AccessToken,
    TokenLifetime,
    TokenStore,
    SHORT_TERM_LIFETIME,
    LONG_TERM_LIFETIME,
)
from repro.oauth.apps import Application, ApplicationRegistry, AppSecuritySettings
from repro.oauth.redact import redact_token
from repro.oauth.server import (
    AuthorizationServer,
    AuthorizationRequest,
    AuthorizationResult,
)
from repro.oauth.review import AppReviewProcess, ReviewDecision
from repro.oauth.errors import (
    OAuthError,
    UnknownApplicationError,
    InvalidRedirectUriError,
    FlowDisabledError,
    PermissionNotGrantedError,
    InvalidTokenError,
    InvalidAuthorizationCodeError,
    InvalidAppSecretError,
)

__all__ = [
    "Permission",
    "PermissionScope",
    "SENSITIVE_PERMISSIONS",
    "AccessToken",
    "TokenLifetime",
    "TokenStore",
    "SHORT_TERM_LIFETIME",
    "LONG_TERM_LIFETIME",
    "Application",
    "ApplicationRegistry",
    "AppSecuritySettings",
    "AuthorizationServer",
    "AuthorizationRequest",
    "AuthorizationResult",
    "AppReviewProcess",
    "ReviewDecision",
    "OAuthError",
    "UnknownApplicationError",
    "InvalidRedirectUriError",
    "FlowDisabledError",
    "PermissionNotGrantedError",
    "InvalidTokenError",
    "InvalidAuthorizationCodeError",
    "InvalidAppSecretError",
    "redact_token",
]
