"""The Automated Readability Index (Smith & Senter, 1967).

ARI = 4.71 * (characters / words) + 0.5 * (words / sentences) - 21.43

The paper uses ARI to show that collusion-network comments score oddly
high not because they are sophisticated but because of elongated words,
run-on punctuation and nonsense strings inflating character counts.
"""

from __future__ import annotations

import re
from typing import Sequence

_SENTENCE_SPLIT = re.compile(r"[.!?]+")
_WORD_CHARS = re.compile(r"[A-Za-z0-9]")


def count_sentences(text: str) -> int:
    """Sentence count: terminator-delimited chunks with any word chars."""
    chunks = [c for c in _SENTENCE_SPLIT.split(text)
              if _WORD_CHARS.search(c)]
    return max(1, len(chunks))


def automated_readability_index(text: str) -> float:
    """ARI of ``text``; 0.0 for empty/wordless input."""
    words = [w for w in text.split() if _WORD_CHARS.search(w)]
    if not words:
        return 0.0
    characters = sum(len(_WORD_CHARS.findall(w)) for w in words)
    sentences = count_sentences(text)
    return (4.71 * (characters / len(words))
            + 0.5 * (len(words) / sentences)
            - 21.43)


def corpus_ari(texts: Sequence[str]) -> float:
    """ARI of a whole corpus, computed over the concatenation with each
    comment treated as (at least) one sentence."""
    texts = [t for t in texts if t.strip()]
    if not texts:
        return 0.0
    words = 0
    characters = 0
    sentences = 0
    for text in texts:
        toks = [w for w in text.split() if _WORD_CHARS.search(w)]
        if not toks:
            continue
        words += len(toks)
        characters += sum(len(_WORD_CHARS.findall(w)) for w in toks)
        sentences += count_sentences(text)
    if not words:
        return 0.0
    return (4.71 * (characters / words)
            + 0.5 * (words / max(1, sentences))
            - 21.43)
