"""Lexical analysis of collusion-network comments (Table 6).

Provides tokenization, lexical richness, the Automated Readability Index
and dictionary-word classification against an embedded English wordlist.
"""

from repro.lexical.analysis import (
    CommentCorpusAnalysis,
    analyze_comments,
    lexical_richness,
    tokenize,
)
from repro.lexical.ari import automated_readability_index
from repro.lexical.wordlist import english_words, is_dictionary_word

__all__ = [
    "CommentCorpusAnalysis",
    "analyze_comments",
    "lexical_richness",
    "tokenize",
    "automated_readability_index",
    "english_words",
    "is_dictionary_word",
]
