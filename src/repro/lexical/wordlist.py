"""An embedded English wordlist (the NLTK-dictionary stand-in).

The paper checks comment tokens against an English dictionary to measure
the non-dictionary share (~20%).  We embed a compact common-word list —
enough to classify ordinary praise vocabulary as English while leet
("gr8"), elongations ("bravooooo"), transliterations and nonsense strings
fall outside it.
"""

from __future__ import annotations

import functools
import re
from pathlib import Path
from typing import FrozenSet

_DATA_FILE = Path(__file__).parent / "data" / "english_words.txt"
_NORMALIZE = re.compile(r"[^a-z]")


@functools.lru_cache(maxsize=1)
def english_words() -> FrozenSet[str]:
    """The embedded dictionary, lower-cased."""
    words = set()
    with open(_DATA_FILE, encoding="utf-8") as handle:
        for line in handle:
            word = line.strip().lower()
            if word and not word.startswith("#"):
                words.add(word)
    return frozenset(words)


def normalize_token(token: str) -> str:
    """Strip punctuation/digits and lower-case a token."""
    return _NORMALIZE.sub("", token.lower())


def is_dictionary_word(token: str) -> bool:
    """Whether ``token`` (after normalization) is in the dictionary.

    Tokens that normalize to nothing (pure punctuation/emoji) are not
    counted as words at all and return False.
    """
    word = normalize_token(token)
    return bool(word) and word in english_words()
