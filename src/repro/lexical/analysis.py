"""Corpus-level lexical analysis (the Table 6 columns)."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Sequence

from repro.lexical.ari import corpus_ari
from repro.lexical.wordlist import is_dictionary_word, normalize_token

_WORD_CHARS = re.compile(r"[A-Za-z0-9]")


def tokenize(text: str) -> List[str]:
    """Whitespace tokens that contain at least one word character."""
    return [t for t in text.split() if _WORD_CHARS.search(t)]


def lexical_richness(tokens: Sequence[str]) -> float:
    """Fraction of unique (normalized) words among all words."""
    words = [normalize_token(t) for t in tokens]
    words = [w for w in words if w]
    if not words:
        return 0.0
    return len(set(words)) / len(words)


@dataclass(frozen=True)
class CommentCorpusAnalysis:
    """One Table 6 row."""

    posts: int
    comments: int
    avg_comments_per_post: float
    unique_comments: int
    unique_comment_pct: float
    words: int
    unique_words: int
    lexical_richness_pct: float
    ari: float
    non_dictionary_pct: float


def analyze_comments(comments: Sequence[str],
                     posts: int) -> CommentCorpusAnalysis:
    """Compute the full Table 6 statistics for one network's comments."""
    comments = list(comments)
    all_tokens: List[str] = []
    for comment in comments:
        all_tokens.extend(tokenize(comment))
    normalized = [normalize_token(t) for t in all_tokens]
    normalized = [w for w in normalized if w]
    unique_words = set(normalized)
    non_dictionary = [w for w in normalized if not is_dictionary_word(w)]
    unique_comments = len(set(comments))
    return CommentCorpusAnalysis(
        posts=posts,
        comments=len(comments),
        avg_comments_per_post=(len(comments) / posts if posts else 0.0),
        unique_comments=unique_comments,
        unique_comment_pct=(100.0 * unique_comments / len(comments)
                            if comments else 0.0),
        words=len(normalized),
        unique_words=len(unique_words),
        lexical_richness_pct=(100.0 * len(unique_words) / len(normalized)
                              if normalized else 0.0),
        ari=corpus_ari(comments),
        non_dictionary_pct=(100.0 * len(non_dictionary) / len(normalized)
                            if normalized else 0.0),
    )
