"""Deterministic metrics registry.

Metrics are keyed by ``(name, sorted-label-tuple)`` and every recorded
value is an integer, so aggregation is exact: merging per-shard deltas
in any order yields byte-for-byte the numbers a serial run records
(floating-point sums would depend on addition order).  Durations are
recorded as integer microseconds for the same reason.

The registry is invisible to the simulation.  Recording never reads
the wall clock, never touches an RNG stream and never mutates platform
state; the only wall-clock data in the subsystem lives in the
:class:`repro.perf.instrumentation.StageTimer` stage view (``stages``),
which is excluded from snapshots, fingerprints and deltas.

Label hygiene: label values must be bounded (enum-like) strings.  Raw
access tokens are rejected at the door — any value carrying the token
mint prefix is replaced by its :func:`repro.oauth.redact.redact_token`
digest (the static complement is reprolint RL501, which requires label
expressions to be literals, names or ``redact_token(...)`` calls).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.oauth.redact import redact_token
from repro.perf.instrumentation import PERF, StageTimer

#: A label set, canonicalised: ``(("key", "value"), ...)`` sorted by key.
LabelKey = Tuple[Tuple[str, str], ...]
#: A metric series: metric name plus its canonical label set.
MetricKey = Tuple[str, LabelKey]

#: Token mint prefix (see ``repro.oauth.tokens._mint_token_string``);
#: values carrying it are redacted before they can become a label.
_TOKEN_PREFIX = "EAAB"

#: Upper bucket bounds for registered histogram families.  Bounds are
#: part of the metric contract: both sides of a shard merge and both
#: sides of a serial-vs-sharded comparison bucket identically.
DEFAULT_HISTOGRAMS: Dict[str, Tuple[int, ...]] = {
    "wave_size": (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096),
    "wave_limiter_denials": (0, 1, 2, 4, 8, 16, 32, 64, 128, 256),
}

#: Fallback exponential ladder for histograms observed before an
#: explicit ``register_histogram`` call.
_FALLBACK_BOUNDS: Tuple[int, ...] = tuple(2 ** i for i in range(17))


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    items: List[Tuple[str, str]] = []
    for key in sorted(labels):
        value = labels[key]
        text = value if isinstance(value, str) else str(value)
        if text.startswith(_TOKEN_PREFIX):
            text = redact_token(text)
        items.append((key, text))
    return tuple(items)


# ``enabled`` and the ``stages`` wall-clock view are process wiring
# (set by the CLI / bench harness), deliberately not simulation state:
# a resumed run decides its own enablement and re-times its own stages.
class TelemetryRegistry:  # reprolint: disable=RL401 — enabled/stages are process wiring, deliberately outside the snapshot
    """Counters, gauges and fixed-bucket histograms, deterministically.

    All mutation goes through :meth:`count` / :meth:`gauge_set` /
    :meth:`observe`, each a no-op while ``enabled`` is ``False`` so an
    uninstrumented run pays one attribute load per seam.
    """

    def __init__(self) -> None:
        self.enabled = False
        #: Wall-clock stage view — the perf shell's global StageTimer.
        #: One source of truth: the bench harness and the exporters
        #: both read stage seconds from here, never from snapshots.
        self.stages = PERF
        self._counters: Dict[MetricKey, int] = {}
        self._gauges: Dict[MetricKey, int] = {}
        self._hist_bounds: Dict[str, Tuple[int, ...]] = dict(
            DEFAULT_HISTOGRAMS)
        self._hist: Dict[MetricKey, List[int]] = {}
        self._hist_sum: Dict[MetricKey, int] = {}
        # Transient pipeline-stage tracker, fed by StageTimer's
        # listener hook; lets deep instrumentation points label
        # observations with the stage they ran under.
        self._stage_stack: List[str] = []

    def _on_stage(self, name: str, entering: bool) -> None:
        if entering:
            self._stage_stack.append(name)
        elif self._stage_stack and self._stage_stack[-1] == name:
            self._stage_stack.pop()

    def current_stage(self) -> str:
        return self._stage_stack[-1] if self._stage_stack else ""

    # -- recording -----------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def count(self, name: str, value: int = 1, **labels: object) -> None:
        """Add ``value`` to the counter series ``name{labels}``."""
        if not self.enabled:
            return
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0) + int(value)

    def count_many(self, counts: Mapping[str, int], prefix: str = "",
                   **labels: object) -> None:
        """Fold a whole counter dict (e.g. retry tallies) into series."""
        if not self.enabled:
            return
        for name in sorted(counts):
            self.count(prefix + name, counts[name], **labels)

    def gauge_set(self, name: str, value: int, **labels: object) -> None:
        """Set the gauge series ``name{labels}`` (last write wins)."""
        if not self.enabled:
            return
        self._gauges[(name, _label_key(labels))] = int(value)

    def register_histogram(self, name: str,
                           bounds: Tuple[int, ...]) -> None:
        """Pin upper bucket bounds for ``name`` (sorted, exclusive of
        the implicit +Inf overflow bucket)."""
        self._hist_bounds[name] = tuple(bounds)

    def observe(self, name: str, value: int, **labels: object) -> None:
        """Record ``value`` into the histogram series ``name{labels}``."""
        if not self.enabled:
            return
        bounds = self._hist_bounds.get(name)
        if bounds is None:
            bounds = _FALLBACK_BOUNDS
            self._hist_bounds[name] = bounds
        key = (name, _label_key(labels))
        buckets = self._hist.get(key)
        if buckets is None:
            buckets = [0] * (len(bounds) + 1)
            self._hist[key] = buckets
        buckets[bisect_left(bounds, value)] += 1
        self._hist_sum[key] = self._hist_sum.get(key, 0) + int(value)

    def reset(self) -> None:
        """Drop all recorded series (enablement is left as-is)."""
        self._counters.clear()
        self._gauges.clear()
        self._hist.clear()
        self._hist_sum.clear()
        self._hist_bounds = dict(DEFAULT_HISTOGRAMS)

    # -- reading -------------------------------------------------------
    def counter_value(self, name: str, **labels: object) -> int:
        return self._counters.get((name, _label_key(labels)), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter family across all label sets."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def counter_families(self) -> Iterator[str]:
        yield from sorted({name for name, _ in self._counters})

    def histogram(self, name: str, **labels: object
                  ) -> Optional[Tuple[Tuple[int, ...], List[int], int]]:
        """(bounds, bucket counts, sum) for one series, or None."""
        key = (name, _label_key(labels))
        buckets = self._hist.get(key)
        if buckets is None:
            return None
        return (self._hist_bounds[name], list(buckets),
                self._hist_sum.get(key, 0))

    def snapshot(self) -> Dict[str, object]:
        """JSON-shaped, deterministically ordered view of every series.

        Wall-clock stage timings are deliberately absent — they vary
        run to run and live only in the exporters' side channel.
        """
        counters = [
            [name, [list(pair) for pair in labels], value]
            for (name, labels), value in sorted(self._counters.items())
        ]
        gauges = [
            [name, [list(pair) for pair in labels], value]
            for (name, labels), value in sorted(self._gauges.items())
        ]
        histograms = [
            [name, [list(pair) for pair in labels],
             list(self._hist_bounds[name]), list(buckets),
             self._hist_sum.get((name, labels), 0)]
            for (name, labels), buckets in sorted(self._hist.items())
        ]
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def fingerprint(self, exclude_prefixes: Tuple[str, ...] = ()) -> str:
        """Stable digest of all series outside ``exclude_prefixes``.

        Cross-mode identity checks (serial vs sharded) exclude the
        ``shard_`` family: those series describe the execution strategy
        itself, not the simulated workload.
        """
        snap = self.snapshot()
        if exclude_prefixes:
            for section in ("counters", "gauges", "histograms"):
                snap[section] = [
                    row for row in snap[section]  # type: ignore[union-attr]
                    if not str(row[0]).startswith(exclude_prefixes)]
        digest = hashlib.blake2b(repr(snap).encode("utf-8"),
                                 digest_size=8)
        return digest.hexdigest()

    # -- snapshot protocol (checkpoints, shard deltas) -----------------
    def export_state(self) -> Dict[str, object]:
        """Full copy of the recorded series for checkpoint capture."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "hist_bounds": dict(self._hist_bounds),
            "hist": {key: list(buckets)
                     for key, buckets in self._hist.items()},
            "hist_sum": dict(self._hist_sum),
        }

    def install_state(self, state: Mapping[str, object]) -> None:
        """Replace all series with a previously exported state."""
        self._counters = dict(state["counters"])  # type: ignore[arg-type]
        self._gauges = dict(state["gauges"])  # type: ignore[arg-type]
        self._hist_bounds = dict(
            state["hist_bounds"])  # type: ignore[arg-type]
        self._hist = {key: list(buckets) for key, buckets
                      in state["hist"].items()}  # type: ignore[union-attr]
        self._hist_sum = dict(state["hist_sum"])  # type: ignore[arg-type]


#: Process-global registry.  Forked shard workers inherit a memory
#: copy; their increments travel back as a TelemetryDelta (delta.py).
TELEMETRY = TelemetryRegistry()

StageTimer.listeners.append(TELEMETRY._on_stage)
