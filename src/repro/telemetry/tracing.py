"""Span tracing over the pipeline: stages → days → waves → shards.

Spans carry both clocks: wall time (``perf_counter``, sanctioned here
by the reprolint RL001 allowlist — instrumented modules never read the
wall clock themselves, they call into the tracer) and sim time, read
from the bound :class:`repro.sim.clock.SimClock` when the runner has
attached one.  The tree exports as Chrome trace-event JSON (loadable
in ``chrome://tracing`` / Perfetto) and as an indented text tree.

Tracing is write-only with respect to the simulation: recording a span
never touches platform state, RNG streams or the request log, so a
traced run stays byte-identical to an untraced one.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional

from repro.perf.instrumentation import StageTimer

#: Hard cap on retained spans; a pathological run degrades to counting
#: drops instead of exhausting memory.
MAX_SPANS = 200_000


class Span:
    """One timed region.  ``wall_*`` are perf_counter seconds relative
    to the process; ``sim_*`` are simulated epoch seconds (None when no
    sim clock was bound at record time)."""

    __slots__ = ("name", "args", "wall_start", "wall_end",
                 "sim_start", "sim_end", "children")

    def __init__(self, name: str, args: Dict[str, object],
                 wall_start: float, sim_start: Optional[int]) -> None:
        self.name = name
        self.args = args
        self.wall_start = wall_start
        self.wall_end = wall_start
        self.sim_start = sim_start
        self.sim_end = sim_start
        self.children: List["Span"] = []

    def wall_ms(self) -> float:
        return (self.wall_end - self.wall_start) * 1e3


class Tracer:
    """Builds a span forest; nesting follows begin/end bracketing."""

    def __init__(self) -> None:
        self.enabled = False
        #: SimClock bound by the runner once the world exists; forked
        #: shard children inherit the binding.
        self.clock = None
        self.roots: List[Span] = []
        self.dropped = 0
        self._stack: List[Span] = []
        self._count = 0
        self._stage_handles: List[Optional[Span]] = []

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def bind_clock(self, clock) -> None:
        self.clock = clock

    def reset(self) -> None:
        self.roots = []
        self.dropped = 0
        self._stack = []
        self._count = 0
        self._stage_handles = []

    def _on_stage(self, name: str, entering: bool) -> None:
        """StageTimer listener: every timed pipeline stage becomes a
        span, so the trace inherits build/milking/campaign/detection
        structure without instrumenting the runner twice."""
        if entering:
            self._stage_handles.append(self.begin(name, kind="stage"))
        elif self._stage_handles:
            self.end(self._stage_handles.pop())

    def _sim_now(self) -> Optional[int]:
        if self.clock is None:
            return None
        return self.clock.now()

    def begin(self, name: str, **args: object) -> Optional[Span]:
        """Open a span; returns a handle for :meth:`end`, or None when
        tracing is off or the span budget is spent."""
        if not self.enabled:
            return None
        if self._count >= MAX_SPANS:
            self.dropped += 1
            return None
        self._count += 1
        span = Span(name, args, perf_counter(), self._sim_now())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Optional[Span]) -> None:
        if span is None:
            return
        span.wall_end = perf_counter()
        span.sim_end = self._sim_now()
        if span in self._stack:
            self._stack.remove(span)

    @contextmanager
    def span(self, name: str, **args: object) -> Iterator[None]:
        handle = self.begin(name, **args)
        try:
            yield
        finally:
            self.end(handle)

    def walk(self) -> Iterator[Span]:
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))


#: Process-global tracer.  Enabled by ``repro run --telemetry``;
#: the metrics registry can run with tracing off (bench mode).
TRACER = Tracer()

StageTimer.listeners.append(TRACER._on_stage)
