"""Deterministic telemetry plane: metrics, spans, shard-merged exports.

The subsystem watches the pipeline the way the paper's operators watched
production (§5-§6: rate-limit deployments, invalidation bursts, live
SynchroTrap) while staying invisible to the simulation itself: seeded
runs with telemetry enabled are byte-identical to runs with it
disabled, and sharded runs merge child deltas into exactly the metrics
a serial run records.

Layout:

- :mod:`repro.telemetry.registry` — counters/gauges/histograms keyed by
  name + sorted label tuples (integer-valued, so merges are exact).
- :mod:`repro.telemetry.tracing` — span tree over stages, campaign
  days, delivery waves and shard children; Chrome-trace + text export.
- :mod:`repro.telemetry.delta` — :class:`TelemetryDelta` shard workers
  ship alongside ``ShardDayDelta``; parent-side merge.
- :mod:`repro.telemetry.export` — Prometheus text exposition, JSON and
  trace writers behind ``repro run --telemetry`` / ``repro metrics``.
"""

from repro.telemetry.delta import TelemetryDelta, capture_delta, merge_delta
from repro.telemetry.export import (
    chrome_trace,
    histogram_quantiles,
    metrics_json,
    prometheus_text,
    render_metrics,
    render_span_tree,
    write_telemetry,
)
from repro.telemetry.registry import TELEMETRY, TelemetryRegistry
from repro.telemetry.tracing import TRACER, Span, Tracer

__all__ = [
    "TELEMETRY",
    "TRACER",
    "Span",
    "TelemetryDelta",
    "TelemetryRegistry",
    "Tracer",
    "capture_delta",
    "chrome_trace",
    "histogram_quantiles",
    "merge_delta",
    "metrics_json",
    "prometheus_text",
    "render_metrics",
    "render_span_tree",
    "write_telemetry",
]
