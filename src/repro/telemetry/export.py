"""Exporters: Prometheus text exposition, JSON, Chrome trace, text tree.

Exports are pure functions of the registry/tracer state.  The metrics
documents are deterministic across seeded runs; the trace documents
carry wall-clock timings by design (that is what a trace is for) and
are therefore never part of an identity comparison.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.telemetry.registry import TelemetryRegistry
from repro.telemetry.tracing import Span, Tracer


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(labels: Sequence[Sequence[str]],
                   extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [(str(k), str(v)) for k, v in labels] + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def prometheus_text(registry: TelemetryRegistry) -> str:
    """Render every series in Prometheus text exposition format."""
    snap = registry.snapshot()
    lines: List[str] = []
    seen_types: Dict[str, str] = {}

    def _type_line(name: str, kind: str) -> None:
        if seen_types.get(name) != kind:
            seen_types[name] = kind
            lines.append(f"# TYPE {name} {kind}")

    for name, labels, value in snap["counters"]:  # type: ignore[union-attr]
        _type_line(name, "counter")
        lines.append(f"{name}{_render_labels(labels)} {value}")
    for name, labels, value in snap["gauges"]:  # type: ignore[union-attr]
        _type_line(name, "gauge")
        lines.append(f"{name}{_render_labels(labels)} {value}")
    for name, labels, bounds, buckets, total in (
            snap["histograms"]):  # type: ignore[union-attr]
        _type_line(name, "histogram")
        cumulative = 0
        for bound, count in zip(bounds, buckets):
            cumulative += count
            lines.append(
                f"{name}_bucket"
                f"{_render_labels(labels, (('le', str(bound)),))}"
                f" {cumulative}")
        cumulative += buckets[len(bounds)]
        lines.append(
            f"{name}_bucket{_render_labels(labels, (('le', '+Inf'),))}"
            f" {cumulative}")
        lines.append(f"{name}_sum{_render_labels(labels)} {total}")
        lines.append(f"{name}_count{_render_labels(labels)} {cumulative}")
    return "\n".join(lines) + "\n"


def metrics_json(registry: TelemetryRegistry) -> Dict[str, object]:
    """JSON document: deterministic series + wall-clock stage sidecar."""
    return {
        "fingerprint": registry.fingerprint(),
        "metrics": registry.snapshot(),
        # Wall-clock side channel (the perf StageTimer view).  Varies
        # run to run; excluded from the fingerprint on purpose.
        "stages": {
            "seconds": dict(registry.stages.stages),
            "counters": dict(registry.stages.counters),
        },
    }


def histogram_quantiles(bounds: Sequence[int], buckets: Sequence[int],
                        percents: Sequence[int] = (50, 95, 99),
                        ) -> Dict[str, object]:
    """Upper-bound quantile estimates from bucket counts.

    Integer arithmetic throughout: the pN is the upper bound of the
    bucket holding the ceil(N% * count)-th observation, or None when
    that observation overflowed the last bound.  Deterministic, so
    quantiles are safe to bake into benchmark baselines.
    """
    total = sum(buckets)
    out: Dict[str, object] = {"count": total}
    for percent in percents:
        key = f"p{percent}"
        if total == 0:
            out[key] = None
            continue
        rank = -(-percent * total // 100)  # ceil without floats
        cumulative = 0
        value: object = None
        for index, count in enumerate(buckets):
            cumulative += count
            if cumulative >= rank:
                value = (bounds[index] if index < len(bounds) else None)
                break
        out[key] = value
    return out


def render_metrics(payload: Dict[str, object]) -> str:
    """Human rendering of a ``metrics.json`` document."""
    metrics = payload["metrics"]
    lines: List[str] = [f"fingerprint: {payload['fingerprint']}"]
    counters = metrics["counters"]  # type: ignore[index]
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, labels, value in counters:
            lines.append(f"  {name}{_render_labels(labels)} {value}")
    gauges = metrics["gauges"]  # type: ignore[index]
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for name, labels, value in gauges:
            lines.append(f"  {name}{_render_labels(labels)} {value}")
    histograms = metrics["histograms"]  # type: ignore[index]
    if histograms:
        lines.append("")
        lines.append("histograms:")
        for name, labels, bounds, buckets, total in histograms:
            quantiles = histogram_quantiles(bounds, buckets)
            rendered = " ".join(
                f"{key}={'inf' if val is None else val}"
                for key, val in quantiles.items() if key != "count")
            lines.append(f"  {name}{_render_labels(labels)} "
                         f"count={quantiles['count']} sum={total} "
                         f"{rendered}")
    stages = payload.get("stages", {})
    seconds = stages.get("seconds", {}) if isinstance(stages, dict) else {}
    if seconds:
        lines.append("")
        lines.append("stages (wall seconds, non-deterministic):")
        for name, value in seconds.items():
            lines.append(f"  {name} {value:.3f}")
    return "\n".join(lines) + "\n"


def chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """Chrome trace-event JSON (load in chrome://tracing or Perfetto).

    Wall times become ``ts``/``dur`` microseconds; sim times ride in
    each event's ``args`` so both clocks stay visible side by side.
    """
    spans = list(tracer.walk())
    origin = min((s.wall_start for s in spans), default=0.0)
    events: List[Dict[str, object]] = [{
        "ph": "M", "pid": 1, "tid": 1, "name": "process_name",
        "args": {"name": "repro pipeline"},
    }]
    for span in spans:
        args: Dict[str, object] = dict(span.args)
        if span.sim_start is not None:
            args["sim_start"] = span.sim_start
            args["sim_end"] = span.sim_end
        events.append({
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "name": span.name,
            "ts": int((span.wall_start - origin) * 1e6),
            "dur": int((span.wall_end - span.wall_start) * 1e6),
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"dropped_spans": tracer.dropped},
    }


def _render_span(span: Span, depth: int, lines: List[str]) -> None:
    sim = ""
    if span.sim_start is not None and span.sim_end is not None:
        sim = f" sim={span.sim_start}..{span.sim_end}"
    args = "".join(f" {k}={v}" for k, v in sorted(span.args.items()))
    lines.append(f"{'  ' * depth}{span.name}"
                 f" wall={span.wall_ms():.2f}ms{sim}{args}")
    for child in span.children:
        _render_span(child, depth + 1, lines)


def render_span_tree(tracer: Tracer) -> str:
    """Indented text rendering of the span forest."""
    lines: List[str] = []
    for root in tracer.roots:
        _render_span(root, 0, lines)
    if tracer.dropped:
        lines.append(f"[{tracer.dropped} spans dropped at the "
                     f"{tracer._count} span cap]")
    return "\n".join(lines) + ("\n" if lines else "")


def write_telemetry(out_dir: str, registry: TelemetryRegistry,
                    tracer: Tracer) -> Dict[str, str]:
    """Write the full export set; returns the artifact paths."""
    root = Path(out_dir)
    root.mkdir(parents=True, exist_ok=True)
    paths = {
        "prometheus": root / "metrics.prom",
        "json": root / "metrics.json",
        "trace": root / "trace.json",
        "spans": root / "spans.txt",
    }
    paths["prometheus"].write_text(prometheus_text(registry),
                                   encoding="utf-8")
    payload = metrics_json(registry)
    paths["json"].write_text(json.dumps(payload, indent=2, sort_keys=True)
                             + "\n", encoding="utf-8")
    paths["trace"].write_text(json.dumps(chrome_trace(tracer)) + "\n",
                              encoding="utf-8")
    paths["spans"].write_text(render_span_tree(tracer), encoding="utf-8")
    return {name: str(path) for name, path in paths.items()}
