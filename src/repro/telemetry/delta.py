"""Cross-process telemetry merge for sharded campaign days.

A forked shard worker inherits a memory copy of the global registry;
everything it records during its component is invisible to the parent.
The worker therefore snapshots the registry when the component starts,
diffs at the end, and ships the difference as a :class:`TelemetryDelta`
on the ``ShardDayDelta`` it already returns.  The parent folds deltas
in component order; because every metric value is an integer, fold
order cannot change the result and sharded runs reproduce a serial
run's metrics exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.telemetry.registry import MetricKey, TelemetryRegistry


@dataclass(frozen=True)
class TelemetryDelta:
    """Per-component metric increments (and gauge last-writes)."""

    #: Counter increments since the component's base snapshot.
    counters: Dict[MetricKey, int]
    #: Gauges written during the component (last value wins on merge).
    gauges: Dict[MetricKey, int]
    #: Histogram bucket-count increments, aligned to ``hist_bounds``.
    histograms: Dict[MetricKey, List[int]]
    #: Histogram sum increments.
    histogram_sums: Dict[MetricKey, int]
    #: Bucket bounds for any family first observed in the child.
    hist_bounds: Dict[str, Tuple[int, ...]]


def capture_delta(registry: TelemetryRegistry,
                  base: Mapping[str, object]) -> TelemetryDelta:
    """Diff the registry against a ``base`` ``export_state()`` snapshot."""
    state = registry.export_state()
    base_counters: Mapping[MetricKey, int] = base["counters"]  # type: ignore[assignment]
    counters = {
        key: value - base_counters.get(key, 0)
        for key, value in state["counters"].items()  # type: ignore[union-attr]
        if value != base_counters.get(key, 0)
    }
    base_gauges: Mapping[MetricKey, int] = base["gauges"]  # type: ignore[assignment]
    gauges = {
        key: value
        for key, value in state["gauges"].items()  # type: ignore[union-attr]
        if base_gauges.get(key) != value
    }
    base_hist: Mapping[MetricKey, List[int]] = base["hist"]  # type: ignore[assignment]
    histograms: Dict[MetricKey, List[int]] = {}
    for key, buckets in state["hist"].items():  # type: ignore[union-attr]
        before = base_hist.get(key)
        if before is None:
            diff = list(buckets)
        else:
            diff = [b - a for a, b in zip(before, buckets)]
        if any(diff):
            histograms[key] = diff
    base_sums: Mapping[MetricKey, int] = base["hist_sum"]  # type: ignore[assignment]
    histogram_sums = {
        key: value - base_sums.get(key, 0)
        for key, value in state["hist_sum"].items()  # type: ignore[union-attr]
        if value != base_sums.get(key, 0)
    }
    return TelemetryDelta(
        counters=counters,
        gauges=gauges,
        histograms=histograms,
        histogram_sums=histogram_sums,
        hist_bounds=dict(state["hist_bounds"]),  # type: ignore[arg-type]
    )


def merge_delta(registry: TelemetryRegistry,
                delta: TelemetryDelta) -> None:
    """Fold one component's increments into the parent registry.

    Bypasses the ``enabled`` gate: the parent decides enablement, and a
    delta only exists because recording was on when the child forked.
    """
    for name, bounds in sorted(delta.hist_bounds.items()):
        registry._hist_bounds.setdefault(name, tuple(bounds))
    counters = registry._counters
    for key in sorted(delta.counters):
        counters[key] = counters.get(key, 0) + delta.counters[key]
    gauges = registry._gauges
    for key in sorted(delta.gauges):
        gauges[key] = delta.gauges[key]
    hist = registry._hist
    for key in sorted(delta.histograms):
        diff = delta.histograms[key]
        buckets = hist.get(key)
        if buckets is None:
            hist[key] = list(diff)
        else:
            for i, inc in enumerate(diff):
                buckets[i] += inc
    sums = registry._hist_sum
    for key in sorted(delta.histogram_sums):
        sums[key] = sums.get(key, 0) + delta.histogram_sums[key]
