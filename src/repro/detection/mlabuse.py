"""Feature-based token-abuse detection (the paper's §8 future work).

The paper closes by proposing "more sophisticated machine learning based
approaches to robustly detect access token abuse".  This module
implements that proposal over the Graph API request log: per-token
behavioural/infrastructure features and a from-scratch logistic
regression.

The decisive features are *infrastructural*, not temporal: a leaked
token abused by a collusion network acts from datacenter IPs that serve
thousands of other tokens, while a legitimate user's token acts from one
residential address it shares with nobody.  That is why this detector
succeeds where temporal clustering (§6.3) fails.
"""

from __future__ import annotations

import math
import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graphapi.log import RequestLog
from repro.sim.clock import DAY

FEATURE_NAMES = (
    "likes_per_day",
    "distinct_ips",
    "max_ip_cotenancy",     # tokens sharing the token's busiest IP
    "datacenter_share",     # fraction of actions from known-AS space
    "target_owner_diversity",
)


@dataclass(frozen=True)
class TokenFeatures:
    """Behavioural fingerprint of one access token."""

    token: str
    user_id: Optional[str]
    likes_per_day: float
    distinct_ips: int
    max_ip_cotenancy: int
    datacenter_share: float
    target_owner_diversity: float

    def vector(self) -> List[float]:
        return [
            self.likes_per_day,
            float(self.distinct_ips),
            float(self.max_ip_cotenancy),
            self.datacenter_share,
            self.target_owner_diversity,
        ]


def extract_token_features(log: RequestLog,
                           since: Optional[int] = None) -> List[TokenFeatures]:
    """Compute per-token features over successful like requests."""
    likes_by_token: Dict[str, int] = defaultdict(int)
    days_by_token: Dict[str, Set[int]] = defaultdict(set)
    ips_by_token: Dict[str, Set[str]] = defaultdict(set)
    targets_by_token: Dict[str, Set[str]] = defaultdict(set)
    datacenter_by_token: Dict[str, int] = defaultdict(int)
    tokens_by_ip: Dict[str, Set[str]] = defaultdict(set)
    user_by_token: Dict[str, Optional[str]] = {}

    columns = log.like_columns(
        ("timestamp", "token", "user_id", "source_ip", "asn",
         "target_id"), since=since)
    for timestamp, token, user_id, source_ip, asn, target_id in zip(
            *columns):
        likes_by_token[token] += 1
        days_by_token[token].add(timestamp // DAY)
        user_by_token.setdefault(token, user_id)
        if source_ip is not None:
            ips_by_token[token].add(source_ip)
            tokens_by_ip[source_ip].add(token)
        if asn is not None:
            datacenter_by_token[token] += 1
        if target_id is not None:
            targets_by_token[token].add(target_id)

    features: List[TokenFeatures] = []
    for token, likes in likes_by_token.items():
        active_days = max(1, len(days_by_token[token]))
        cotenancy = max(
            (len(tokens_by_ip[ip]) for ip in ips_by_token[token]),
            default=1)
        features.append(TokenFeatures(
            token=token,
            user_id=user_by_token.get(token),
            likes_per_day=likes / active_days,
            distinct_ips=len(ips_by_token[token]),
            max_ip_cotenancy=cotenancy,
            datacenter_share=datacenter_by_token[token] / likes,
            target_owner_diversity=len(targets_by_token[token]) / likes,
        ))
    return features


class LogisticAbuseClassifier:
    """Plain-Python logistic regression with feature standardization."""

    def __init__(self, learning_rate: float = 0.5, epochs: int = 300,
                 l2: float = 1e-3) -> None:
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.weights: List[float] = []
        self.bias = 0.0
        self._means: List[float] = []
        self._stds: List[float] = []

    # ------------------------------------------------------------------
    def _standardize(self, rows: List[List[float]],
                     fit: bool) -> List[List[float]]:
        if fit:
            n_features = len(rows[0])
            self._means = [sum(r[j] for r in rows) / len(rows)
                           for j in range(n_features)]
            self._stds = []
            for j in range(n_features):
                variance = (sum((r[j] - self._means[j]) ** 2 for r in rows)
                            / len(rows))
                self._stds.append(max(1e-9, math.sqrt(variance)))
        return [[(r[j] - self._means[j]) / self._stds[j]
                 for j in range(len(self._means))] for r in rows]

    @staticmethod
    def _sigmoid(z: float) -> float:
        if z >= 0:
            return 1.0 / (1.0 + math.exp(-z))
        ez = math.exp(z)
        return ez / (1.0 + ez)

    # ------------------------------------------------------------------
    def fit(self, samples: Sequence[TokenFeatures],
            labels: Sequence[int]) -> "LogisticAbuseClassifier":
        if len(samples) != len(labels) or not samples:
            raise ValueError("need equal, non-empty samples and labels")
        rows = self._standardize([s.vector() for s in samples], fit=True)
        n = len(rows)
        k = len(rows[0])
        self.weights = [0.0] * k
        self.bias = 0.0
        for _ in range(self.epochs):
            grad_w = [0.0] * k
            grad_b = 0.0
            for row, label in zip(rows, labels):
                z = self.bias + sum(w * x for w, x in zip(self.weights,
                                                          row))
                error = self._sigmoid(z) - label
                for j in range(k):
                    grad_w[j] += error * row[j]
                grad_b += error
            for j in range(k):
                grad_w[j] = grad_w[j] / n + self.l2 * self.weights[j]
                self.weights[j] -= self.learning_rate * grad_w[j]
            self.bias -= self.learning_rate * grad_b / n
        return self

    def predict_proba(self, sample: TokenFeatures) -> float:
        if not self.weights:
            raise RuntimeError("classifier is not fitted")
        row = self._standardize([sample.vector()], fit=False)[0]
        z = self.bias + sum(w * x for w, x in zip(self.weights, row))
        return self._sigmoid(z)

    def predict(self, sample: TokenFeatures,
                threshold: float = 0.5) -> bool:
        return self.predict_proba(sample) >= threshold


@dataclass
class AbuseDetectionResult:
    """Outcome of scoring a token population."""

    flagged_tokens: Set[str]
    flagged_users: Set[str]
    scores: Dict[str, float]


def detect_abusive_tokens(classifier: LogisticAbuseClassifier,
                          samples: Iterable[TokenFeatures],
                          threshold: float = 0.5) -> AbuseDetectionResult:
    """Score every token and flag those above ``threshold``."""
    flagged_tokens: Set[str] = set()
    flagged_users: Set[str] = set()
    scores: Dict[str, float] = {}
    for sample in samples:
        score = classifier.predict_proba(sample)
        scores[sample.token] = score
        if score >= threshold:
            flagged_tokens.add(sample.token)
            if sample.user_id is not None:
                flagged_users.add(sample.user_id)
    return AbuseDetectionResult(flagged_tokens=flagged_tokens,
                                flagged_users=flagged_users,
                                scores=scores)


def train_test_split(samples: List[TokenFeatures], labels: List[int],
                     test_fraction: float = 0.3,
                     seed: int = 0) -> Tuple[List[TokenFeatures], List[int],
                                             List[TokenFeatures], List[int]]:
    """Deterministic shuffled split for evaluation."""
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    order = list(range(len(samples)))
    random.Random(seed).shuffle(order)  # reprolint: disable=RL601 — offline train/test split on exported features; never touches the campaign stream surface
    cut = int(len(order) * (1 - test_fraction))
    train_idx, test_idx = order[:cut], order[cut:]
    return ([samples[i] for i in train_idx],
            [labels[i] for i in train_idx],
            [samples[i] for i in test_idx],
            [labels[i] for i in test_idx])
