"""Precision/recall evaluation of detection runs against ground truth."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

from repro.detection.synchrotrap import DetectionResult


@dataclass(frozen=True)
class DetectionMetrics:
    """Standard detection quality numbers."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def evaluate_detection(result: DetectionResult,
                       ground_truth: Iterable[str]) -> DetectionMetrics:
    """Score flagged accounts against the known-colluding set."""
    truth: Set[str] = set(ground_truth)
    flagged = result.flagged_accounts
    tp = len(flagged & truth)
    return DetectionMetrics(
        true_positives=tp,
        false_positives=len(flagged) - tp,
        false_negatives=len(truth) - tp,
    )
