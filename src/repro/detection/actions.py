"""The action abstraction detection algorithms consume."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True, slots=True)
class Action:
    """One attributed user action (a like, in this reproduction)."""

    actor: str
    target: str
    timestamp: int


def actions_from_request_log(log, since: Optional[int] = None,
                             until: Optional[int] = None) -> List[Action]:
    """Convert successful like records from a Graph API request log into
    detector actions."""
    actions: List[Action] = []
    for record in log.like_requests(since=since):
        if until is not None and record.timestamp >= until:
            continue
        if record.user_id is None or record.target_id is None:
            continue
        actions.append(Action(actor=record.user_id,
                              target=record.target_id,
                              timestamp=record.timestamp))
    return actions
