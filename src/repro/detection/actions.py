"""The action abstraction detection algorithms consume."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True, slots=True)
class Action:
    """One attributed user action (a like, in this reproduction)."""

    actor: str
    target: str
    timestamp: int


def actions_from_request_log(log, since: Optional[int] = None,
                             until: Optional[int] = None) -> List[Action]:
    """Convert successful like records from a Graph API request log into
    detector actions."""
    timestamps, users, targets = log.like_columns(
        ("timestamp", "user_id", "target_id"), since=since)
    actions: List[Action] = []
    for timestamp, user_id, target_id in zip(timestamps, users, targets):
        if until is not None and timestamp >= until:
            continue
        if user_id is None or target_id is None:
            continue
        actions.append(Action(actor=user_id, target=target_id,
                              timestamp=timestamp))
    return actions
