"""Disjoint-set forest used by the clustering detectors."""

from __future__ import annotations

from typing import Dict, Hashable, List


class UnionFind:
    """Union-find with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}

    def find(self, item: Hashable) -> Hashable:
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._size[item] = 1
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path compression
            parent[item], item = root, parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def groups(self) -> List[List[Hashable]]:
        """All current components as lists of members."""
        by_root: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return list(by_root.values())
