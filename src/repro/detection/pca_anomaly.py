"""PCA-based anomalous-behaviour detection (after Viswanath et al.,
USENIX Security 2014 — the §7.3 baseline).

Models each account as its daily like-count timeseries, learns the
principal subspace of *normal* behaviour from a trusted population, and
flags accounts whose behaviour has a large residual outside that
subspace.  The paper's discussion (§7.3) anticipates the outcome on
collusion networks: because colluding accounts mix real and fake
activity at low per-account volume, most of them sit inside the normal
subspace — high-volume automation is caught, pool-sampled collusion is
not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Set

import numpy as np

from repro.detection.actions import Action
from repro.sim.clock import DAY


def account_daily_vectors(actions: Iterable[Action], window_days: int,
                          start: int = 0) -> Dict[str, np.ndarray]:
    """Per-account daily like-count vectors over ``window_days``."""
    if window_days <= 0:
        raise ValueError("window_days must be positive")
    vectors: Dict[str, np.ndarray] = {}
    for action in actions:
        day = (action.timestamp - start) // DAY
        if not 0 <= day < window_days:
            continue
        if action.actor not in vectors:
            vectors[action.actor] = np.zeros(window_days)
        vectors[action.actor][day] += 1.0
    return vectors


@dataclass
class PcaDetectionResult:
    flagged_accounts: Set[str]
    scores: Dict[str, float]
    threshold: float


class PcaAnomalyDetector:
    """Residual-subspace anomaly scoring over behaviour vectors."""

    def __init__(self, variance_retained: float = 0.95,
                 threshold_sigmas: float = 3.0) -> None:
        if not 0 < variance_retained <= 1:
            raise ValueError("variance_retained must be in (0, 1]")
        self.variance_retained = variance_retained
        self.threshold_sigmas = threshold_sigmas
        self._mean: Optional[np.ndarray] = None
        self._components: Optional[np.ndarray] = None
        self.threshold: Optional[float] = None

    # ------------------------------------------------------------------
    def fit(self, normal_vectors: Sequence[np.ndarray]) -> "PcaAnomalyDetector":
        """Learn the normal subspace and the residual threshold."""
        if len(normal_vectors) < 2:
            raise ValueError("need at least two normal samples")
        matrix = np.asarray(normal_vectors, dtype=float)
        self._mean = matrix.mean(axis=0)
        centered = matrix - self._mean
        # SVD gives principal directions without forming the covariance.
        _, singular_values, vt = np.linalg.svd(centered,
                                               full_matrices=False)
        energy = singular_values ** 2
        total = float(energy.sum())
        if total <= 0:
            # Degenerate training set (all-identical rows): keep one
            # component; every deviation becomes residual.
            k = 1
        else:
            cumulative = np.cumsum(energy) / total
            k = int(np.searchsorted(cumulative,
                                    self.variance_retained) + 1)
        self._components = vt[:k]
        residuals = np.array([self._residual(v) for v in matrix])
        self.threshold = float(residuals.mean()
                               + self.threshold_sigmas * residuals.std())
        if self.threshold <= 0:
            self.threshold = 1e-9
        return self

    def _residual(self, vector: np.ndarray) -> float:
        if self._mean is None or self._components is None:
            raise RuntimeError("detector is not fitted")
        centered = np.asarray(vector, dtype=float) - self._mean
        projection = self._components.T @ (self._components @ centered)
        return float(np.linalg.norm(centered - projection))

    def score(self, vector: np.ndarray) -> float:
        """Residual norm outside the normal subspace."""
        return self._residual(vector)

    # ------------------------------------------------------------------
    def detect(self, vectors: Dict[str, np.ndarray]) -> PcaDetectionResult:
        """Flag accounts whose residual exceeds the learned threshold."""
        if self.threshold is None:
            raise RuntimeError("detector is not fitted")
        scores = {account: self.score(vector)
                  for account, vector in vectors.items()}
        flagged = {account for account, score in scores.items()
                   if score > self.threshold}
        return PcaDetectionResult(flagged_accounts=flagged,
                                  scores=scores,
                                  threshold=self.threshold)
