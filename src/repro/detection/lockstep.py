"""A CopyCatch-style lockstep detector (after Beutel et al.).

Looks for groups of accounts that co-like many of the *same targets*
(ignoring fine-grained timing): near-bipartite-cores in the account ×
target graph.  Serves as the baseline the paper contrasts with temporal
clustering — collusion networks evade it the same way, by never reusing
the same subset of accounts across targets.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, Iterable, Set, Tuple

from repro.detection.actions import Action
from repro.detection.synchrotrap import DetectionResult
from repro.detection.unionfind import UnionFind


class LockstepDetector:
    """Flags account groups sharing at least ``min_common_targets``."""

    def __init__(self, min_common_targets: int = 5,
                 min_cluster_size: int = 10,
                 max_target_actors: int = 200,
                 sample_seed: int = 11) -> None:
        self.min_common_targets = min_common_targets
        self.min_cluster_size = min_cluster_size
        self.max_target_actors = max_target_actors
        self._rng = random.Random(sample_seed)  # reprolint: disable=RL601 — detector-side target down-sampler over an exported action log; off the campaign divergence surface

    def detect(self, actions: Iterable[Action]) -> DetectionResult:
        by_target: Dict[str, Set[str]] = defaultdict(set)
        for action in actions:
            by_target[action.target].add(action.actor)

        co_targets: Dict[Tuple[str, str], int] = defaultdict(int)
        for actors in by_target.values():
            if len(actors) < 2:
                continue
            members = sorted(actors)
            if len(members) > self.max_target_actors:
                members = self._rng.sample(members, self.max_target_actors)
                members.sort()
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    co_targets[(a, b)] += 1

        uf = UnionFind()
        edges = 0
        for (a, b), shared in co_targets.items():
            if shared >= self.min_common_targets:
                uf.union(a, b)
                edges += 1

        clusters = [sorted(group) for group in uf.groups()
                    if len(group) >= self.min_cluster_size]
        flagged: Set[str] = set()
        for cluster in clusters:
            flagged.update(cluster)
        return DetectionResult(
            flagged_accounts=flagged,
            clusters=sorted(clusters, key=len, reverse=True),
            pairs_scored=len(co_targets),
            edges=edges,
        )
