"""Detection algorithms for reputation manipulation.

Implements the temporal-clustering detector the paper evaluated against
collusion networks (§6.3) — a SynchroTrap-style algorithm after Cao et
al. — plus a CopyCatch-style lockstep baseline, and evaluation helpers.
"""

from repro.detection.actions import Action, actions_from_request_log
from repro.detection.synchrotrap import SynchroTrap, DetectionResult
from repro.detection.lockstep import LockstepDetector
from repro.detection.evaluation import DetectionMetrics, evaluate_detection
from repro.detection.mlabuse import (
    AbuseDetectionResult,
    LogisticAbuseClassifier,
    TokenFeatures,
    detect_abusive_tokens,
    extract_token_features,
)

__all__ = [
    "Action",
    "actions_from_request_log",
    "SynchroTrap",
    "DetectionResult",
    "LockstepDetector",
    "DetectionMetrics",
    "evaluate_detection",
    "AbuseDetectionResult",
    "LogisticAbuseClassifier",
    "TokenFeatures",
    "detect_abusive_tokens",
    "extract_token_features",
]
