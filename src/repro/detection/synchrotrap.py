"""A SynchroTrap-style temporal clustering detector (after Cao et al.).

The algorithm flags groups of accounts that *act similarly at around the
same time for a sustained period*:

1. every action is bucketed by (target, time window);
2. accounts co-occurring in a bucket get one "matched action";
3. pair similarity = matches / min(action counts) (a Jaccard-containment
   hybrid; Cao et al. use per-day Jaccard, which behaves equivalently on
   this data);
4. pairs above the similarity threshold with enough matched actions
   become edges; single-linkage components of at least
   ``min_cluster_size`` accounts are flagged.

§6.3's negative result falls out of the arithmetic: colluding accounts
are drawn from six-figure token pools, so any two of them co-like at most
one or two honeypot posts and never accumulate ``min_matched_actions``,
while a real lockstep botnet (same accounts, many shared targets, tight
timing) exceeds every threshold.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.detection.actions import Action
from repro.detection.unionfind import UnionFind
from repro.telemetry.registry import TELEMETRY


@dataclass
class DetectionResult:
    """What a detector run produced."""

    flagged_accounts: Set[str]
    clusters: List[List[str]]
    pairs_scored: int
    edges: int

    @property
    def flagged_count(self) -> int:
        return len(self.flagged_accounts)


class SynchroTrap:
    """Temporal clustering over (target, time-window) co-actions."""

    def __init__(self, window_seconds: int = 3600,
                 similarity_threshold: float = 0.5,
                 min_matched_actions: int = 5,
                 min_cluster_size: int = 10,
                 max_bucket_actors: int = 200,
                 sample_seed: int = 7) -> None:
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        if not 0 < similarity_threshold <= 1:
            raise ValueError("similarity threshold must be in (0, 1]")
        self.window_seconds = window_seconds
        self.similarity_threshold = similarity_threshold
        self.min_matched_actions = min_matched_actions
        self.min_cluster_size = min_cluster_size
        #: Buckets larger than this are down-sampled (the MapReduce
        #: original shards this step across a cluster; sampling keeps the
        #: single-process run tractable with the same verdicts).
        self.max_bucket_actors = max_bucket_actors
        self._rng = random.Random(sample_seed)  # reprolint: disable=RL601 — detector-side bucket down-sampler over an exported action log; off the campaign divergence surface

    # ------------------------------------------------------------------
    def detect(self, actions: Iterable[Action]) -> DetectionResult:
        # Phase 1: the inverted index — (target, window) -> actor set.
        action_counts: Dict[str, int] = defaultdict(int)
        buckets: Dict[Tuple[str, int], Set[str]] = defaultdict(set)
        window = self.window_seconds
        half = window // 2
        last_key: Optional[Tuple[str, str, int]] = None
        last_edged = False
        for action in actions:
            actor = action.actor
            action_counts[actor] += 1
            bucket, remainder = divmod(action.timestamp, window)
            # An action near a bucket edge also matches the next bucket.
            edge = remainder > half
            key = (actor, action.target, bucket)
            if key == last_key and (last_edged or not edge):
                # Repeat of the previous (actor, target, window): both
                # inserts would leave the actor sets unchanged.
                continue
            buckets[(action.target, bucket)].add(actor)
            if edge:
                buckets[(action.target, bucket + 1)].add(actor)
                last_edged = True
            elif key != last_key:
                last_edged = False
            last_key = key

        # Phase 2: co-occurrence counting.  combinations() over the
        # sorted members feeds Counter.update at C speed, replacing the
        # nested Python pair loops; pairs arrive in the same (a < b)
        # order, so downstream union order is unchanged.
        matches: Counter = Counter()
        sample = self._rng.sample
        cap = self.max_bucket_actors
        for actors in buckets.values():
            if len(actors) < 2:
                continue
            members = sorted(actors)
            if len(members) > cap:
                # Down-sample by index position: consumes the identical
                # RNG stream as sampling the members directly, and the
                # sorted index list keeps members sorted without a
                # second pass over strings.
                picked = sample(range(len(members)), cap)
                picked.sort()
                members = [members[i] for i in picked]
            matches.update(combinations(members, 2))

        uf = UnionFind()
        edges = 0
        for (a, b), matched in matches.items():
            if matched < self.min_matched_actions:
                continue
            denom = min(action_counts[a], action_counts[b])
            if denom == 0:
                continue
            similarity = matched / denom
            if similarity >= self.similarity_threshold:
                uf.union(a, b)
                edges += 1

        clusters = [sorted(group) for group in uf.groups()
                    if len(group) >= self.min_cluster_size]
        flagged: Set[str] = set()
        for cluster in clusters:
            flagged.update(cluster)
        if TELEMETRY.enabled:
            TELEMETRY.count("detection_pairs_scored_total", len(matches))
            TELEMETRY.count("detection_edges_total", edges)
            TELEMETRY.count("detection_clusters_total", len(clusters))
            TELEMETRY.count("detection_flagged_accounts_total",
                            len(flagged))
        return DetectionResult(
            flagged_accounts=flagged,
            clusters=sorted(clusters, key=len, reverse=True),
            pairs_scored=len(matches),
            edges=edges,
        )
