"""Simulation kernel: virtual time, deterministic randomness, id allocation.

Every stochastic component in the reproduction draws randomness from a
:class:`~repro.sim.rng.RngFactory` and reads time from a
:class:`~repro.sim.clock.SimClock`.  Nothing in the library touches wall-clock
time or the global :mod:`random` state, which makes every experiment exactly
repeatable from a single integer seed.
"""

from repro.sim.clock import SimClock, Duration, HOUR, MINUTE, DAY, SECOND
from repro.sim.ids import IdAllocator
from repro.sim.rng import RngFactory, derive_seed
from repro.sim.events import EventScheduler, ScheduledEvent

__all__ = [
    "SimClock",
    "Duration",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "IdAllocator",
    "RngFactory",
    "derive_seed",
    "EventScheduler",
    "ScheduledEvent",
]
