"""Deterministic randomness.

A single master seed fans out into independent, named random streams so that
adding a new consumer of randomness does not perturb existing streams (a
common reproducibility bug when everything shares one ``random.Random``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``master_seed`` and ``name``.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (``hash()`` is salted per-process and unsuitable here).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngFactory:
    """Hands out named, independent :class:`random.Random` streams.

    Requesting the same name twice returns the *same* generator instance, so
    a stream's state is shared by all code that asks for that name.
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(
                derive_seed(self._master_seed, name)
            )
        return self._streams[name]

    def fresh(self, name: str) -> random.Random:
        """Return a *new* generator seeded for ``name`` (state not shared)."""
        return random.Random(derive_seed(self._master_seed, name))

    def child(self, name: str) -> "RngFactory":
        """Return a new factory whose streams are independent of this one."""
        return RngFactory(derive_seed(self._master_seed, f"child:{name}"))

    def export_states(self) -> Dict[str, tuple]:
        """Snapshot every live stream's generator state (checkpoints)."""
        return {name: stream.getstate()
                for name, stream in self._streams.items()}

    def install_states(self, states: Dict[str, tuple]) -> None:
        """Restore a :meth:`export_states` snapshot.

        Streams named in ``states`` are (re)created and wound to the
        recorded position; streams created since the snapshot are left
        alone (their first draw after a resume re-derives from the seed
        exactly as the original run's first draw did).
        """
        for name, state in states.items():
            self.stream(name).setstate(state)
