"""Deterministic randomness.

A single master seed fans out into independent, named random streams so that
adding a new consumer of randomness does not perturb existing streams (a
common reproducibility bug when everything shares one ``random.Random``).

When the determinism sanitizer is enabled (``repro run --sanitize``),
:meth:`RngFactory.stream` hands out an observation-only
:class:`~repro.sanitizer.streams.InstrumentedStream` proxy around the
same underlying generator, so every draw lands in the shadow trace
with its stream name, method and call-site; the factory itself keeps
the raw generators, and state transfer (:meth:`export_states` /
:meth:`install_states`) operates on them directly.
"""

from __future__ import annotations

import hashlib
import random
import warnings
from typing import Dict

from repro.sanitizer.streams import InstrumentedStream
from repro.sanitizer.trace import SANITIZER


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``master_seed`` and ``name``.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (``hash()`` is salted per-process and unsuitable here).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngFactory:  # reprolint: disable=RL401 — _wrapped is a lazily rebuilt cache of observation-only proxies; the raw generators in _streams carry all the state
    """Hands out named, independent :class:`random.Random` streams.

    Requesting the same name twice returns the *same* generator instance, so
    a stream's state is shared by all code that asks for that name.
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}
        self._wrapped: Dict[str, InstrumentedStream] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str):
        """Return the generator for ``name``, creating it on first use.

        While the sanitizer is enabled the returned object is a cached
        instrumented proxy over the same generator — byte-identical
        draws, plus one shadow-trace event per draw.
        """
        raw = self._streams.get(name)
        if raw is None:
            raw = self._streams[name] = random.Random(
                derive_seed(self._master_seed, name)
            )
        if SANITIZER.enabled:
            wrapped = self._wrapped.get(name)
            if wrapped is None:
                wrapped = self._wrapped[name] = InstrumentedStream(raw, name)
            return wrapped
        return raw

    def fresh(self, name: str):
        """Return a *new* generator seeded for ``name`` (state not shared)."""
        raw = random.Random(derive_seed(self._master_seed, name))
        if SANITIZER.enabled:
            return InstrumentedStream(raw, "fresh:" + name)
        return raw

    def child(self, name: str) -> "RngFactory":
        """Return a new factory whose streams are independent of this one."""
        return RngFactory(derive_seed(self._master_seed, f"child:{name}"))

    def export_states(self) -> Dict[str, tuple]:
        """Snapshot every live stream's generator state (checkpoints)."""
        return {name: stream.getstate()
                for name, stream in self._streams.items()}

    def install_states(self, states: Dict[str, tuple]) -> None:
        """Restore a :meth:`export_states` snapshot.

        Streams named in ``states`` are (re)created and wound to the
        recorded position; streams created since the snapshot are left
        alone (their first draw after a resume re-derives from the seed
        exactly as the original run's first draw did).

        A name not yet live in this factory is almost always a typo'd
        or stale checkpoint key — installing it would silently create
        a fresh stream pre-wound to someone else's state — so it is
        reported as a :class:`RuntimeWarning` (the state is still
        installed: a legitimate late-created stream keeps working).
        """
        for name, state in states.items():
            if name not in self._streams:
                warnings.warn(
                    f"install_states: stream {name!r} does not exist in "
                    "this factory yet; installing creates it pre-wound — "
                    "check the checkpoint key if this is not a stream "
                    "the run creates later",
                    RuntimeWarning, stacklevel=2)
            stream = self._streams.get(name)
            if stream is None:
                stream = self._streams[name] = random.Random(
                    derive_seed(self._master_seed, name)
                )
            stream.setstate(state)
