"""A minimal discrete-event scheduler driven by the simulation clock.

Collusion networks use the scheduler to spread deliveries of likes over time
(the evasion behaviour of Fig. 7); the countermeasure campaign uses it to
fire policy changes on specific days.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.sim.clock import SimClock


@dataclass(order=True)
class ScheduledEvent:
    """An event queued for execution at ``when`` (simulation seconds)."""

    when: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when its time comes."""
        self.cancelled = True


class EventScheduler:
    """Priority-queue scheduler; ties break in submission order."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._queue: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self._executed = 0

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    @property
    def executed(self) -> int:
        """Number of events that have run."""
        return self._executed

    def at(self, when: int, action: Callable[[], Any],
           label: str = "") -> ScheduledEvent:
        """Schedule ``action`` for absolute simulation time ``when``."""
        if when < self._clock.now():
            raise ValueError(
                f"cannot schedule event at {when} before now "
                f"({self._clock.now()})"
            )
        event = ScheduledEvent(int(when), next(self._seq), action, label)
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: int, action: Callable[[], Any],
              label: str = "") -> ScheduledEvent:
        """Schedule ``action`` for ``delay`` seconds from now."""
        return self.at(self._clock.now() + int(delay), action, label)

    def next_event_time(self) -> Optional[int]:
        """Time of the earliest pending non-cancelled event, or ``None``."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].when if self._queue else None

    def run_until(self, timestamp: int) -> int:
        """Advance the clock to ``timestamp``, running all due events.

        Events may enqueue more events; any that land before ``timestamp``
        also run.  Returns the number of events executed.
        """
        executed = 0
        while True:
            nxt = self.next_event_time()
            if nxt is None or nxt > timestamp:
                break
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.when > self._clock.now():
                self._clock.advance_to(event.when)
            event.action()
            executed += 1
            self._executed += 1
        if timestamp > self._clock.now():
            self._clock.advance_to(timestamp)
        return executed

    def discard_until(self, timestamp: int) -> int:
        """Drop (without running) every event scheduled before
        ``timestamp``; returns how many were dropped.

        Used by crash-recovery resume: the skipped days' events — e.g.
        milking follow-ups scheduled into the campaign window — already
        had their effects restored from the checkpoint, so replaying
        them would double-apply.
        """
        dropped = 0
        while self._queue and self._queue[0].when < timestamp:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                dropped += 1
        return dropped

    def drain(self) -> int:
        """Run every pending event regardless of how far time must move."""
        executed = 0
        while True:
            nxt = self.next_event_time()
            if nxt is None:
                break
            executed += self.run_until(nxt)
        return executed
