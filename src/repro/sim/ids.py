"""Sequential, namespaced entity identifiers.

Entity ids look like ``acct:1042`` or ``app:7``.  Sequential allocation keeps
ids stable under replay and makes test failures readable.
"""

from __future__ import annotations

from typing import Dict


class IdAllocator:
    """Allocates ids of the form ``<kind>:<n>`` with per-kind counters."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def next(self, kind: str) -> str:
        """Allocate and return the next id for ``kind``."""
        if not kind or ":" in kind:
            raise ValueError(f"invalid id kind: {kind!r}")
        n = self._counters.get(kind, 0) + 1
        self._counters[kind] = n
        return f"{kind}:{n}"

    def count(self, kind: str) -> int:
        """Number of ids allocated so far for ``kind``."""
        return self._counters.get(kind, 0)

    @staticmethod
    def kind_of(entity_id: str) -> str:
        """Extract the kind prefix from an id (``acct:12`` -> ``acct``)."""
        kind, sep, suffix = entity_id.partition(":")
        if not sep or not suffix:
            raise ValueError(f"malformed entity id: {entity_id!r}")
        return kind
