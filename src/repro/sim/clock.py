"""Virtual time for the simulation.

The paper's measurements span November 2015 to October 2016.  The simulated
clock counts seconds from a configurable epoch (defaulting to 2015-11-01
00:00:00 UTC, the start of the milking campaign) and only moves when the
experiment advances it, so token expiry, rate-limit windows and the
countermeasure timeline are all perfectly reproducible.
"""

from __future__ import annotations

import datetime as _dt

from repro.sanitizer.trace import SANITIZER as _SANITIZER

Duration = int  # seconds

SECOND: Duration = 1
MINUTE: Duration = 60
HOUR: Duration = 60 * MINUTE
DAY: Duration = 24 * HOUR

#: Default simulation epoch: start of the paper's honeypot campaign.
DEFAULT_EPOCH = _dt.datetime(2015, 11, 1, tzinfo=_dt.timezone.utc)


class SimClock:
    """A monotonically non-decreasing virtual clock.

    The clock is shared by every subsystem in a
    :class:`~repro.core.world.World`; code under test advances it explicitly
    with :meth:`advance` or :meth:`advance_to`.
    """

    def __init__(self, epoch: _dt.datetime = DEFAULT_EPOCH) -> None:
        if epoch.tzinfo is None:
            epoch = epoch.replace(tzinfo=_dt.timezone.utc)
        self._epoch = epoch
        self._now: int = 0

    @property
    def epoch(self) -> _dt.datetime:
        """The real-world datetime corresponding to simulation time zero."""
        return self._epoch

    def now(self) -> int:
        """Current simulation time in seconds since the epoch."""
        if _SANITIZER.enabled:
            _SANITIZER.record_clock(self._now)
        return self._now

    def now_datetime(self) -> _dt.datetime:
        """Current simulation time as an aware datetime."""
        return self._epoch + _dt.timedelta(seconds=self._now)

    def day(self) -> int:
        """Current simulation day index (day 0 starts at the epoch)."""
        return self._now // DAY

    def hour_of_day(self) -> int:
        """Hour within the current simulation day, 0-23."""
        return (self._now % DAY) // HOUR

    def advance(self, seconds: Duration) -> int:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot move time backwards by {seconds}s")
        self._now += int(seconds)
        if _SANITIZER.enabled:
            _SANITIZER.note_time(self._now)
        return self._now

    def advance_to(self, timestamp: int) -> int:
        """Move the clock forward to an absolute simulation ``timestamp``."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot rewind clock from {self._now} to {timestamp}"
            )
        self._now = int(timestamp)
        if _SANITIZER.enabled:
            _SANITIZER.note_time(self._now)
        return self._now

    def advance_days(self, days: float) -> int:
        """Move the clock forward by a (possibly fractional) number of days."""
        return self.advance(int(days * DAY))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(day={self.day()}, t={self._now})"
