"""Append-only Graph API request log, stored column-wise.

The log records exactly the metadata the paper's countermeasures consume:
who (user/app/token), from where (IP/AS), what (action/target), when, and
whether the request succeeded.  Detection algorithms (SynchroTrap) and the
IP/AS analyses of Fig. 8 all read from here.

Storage is *columnar*: one parallel column per field, with token / IP /
app-id strings interned (one shared object per distinct value) and
actions/outcomes stored as small integer codes.  A scale-0.02 study logs
well over half a million requests, so the old list-of-dataclasses layout
paid a ~9-slot object per request and a full list copy per query.  Here:

* :meth:`append_row` pushes nine scalars onto nine columns (no record
  object on the hot path — :class:`~repro.graphapi.api.GraphApi` calls
  this directly);
* :meth:`all`, :meth:`for_ip`, :meth:`for_app`, :meth:`successes` and
  :meth:`like_requests` return :class:`RecordsView` — a zero-copy,
  lazily-materializing sequence over row indices.  Views are read-only
  windows onto the live log: do not mutate them, and note that a view
  taken before further appends will see the new rows;
* :meth:`like_columns` hands analyses the raw column slices so hot
  consumers (detectors, Fig. 8, IP/AS stats) never materialize row
  objects at all;
* :class:`RequestRecord` survives as the row type — constructible as
  before for tests and ad-hoc callers, but only built on demand when a
  view row is actually touched.
"""

from __future__ import annotations

import hashlib
from array import array
from bisect import bisect_left
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.graphapi.request import ApiAction

#: Stable action <-> code mapping (definition order of the enum).
_ACTIONS: Tuple[ApiAction, ...] = tuple(ApiAction)
_ACTION_CODE: Dict[ApiAction, int] = {a: i for i, a in enumerate(_ACTIONS)}
_LIKE_CODES = frozenset(i for i, a in enumerate(_ACTIONS) if a.is_like)


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """One logged Graph API request (materialized row view)."""

    timestamp: int
    action: ApiAction
    token: str
    user_id: Optional[str]
    app_id: Optional[str]
    target_id: Optional[str]
    source_ip: Optional[str]
    asn: Optional[int]
    outcome: str  # "ok" or an error code


class RecordsView(Sequence):
    """A read-only, lazily materializing window over log rows.

    Holds only the owning log and a sequence of row indices; records are
    built on item access.  Slicing returns another view.
    """

    __slots__ = ("_log", "_rows")

    def __init__(self, log: "RequestLog",
                 rows: Union[range, Sequence[int]]) -> None:
        self._log = log
        self._rows = rows

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return RecordsView(self._log, self._rows[index])
        return self._log.record_at(self._rows[index])

    def __iter__(self) -> Iterator[RequestRecord]:
        materialize = self._log.record_at
        for row in self._rows:
            yield materialize(row)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordsView({len(self)} records)"


class RequestLog:
    """Columnar request store with row-index secondary indexes."""

    __slots__ = (
        "_ts", "_action", "_token", "_user", "_app", "_target", "_ip",
        "_asn", "_outcome", "_outcome_names", "_outcome_codes",
        "_by_ip", "_by_app", "_like_rows", "_like_ok_rows", "_interned",
        "_pushes", "_journal",
    )

    def __init__(self) -> None:
        self._ts = array("q")
        self._action = array("b")
        self._token: List[str] = []
        self._user: List[Optional[str]] = []
        self._app: List[Optional[str]] = []
        self._target: List[Optional[str]] = []
        self._ip: List[Optional[str]] = []
        self._asn: List[Optional[int]] = []
        self._outcome = array("h")
        self._outcome_names: List[str] = []
        self._outcome_codes: Dict[str, int] = {}
        self._by_ip: Dict[str, array] = {}
        self._by_app: Dict[str, array] = {}
        #: Row indexes of like-action requests (all / successful only).
        self._like_rows = array("q")
        self._like_ok_rows = array("q")
        #: Intern table: one shared object per distinct token/IP/app id.
        self._interned: Dict[str, str] = {}
        #: Bound column appenders in append_row argument order; the
        #: column containers are never replaced after construction.
        self._pushes = (
            self._ts.append, self._action.append, self._token.append,
            self._user.append, self._app.append, self._target.append,
            self._ip.append, self._asn.append, self._outcome.append,
        )
        #: Optional durable WAL mirror (repro.journal); every appended
        #: row is forwarded in export_rows tuple format.
        self._journal = None

    # ------------------------------------------------------------------
    # Durable journal (see repro.journal)
    # ------------------------------------------------------------------
    def attach_journal(self, journal) -> None:
        """Mirror every future append into ``journal`` (WAL)."""
        self._journal = journal

    def detach_journal(self):
        """Stop journaling; returns the detached journal (or ``None``).

        Used to suspend the WAL while rows are *replayed from* it on
        resume, and in forked shard children (only the parent may write
        the shared journal — children export deltas instead).
        """
        journal = self._journal
        self._journal = None
        return journal

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append_row(self, timestamp: int, action: ApiAction, token: str,
                   user_id: Optional[str], app_id: Optional[str],
                   target_id: Optional[str], source_ip: Optional[str],
                   asn: Optional[int], outcome: str) -> None:
        """Append one request as nine column pushes (the hot path)."""
        row = len(self._ts)
        interned = self._interned
        token = interned.setdefault(token, token)
        if source_ip is not None:
            source_ip = interned.setdefault(source_ip, source_ip)
        if app_id is not None:
            app_id = interned.setdefault(app_id, app_id)
        outcome_code = self._outcome_codes.get(outcome)
        if outcome_code is None:
            outcome_code = len(self._outcome_names)
            self._outcome_codes[outcome] = outcome_code
            self._outcome_names.append(outcome)
        code = _ACTION_CODE[action]
        (push_ts, push_action, push_token, push_user, push_app,
         push_target, push_ip, push_asn, push_outcome) = self._pushes
        push_ts(timestamp)
        push_action(code)
        push_token(token)
        push_user(user_id)
        push_app(app_id)
        push_target(target_id)
        push_ip(source_ip)
        push_asn(asn)
        push_outcome(outcome_code)
        if source_ip is not None:
            rows = self._by_ip.get(source_ip)
            if rows is None:
                rows = self._by_ip[source_ip] = array("q")
            rows.append(row)
        if app_id is not None:
            rows = self._by_app.get(app_id)
            if rows is None:
                rows = self._by_app[app_id] = array("q")
            rows.append(row)
        if code in _LIKE_CODES:
            self._like_rows.append(row)
            if outcome == "ok":
                self._like_ok_rows.append(row)
        if self._journal is not None:
            self._journal.append_row(
                (timestamp, code, token, user_id, app_id, target_id,
                 source_ip, asn, outcome))

    def extend_like_rows(self, timestamp: int, action: ApiAction,
                         target_id: Optional[str],
                         tokens: Sequence[str],
                         users: Sequence[Optional[str]],
                         apps: Sequence[Optional[str]],
                         ips: Sequence[Optional[str]],
                         asns: Sequence[Optional[int]],
                         outcomes: Sequence[str]) -> None:
        """Append one delivery wave of like-action rows in bulk.

        All rows share the wave's timestamp, action and target; the
        per-row columns are parallel sequences in row order.  Produces
        the exact log state ``len(tokens)`` :meth:`append_row` calls
        would — same interning, same secondary indexes — while paying
        the column bookkeeping once per wave instead of once per row.
        """
        n = len(tokens)
        if n == 0:
            return
        row0 = len(self._ts)
        interned = self._interned
        setdefault = interned.setdefault
        tokens = [setdefault(t, t) for t in tokens]
        ips = [ip if ip is None else setdefault(ip, ip) for ip in ips]
        apps = [a if a is None else setdefault(a, a) for a in apps]
        outcome_codes = self._outcome_codes
        codes = []
        for outcome in outcomes:
            code = outcome_codes.get(outcome)
            if code is None:
                code = len(self._outcome_names)
                outcome_codes[outcome] = code
                self._outcome_names.append(outcome)
            codes.append(code)
        self._ts.extend((timestamp,) * n)
        self._action.extend((_ACTION_CODE[action],) * n)
        self._token.extend(tokens)
        self._user.extend(users)
        self._app.extend(apps)
        self._target.extend((target_id,) * n)
        self._ip.extend(ips)
        self._asn.extend(asns)
        self._outcome.extend(codes)
        by_ip = self._by_ip
        by_app = self._by_app
        row = row0
        for ip, app_id in zip(ips, apps):
            if ip is not None:
                rows = by_ip.get(ip)
                if rows is None:
                    rows = by_ip[ip] = array("q")
                rows.append(row)
            if app_id is not None:
                rows = by_app.get(app_id)
                if rows is None:
                    rows = by_app[app_id] = array("q")
                rows.append(row)
            row += 1
        if _ACTION_CODE[action] in _LIKE_CODES:
            self._like_rows.extend(range(row0, row0 + n))
            ok = outcome_codes.get("ok")
            if ok is not None:
                self._like_ok_rows.extend(
                    row0 + i for i, code in enumerate(codes) if code == ok)
        if self._journal is not None:
            journal_append = self._journal.append_row
            action_code = _ACTION_CODE[action]
            for i in range(n):
                journal_append(
                    (timestamp, action_code, tokens[i], users[i], apps[i],
                     target_id, ips[i], asns[i], outcomes[i]))

    def append(self, record: RequestRecord) -> None:
        """Append a pre-built record (compatibility path)."""
        self.append_row(record.timestamp, record.action, record.token,
                        record.user_id, record.app_id, record.target_id,
                        record.source_ip, record.asn, record.outcome)

    # ------------------------------------------------------------------
    # Shard transfer (see repro.countermeasures.sharding)
    # ------------------------------------------------------------------
    def export_rows(self, start: int) -> List[tuple]:
        """Rows ``[start:]`` as plain picklable tuples.

        The action is exported as its stable enum-order code and the
        outcome as its name, so a delta survives a process boundary
        without carrying this log's intern/code tables along.
        """
        names = self._outcome_names
        return [
            (self._ts[row], self._action[row], self._token[row],
             self._user[row], self._app[row], self._target[row],
             self._ip[row], self._asn[row], names[self._outcome[row]])
            for row in range(start, len(self._ts))
        ]

    def append_exported(self, rows: Sequence[tuple]) -> None:
        """Replay :meth:`export_rows` output through :meth:`append_row`,
        rebuilding interning and every secondary index locally."""
        append_row = self.append_row
        actions = _ACTIONS
        for (ts, code, token, user, app, target, ip, asn,
             outcome) in rows:
            append_row(ts, actions[code], token, user, app, target, ip,
                       asn, outcome)

    def truncate(self, n: int) -> None:
        """Discard rows ``[n:]``, restoring the state after row ``n-1``.

        Used by shard-worker supervision: a quarantined component's
        partial rows are rolled back before the day is deterministically
        re-executed.  All columns and secondary indexes are trimmed *in
        place* (the bound appenders in ``_pushes`` reference the live
        containers, which must never be replaced).
        """
        if n >= len(self._ts):
            return
        touched_ips = {ip for ip in self._ip[n:] if ip is not None}
        touched_apps = {app for app in self._app[n:] if app is not None}
        for column in (self._ts, self._action, self._token, self._user,
                       self._app, self._target, self._ip, self._asn,
                       self._outcome):
            del column[n:]
        for key in touched_ips:
            rows = self._by_ip[key]
            while rows and rows[-1] >= n:
                rows.pop()
            if not rows:
                del self._by_ip[key]
        for key in touched_apps:
            rows = self._by_app[key]
            while rows and rows[-1] >= n:
                rows.pop()
            if not rows:
                del self._by_app[key]
        for rows in (self._like_rows, self._like_ok_rows):
            while rows and rows[-1] >= n:
                rows.pop()

    def digest(self) -> str:
        """Stable content digest over every row (export tuple format).

        Two logs with the same digest hold byte-identical row sequences;
        the crash-recovery acceptance contract compares exactly this.
        """
        hasher = hashlib.blake2b(digest_size=16)
        names = self._outcome_names
        for row in range(len(self._ts)):
            hasher.update(repr(
                (self._ts[row], self._action[row], self._token[row],
                 self._user[row], self._app[row], self._target[row],
                 self._ip[row], self._asn[row],
                 names[self._outcome[row]])).encode("utf-8"))
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ts)

    def record_at(self, row: int) -> RequestRecord:
        """Materialize one row as a :class:`RequestRecord`."""
        return RequestRecord(
            timestamp=self._ts[row],
            action=_ACTIONS[self._action[row]],
            token=self._token[row],
            user_id=self._user[row],
            app_id=self._app[row],
            target_id=self._target[row],
            source_ip=self._ip[row],
            asn=self._asn[row],
            outcome=self._outcome_names[self._outcome[row]],
        )

    # ------------------------------------------------------------------
    # Views and selectors (zero-copy; do not mutate results)
    # ------------------------------------------------------------------
    def all(self) -> RecordsView:
        return RecordsView(self, range(len(self._ts)))

    def successes(self) -> RecordsView:
        ok = self._outcome_codes.get("ok")
        if ok is None:
            return RecordsView(self, ())
        outcomes = self._outcome
        return RecordsView(
            self, [i for i in range(len(outcomes)) if outcomes[i] == ok])

    def for_ip(self, source_ip: str) -> RecordsView:
        return RecordsView(self, self._by_ip.get(source_ip, ()))

    def for_app(self, app_id: str) -> RecordsView:
        return RecordsView(self, self._by_app.get(app_id, ()))

    def filter(self, predicate: Callable[[RequestRecord], bool]) -> List[RequestRecord]:
        return [r for r in self.all() if predicate(r)]

    def _like_row_selection(self, since: Optional[int],
                            successful_only: bool) -> Union[array, Sequence[int]]:
        rows = self._like_ok_rows if successful_only else self._like_rows
        if since is not None:
            # Appends are clock-ordered, so timestamps are non-decreasing
            # and the `since` boundary is a binary search.
            ts = self._ts
            lo = bisect_left(rows, since, key=lambda r: ts[r])
            rows = rows[lo:]
        return rows

    def like_requests(self, since: Optional[int] = None,
                      successful_only: bool = True) -> RecordsView:
        """Like-action records, optionally restricted to ``t >= since``."""
        return RecordsView(
            self, self._like_row_selection(since, successful_only))

    def like_columns(self, fields: Sequence[str],
                     since: Optional[int] = None,
                     successful_only: bool = True) -> Tuple[list, ...]:
        """Vectorized selector: raw column slices for like requests.

        ``fields`` names columns among ``action``, ``timestamp``,
        ``token``, ``user_id``, ``app_id``, ``target_id``,
        ``source_ip``, ``asn`` and ``outcome``; one list per field is
        returned, all parallel.
        Hot analyses iterate these with ``zip`` instead of materializing
        a record per row.
        """
        rows = self._like_row_selection(since, successful_only)
        columns = {
            "action": self._action,
            "timestamp": self._ts,
            "token": self._token,
            "user_id": self._user,
            "app_id": self._app,
            "target_id": self._target,
            "source_ip": self._ip,
            "asn": self._asn,
        }
        out = []
        for name in fields:
            if name == "outcome":
                names = self._outcome_names
                codes = self._outcome
                out.append([names[codes[i]] for i in rows])
                continue
            col = columns[name]
            if name == "action":
                out.append([_ACTIONS[col[i]] for i in rows])
                continue
            out.append([col[i] for i in rows])
        return tuple(out)

    def source_ips(self) -> List[str]:
        """Distinct source IPs seen, in first-seen order."""
        return list(self._by_ip.keys())
