"""Append-only Graph API request log.

The log records exactly the metadata the paper's countermeasures consume:
who (user/app/token), from where (IP/AS), what (action/target), when, and
whether the request succeeded.  Detection algorithms (SynchroTrap) and the
IP/AS analyses of Fig. 8 all read from here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.graphapi.request import ApiAction


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """One logged Graph API request."""

    timestamp: int
    action: ApiAction
    token: str
    user_id: Optional[str]
    app_id: Optional[str]
    target_id: Optional[str]
    source_ip: Optional[str]
    asn: Optional[int]
    outcome: str  # "ok" or an error code


class RequestLog:
    """Stores request records with simple secondary indexes."""

    def __init__(self) -> None:
        self._records: List[RequestRecord] = []
        self._by_ip: Dict[str, List[RequestRecord]] = {}
        self._by_app: Dict[str, List[RequestRecord]] = {}

    def append(self, record: RequestRecord) -> None:
        self._records.append(record)
        if record.source_ip is not None:
            self._by_ip.setdefault(record.source_ip, []).append(record)
        if record.app_id is not None:
            self._by_app.setdefault(record.app_id, []).append(record)

    def __len__(self) -> int:
        return len(self._records)

    def all(self) -> List[RequestRecord]:
        return list(self._records)

    def successes(self) -> List[RequestRecord]:
        return [r for r in self._records if r.outcome == "ok"]

    def for_ip(self, source_ip: str) -> List[RequestRecord]:
        return list(self._by_ip.get(source_ip, ()))

    def for_app(self, app_id: str) -> List[RequestRecord]:
        return list(self._by_app.get(app_id, ()))

    def filter(self, predicate: Callable[[RequestRecord], bool]) -> List[RequestRecord]:
        return [r for r in self._records if predicate(r)]

    def like_requests(self, since: Optional[int] = None,
                      successful_only: bool = True) -> List[RequestRecord]:
        """Like-action records, optionally restricted to ``t >= since``."""
        records = []
        for record in self._records:
            if not record.action.is_like:
                continue
            if since is not None and record.timestamp < since:
                continue
            if successful_only and record.outcome != "ok":
                continue
            records.append(record)
        return records

    def source_ips(self) -> List[str]:
        """Distinct source IPs seen, in first-seen order."""
        return list(self._by_ip.keys())
