"""Request/response objects for the Graph API."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class ApiAction(enum.Enum):
    """The Graph API operations the reproduction exercises."""

    GET_PROFILE = "get_profile"
    GET_APP_STATS = "get_app_stats"
    GET_OBJECT_LIKES = "get_object_likes"
    CREATE_POST = "create_post"
    LIKE_POST = "like_post"
    LIKE_PAGE = "like_page"
    COMMENT = "comment"

    @property
    def is_write(self) -> bool:
        return self in (ApiAction.CREATE_POST, ApiAction.LIKE_POST,
                        ApiAction.LIKE_PAGE, ApiAction.COMMENT)

    @property
    def is_like(self) -> bool:
        return self in (ApiAction.LIKE_POST, ApiAction.LIKE_PAGE)


#: Set-membership twins of the ``is_write`` / ``is_like`` properties —
#: hot dispatch paths pay a descriptor plus a function call per property
#: read, which adds up over millions of batched requests.
LIKE_ACTIONS = frozenset((ApiAction.LIKE_POST, ApiAction.LIKE_PAGE))
WRITE_ACTIONS = frozenset((ApiAction.CREATE_POST, ApiAction.LIKE_POST,
                           ApiAction.LIKE_PAGE, ApiAction.COMMENT))


# Not frozen (the params dict made these unhashable regardless), and
# slotted: request/response objects are minted for every delivery-loop
# call, so construction cost is on the measurement fast path.
@dataclass(slots=True)
class ApiRequest:
    """One Graph API call.

    ``appsecret_proof`` carries the application secret when the app's
    settings demand it (Fig. 2b); ``source_ip`` is the network origin the
    platform sees.
    """

    action: ApiAction
    access_token: str
    params: Dict[str, Any] = field(default_factory=dict)
    appsecret_proof: Optional[str] = None
    source_ip: Optional[str] = None


@dataclass(slots=True)
class ApiResponse:
    """A successful Graph API result."""

    action: ApiAction
    data: Dict[str, Any] = field(default_factory=dict)
