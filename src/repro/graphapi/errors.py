"""Graph API error hierarchy and the Facebook-style error envelope.

Errors carry machine-readable ``code`` attributes because the collusion
networks' delivery engines *react* to them (dropping dead tokens on
``invalid_token``, backing off on ``rate_limited``) — the adaptation
behaviour §6.1 observed in the wild.

Each class additionally carries the numeric ``error_code`` /
``error_subcode`` pair of the real Graph API wire format;
:func:`error_envelope` renders any API-layer failure (including the
OAuth-layer :class:`~repro.oauth.errors.InvalidTokenError`) as the
documented ``{"error": {...}}`` JSON envelope clients actually parse.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class GraphApiError(Exception):
    """Base class for Graph API request failures."""

    code = "graph_api_error"
    #: Facebook wire-format numeric code / subcode / type for the
    #: ``{"error": {...}}`` envelope (see :func:`error_envelope`).
    error_code = 1
    error_subcode: Optional[int] = None
    error_type = "GraphMethodException"
    #: Whether a client should treat the failure as retryable.
    is_transient = False


class PermissionDeniedError(GraphApiError):
    """Token's scope does not cover the attempted action."""

    code = "permission_denied"
    error_code = 200
    error_type = "OAuthException"

    def __init__(self, permission: str) -> None:
        super().__init__(f"token scope missing permission: {permission}")
        self.permission = permission


class AppSecretRequiredError(GraphApiError):
    """App requires an appsecret_proof and the request lacked a valid one."""

    code = "app_secret_required"
    error_code = 104
    error_type = "OAuthException"

    def __init__(self, app_id: str) -> None:
        super().__init__(
            f"application {app_id} requires a valid appsecret_proof"
        )
        self.app_id = app_id


class RateLimitExceededError(GraphApiError):
    """Per-access-token action rate limit hit (§6.1)."""

    code = "rate_limited"
    error_code = 17
    error_type = "OAuthException"
    is_transient = True

    def __init__(self, token_ref: str) -> None:
        # token_ref is a redact_token() digest, never a raw token or a
        # recoverable slice of one (reprolint RL102).
        super().__init__(f"rate limit exceeded for token {token_ref}")


class IpRateLimitError(GraphApiError):
    """Per-source-IP like-request limit hit (§6.4)."""

    code = "ip_rate_limited"
    error_code = 613
    error_type = "OAuthException"
    is_transient = True

    def __init__(self, source_ip: str, window: str) -> None:
        super().__init__(f"{window} IP rate limit exceeded for {source_ip}")
        self.source_ip = source_ip
        self.window = window


class BlockedSourceError(GraphApiError):
    """Request from a blocked AS for a protected application (§6.4)."""

    code = "blocked_source"
    error_code = 368
    error_type = "OAuthException"

    def __init__(self, source_ip: str, asn: int) -> None:
        super().__init__(f"requests from AS{asn} ({source_ip}) are blocked")
        self.source_ip = source_ip
        self.asn = asn


class TransientApiError(GraphApiError):
    """A retryable server-side failure ("please retry this request").

    Injected by :mod:`repro.faults`; resilient clients retry it with
    backoff rather than dropping the token or aborting delivery.
    """

    code = "transient_error"
    error_code = 2
    error_type = "OAuthException"
    is_transient = True

    def __init__(self, detail: str = "service temporarily unavailable") -> None:
        super().__init__(detail)


class ApiTimeout(TransientApiError):
    """The request exceeded the client deadline with no response."""

    code = "api_timeout"
    error_code = 2
    error_subcode = 1342004
    is_transient = True

    def __init__(self) -> None:
        super().__init__("request timed out")


#: InvalidTokenError subcodes, keyed by the reason substring the token
#: store embeds in its message (Graph API: 463 = expired, 466 =
#: invalidated by the platform, 467 = unknown/invalid).
_INVALID_TOKEN_SUBCODES = (("expired", 463), ("invalidated", 466))


def error_envelope(error: Exception) -> Dict[str, Any]:
    """Render an API-layer failure as the Facebook-style JSON envelope.

    Handles the :class:`GraphApiError` hierarchy and the OAuth layer's
    :class:`~repro.oauth.errors.InvalidTokenError` (which surfaces
    through the API as the classic OAuthException 190).
    """
    from repro.oauth.errors import InvalidTokenError, OAuthError

    message = str(error)
    if isinstance(error, GraphApiError):
        body: Dict[str, Any] = {
            "message": message,
            "type": error.error_type,
            "code": error.error_code,
            "is_transient": error.is_transient,
        }
        if error.error_subcode is not None:
            body["error_subcode"] = error.error_subcode
        return {"error": body}
    if isinstance(error, InvalidTokenError):
        subcode = 467
        for needle, value in _INVALID_TOKEN_SUBCODES:
            if needle in message:
                subcode = value
                break
        return {"error": {"message": message, "type": "OAuthException",
                          "code": 190, "error_subcode": subcode,
                          "is_transient": False}}
    if isinstance(error, OAuthError):
        return {"error": {"message": message, "type": "OAuthException",
                          "code": 1, "is_transient": False}}
    raise TypeError(
        f"not an API-layer error: {type(error).__name__}: {message}")
