"""Graph API error hierarchy.

Errors carry machine-readable ``code`` attributes because the collusion
networks' delivery engines *react* to them (dropping dead tokens on
``invalid_token``, backing off on ``rate_limited``) — the adaptation
behaviour §6.1 observed in the wild.
"""

from __future__ import annotations


class GraphApiError(Exception):
    """Base class for Graph API request failures."""

    code = "graph_api_error"


class PermissionDeniedError(GraphApiError):
    """Token's scope does not cover the attempted action."""

    code = "permission_denied"

    def __init__(self, permission: str) -> None:
        super().__init__(f"token scope missing permission: {permission}")
        self.permission = permission


class AppSecretRequiredError(GraphApiError):
    """App requires an appsecret_proof and the request lacked a valid one."""

    code = "app_secret_required"

    def __init__(self, app_id: str) -> None:
        super().__init__(
            f"application {app_id} requires a valid appsecret_proof"
        )
        self.app_id = app_id


class RateLimitExceededError(GraphApiError):
    """Per-access-token action rate limit hit (§6.1)."""

    code = "rate_limited"

    def __init__(self, token_suffix: str) -> None:
        super().__init__(f"rate limit exceeded for token …{token_suffix}")


class IpRateLimitError(GraphApiError):
    """Per-source-IP like-request limit hit (§6.4)."""

    code = "ip_rate_limited"

    def __init__(self, source_ip: str, window: str) -> None:
        super().__init__(f"{window} IP rate limit exceeded for {source_ip}")
        self.source_ip = source_ip
        self.window = window


class BlockedSourceError(GraphApiError):
    """Request from a blocked AS for a protected application (§6.4)."""

    code = "blocked_source"

    def __init__(self, source_ip: str, asn: int) -> None:
        super().__init__(f"requests from AS{asn} ({source_ip}) are blocked")
        self.source_ip = source_ip
        self.asn = asn
