"""The Graph API: the authenticated front door to the social platform.

Every third-party read/write flows through :class:`~repro.graphapi.api.GraphApi`
carrying an access token, an optional application-secret proof and a source
IP.  The API logs request metadata (token, user, app, IP, AS, action,
outcome) — the observable that every §6 countermeasure operates on — and
enforces the per-token, per-IP and per-AS limits those countermeasures
install.
"""

from repro.graphapi.request import ApiAction, ApiRequest, ApiResponse
from repro.graphapi.log import RequestLog, RequestRecord
from repro.graphapi.ratelimit import (
    SlidingWindowLimiter,
    RateLimitPolicy,
    DEFAULT_TOKEN_ACTIONS_PER_DAY,
)
from repro.graphapi.api import GraphApi
from repro.graphapi.errors import (
    GraphApiError,
    PermissionDeniedError,
    AppSecretRequiredError,
    RateLimitExceededError,
    IpRateLimitError,
    BlockedSourceError,
)

__all__ = [
    "ApiAction",
    "ApiRequest",
    "ApiResponse",
    "RequestLog",
    "RequestRecord",
    "SlidingWindowLimiter",
    "RateLimitPolicy",
    "DEFAULT_TOKEN_ACTIONS_PER_DAY",
    "GraphApi",
    "GraphApiError",
    "PermissionDeniedError",
    "AppSecretRequiredError",
    "RateLimitExceededError",
    "IpRateLimitError",
    "BlockedSourceError",
]
