"""Rate limiting primitives and the mutable platform rate-limit policy.

:class:`RateLimitPolicy` is the knob panel the §6 countermeasures turn:
the per-token action limit (§6.1), per-IP daily/weekly like limits (§6.4)
and the AS blocklist for protected applications (§6.4).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set

from repro.sim.clock import DAY

#: Facebook's baseline per-token write budget.  Generous enough that the
#: paper observes collusion traffic "slips under the current rate limit".
DEFAULT_TOKEN_ACTIONS_PER_DAY = 600

#: §6.1: "we reduce the rate limit by more than an order of magnitude".
REDUCED_TOKEN_ACTIONS_PER_DAY = 40


class SlidingWindowLimiter:
    """Counts events per key within a sliding time window.

    ``allow(key, now)`` answers whether one more event fits under
    ``limit``; ``hit(key, now)`` records the event.  Old timestamps are
    evicted lazily per key.
    """

    def __init__(self, limit: int, window_seconds: int) -> None:
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        if window_seconds <= 0:
            raise ValueError(f"window must be positive, got {window_seconds}")
        self.limit = limit
        self.window_seconds = window_seconds
        self._events: Dict[str, Deque[int]] = {}

    def _evict(self, key: str, now: int) -> Deque[int]:
        events = self._events.setdefault(key, deque())
        horizon = now - self.window_seconds
        while events and events[0] <= horizon:
            events.popleft()
        return events

    def usage(self, key: str, now: int) -> int:
        """Events currently counted against ``key``."""
        return len(self._evict(key, now))

    def allow(self, key: str, now: int) -> bool:
        return len(self._evict(key, now)) < self.limit

    def hit(self, key: str, now: int) -> None:
        self._evict(key, now).append(now)

    def try_acquire(self, key: str, now: int) -> bool:
        """Atomically check-and-record; True if the event was admitted."""
        events = self._evict(key, now)
        if len(events) >= self.limit:
            return False
        events.append(now)
        return True


@dataclass
class RateLimitPolicy:
    """The platform's mutable abuse-limit configuration.

    All limits default to "off" (None) except the per-token budget, which
    models Facebook's always-on baseline limit.
    """

    token_actions_per_day: int = DEFAULT_TOKEN_ACTIONS_PER_DAY
    ip_likes_per_day: Optional[int] = None
    ip_likes_per_week: Optional[int] = None
    #: ASes whose like requests are blocked, per protected app id.  The
    #: paper scopes AS blocking to the susceptible applications only, "to
    #: mitigate the risk of collateral damage to other applications".
    blocked_asns_by_app: Dict[str, Set[int]] = field(default_factory=dict)

    def block_as_for_app(self, app_id: str, asn: int) -> None:
        self.blocked_asns_by_app.setdefault(app_id, set()).add(asn)

    def is_as_blocked(self, app_id: str, asn: Optional[int]) -> bool:
        if asn is None:
            return False
        return asn in self.blocked_asns_by_app.get(app_id, ())


class PolicyEnforcer:
    """Binds a :class:`RateLimitPolicy` to concrete sliding-window state.

    Rebuilds windows when the policy's numeric limits change (the
    countermeasure campaign lowers the token limit mid-flight).
    """

    def __init__(self, policy: RateLimitPolicy) -> None:
        self.policy = policy
        self._token_limiter = SlidingWindowLimiter(
            policy.token_actions_per_day, DAY)
        self._ip_day_limiter: Optional[SlidingWindowLimiter] = None
        self._ip_week_limiter: Optional[SlidingWindowLimiter] = None
        self._sync()

    def _sync(self) -> None:
        if self._token_limiter.limit != self.policy.token_actions_per_day:
            self._token_limiter = SlidingWindowLimiter(
                self.policy.token_actions_per_day, DAY)
        if self.policy.ip_likes_per_day is None:
            self._ip_day_limiter = None
        elif (self._ip_day_limiter is None
              or self._ip_day_limiter.limit != self.policy.ip_likes_per_day):
            self._ip_day_limiter = SlidingWindowLimiter(
                self.policy.ip_likes_per_day, DAY)
        if self.policy.ip_likes_per_week is None:
            self._ip_week_limiter = None
        elif (self._ip_week_limiter is None
              or self._ip_week_limiter.limit != self.policy.ip_likes_per_week):
            self._ip_week_limiter = SlidingWindowLimiter(
                self.policy.ip_likes_per_week, 7 * DAY)

    def admit_token_action(self, token: str, now: int) -> bool:
        """Check-and-record one write action for ``token``."""
        self._sync()
        return self._token_limiter.try_acquire(token, now)

    def admit_ip_like(self, source_ip: Optional[str], now: int) -> Optional[str]:
        """Check-and-record one like from ``source_ip``.

        Returns None if admitted, otherwise the name of the violated
        window ("daily" / "weekly").  Requests without a source IP are
        never IP-limited.
        """
        self._sync()
        if source_ip is None:
            return None
        if (self._ip_day_limiter is not None
                and not self._ip_day_limiter.allow(source_ip, now)):
            return "daily"
        if (self._ip_week_limiter is not None
                and not self._ip_week_limiter.allow(source_ip, now)):
            return "weekly"
        if self._ip_day_limiter is not None:
            self._ip_day_limiter.hit(source_ip, now)
        if self._ip_week_limiter is not None:
            self._ip_week_limiter.hit(source_ip, now)
        return None
