"""Rate limiting primitives and the mutable platform rate-limit policy.

:class:`RateLimitPolicy` is the knob panel the §6 countermeasures turn:
the per-token action limit (§6.1), per-IP daily/weekly like limits (§6.4)
and the AS blocklist for protected applications (§6.4).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set, Tuple

from repro.oauth.redact import redact_token
from repro.sanitizer.trace import SANITIZER as _SANITIZER
from repro.sim.clock import DAY

#: Facebook's baseline per-token write budget.  Generous enough that the
#: paper observes collusion traffic "slips under the current rate limit".
DEFAULT_TOKEN_ACTIONS_PER_DAY = 600

#: §6.1: "we reduce the rate limit by more than an order of magnitude".
REDUCED_TOKEN_ACTIONS_PER_DAY = 40


# The eviction memo (_evict_now/_evicted) is a process-transient
# same-timestamp cache: it is only meaningful while this process sits
# at one `now`, so snapshots deliberately omit it and installs reset
# it (a forced re-eviction is an idempotent no-op).
class SlidingWindowLimiter:  # reprolint: disable=RL401 — _evict_now/_evicted are a transient same-timestamp eviction memo, reset on install
    """Counts events per key within a sliding time window.

    ``allow(key, now)`` answers whether one more event fits under
    ``limit``; ``hit(key, now)`` records the event.  Old timestamps are
    evicted lazily per key.
    """

    def __init__(self, limit: int, window_seconds: int) -> None:
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        if window_seconds <= 0:
            raise ValueError(f"window must be positive, got {window_seconds}")
        self.limit = limit
        self.window_seconds = window_seconds
        self._events: Dict[str, Deque[int]] = {}
        # Saturation memo: key -> earliest time the key can admit again.
        # A rejected request records nothing, so while a key is saturated
        # its deque is static and that time is exact — repeated rejects
        # become one dict probe instead of an eviction pass.
        self._saturated_until: Dict[str, int] = {}
        # Eviction memo: keys already evicted at `_evict_now`.  Events
        # are only ever appended at the current time, and an event
        # appended at `now` cannot fall behind the `now - window`
        # horizon, so a second eviction pass at the same timestamp is
        # provably a no-op.
        self._evict_now = -1
        self._evicted: Set[str] = set()

    def _evict(self, key: str, now: int) -> Deque[int]:
        events = self._events.get(key)
        if events is None:
            events = self._events[key] = deque()
            return events
        if now != self._evict_now:
            self._evict_now = now
            self._evicted.clear()
        elif key in self._evicted:
            return events
        horizon = now - self.window_seconds
        while events and events[0] <= horizon:
            events.popleft()
        self._evicted.add(key)
        return events

    def saturated(self, key: str, now: int) -> bool:
        """Whether ``key`` is memoized as still at its limit."""
        until = self._saturated_until.get(key)
        if until is None:
            return False
        if now < until:
            return True
        del self._saturated_until[key]
        return False

    def mark_saturated(self, key: str, events: Deque[int]) -> None:
        """Memoize a full window: admits resume once the
        ``len(events) - limit + 1`` oldest events have expired."""
        self._saturated_until[key] = (events[len(events) - self.limit]
                                      + self.window_seconds)
        if _SANITIZER.enabled:
            _SANITIZER.record_limiter("saturate", redact_token(key))

    def usage(self, key: str, now: int) -> int:
        """Events currently counted against ``key``."""
        return len(self._evict(key, now))

    def allow(self, key: str, now: int) -> bool:
        return len(self._evict(key, now)) < self.limit

    def hit(self, key: str, now: int) -> None:
        self._evict(key, now).append(now)

    def try_acquire(self, key: str, now: int) -> bool:
        """Atomically check-and-record; True if the event was admitted."""
        if self.saturated(key, now):
            return False
        events = self._evict(key, now)
        if len(events) >= self.limit:
            self.mark_saturated(key, events)
            return False
        events.append(now)
        return True

    # ------------------------------------------------------------------
    # Shard transfer (see repro.countermeasures.sharding)
    # ------------------------------------------------------------------
    def export_windows(self, keys) -> Dict[str, tuple]:
        """Window state for ``keys``, as picklable tuples.

        Only keys with any state (events present or a saturation memo)
        are included; the transient same-timestamp eviction memo is
        deliberately not exported — it is only valid within the
        exporting process's current ``now``.
        """
        events_map = self._events
        saturated = self._saturated_until
        out: Dict[str, tuple] = {}
        for key in keys:
            events = events_map.get(key)
            until = saturated.get(key)
            if events is not None or until is not None:
                out[key] = (None if events is None else tuple(events),
                            until)
        return out

    def install_windows(self, windows: Dict[str, tuple]) -> None:
        """Adopt :meth:`export_windows` output, replacing local state
        for exactly the exported keys."""
        for key, (events, until) in windows.items():
            if events is None:
                self._events.pop(key, None)
            else:
                self._events[key] = deque(events)
            if until is None:
                self._saturated_until.pop(key, None)
            else:
                self._saturated_until[key] = until
        # The adopted deques may be shorter than what the memo saw, so
        # force a fresh eviction pass on the next touch of any key.
        self._evict_now = -1
        self._evicted.clear()


@dataclass
class RateLimitPolicy:
    """The platform's mutable abuse-limit configuration.

    All limits default to "off" (None) except the per-token budget, which
    models Facebook's always-on baseline limit.
    """

    token_actions_per_day: int = DEFAULT_TOKEN_ACTIONS_PER_DAY
    ip_likes_per_day: Optional[int] = None
    ip_likes_per_week: Optional[int] = None
    #: ASes whose like requests are blocked, per protected app id.  The
    #: paper scopes AS blocking to the susceptible applications only, "to
    #: mitigate the risk of collateral damage to other applications".
    blocked_asns_by_app: Dict[str, Set[int]] = field(default_factory=dict)

    def block_as_for_app(self, app_id: str, asn: int) -> None:
        self.blocked_asns_by_app.setdefault(app_id, set()).add(asn)

    def is_as_blocked(self, app_id: str, asn: Optional[int]) -> bool:
        if asn is None:
            return False
        return asn in self.blocked_asns_by_app.get(app_id, ())


class PolicyEnforcer:
    """Binds a :class:`RateLimitPolicy` to concrete sliding-window state.

    Rebuilds windows when the policy's numeric limits change (the
    countermeasure campaign lowers the token limit mid-flight).
    """

    def __init__(self, policy: RateLimitPolicy) -> None:
        self.policy = policy
        self._token_limiter = SlidingWindowLimiter(
            policy.token_actions_per_day, DAY)
        self._ip_day_limiter: Optional[SlidingWindowLimiter] = None
        self._ip_week_limiter: Optional[SlidingWindowLimiter] = None
        self._sync()

    def _sync(self) -> None:
        if self._token_limiter.limit != self.policy.token_actions_per_day:
            self._token_limiter = SlidingWindowLimiter(
                self.policy.token_actions_per_day, DAY)
        if self.policy.ip_likes_per_day is None:
            self._ip_day_limiter = None
        elif (self._ip_day_limiter is None
              or self._ip_day_limiter.limit != self.policy.ip_likes_per_day):
            self._ip_day_limiter = SlidingWindowLimiter(
                self.policy.ip_likes_per_day, DAY)
        if self.policy.ip_likes_per_week is None:
            self._ip_week_limiter = None
        elif (self._ip_week_limiter is None
              or self._ip_week_limiter.limit != self.policy.ip_likes_per_week):
            self._ip_week_limiter = SlidingWindowLimiter(
                self.policy.ip_likes_per_week, 7 * DAY)

    def window_occupancy(self) -> Dict[str, Tuple[int, int]]:
        """Deterministic ``window -> (tracked keys, resident events)``.

        Purely observational — no eviction pass, no saturation-memo
        update — so sampling it (the telemetry day-end gauges) cannot
        perturb the simulation.  Resident counts include events a lazy
        eviction has not dropped yet; with identical admission history
        the counts are identical, which is what the serial-vs-sharded
        metrics identity relies on.
        """
        occupancy: Dict[str, Tuple[int, int]] = {}
        for name, limiter in (("token", self._token_limiter),
                              ("ip_daily", self._ip_day_limiter),
                              ("ip_weekly", self._ip_week_limiter)):
            if limiter is None:
                continue
            events = limiter._events
            occupancy[name] = (
                len(events), sum(len(q) for q in events.values()))
        return occupancy

    def admit_token_action(self, token: str, now: int) -> bool:
        """Check-and-record one write action for ``token``."""
        self._sync()
        return self._token_limiter.try_acquire(token, now)

    def admit_like(self, token: str, source_ip: Optional[str],
                   now: int) -> Optional[str]:
        """Fused :meth:`admit_ip_like` + :meth:`admit_token_action`.

        One policy sync and one eviction pass per limiter instead of
        five; charges exactly as the two-call sequence does (IP windows
        are charged even when the token budget then rejects).  Returns
        ``None`` if admitted, else the violated limit name (``"daily"``
        / ``"weekly"`` / ``"token"``).
        """
        self._sync()
        if self._ip_day_limiter is None and self._ip_week_limiter is None:
            # Fast path while the §6.4 IP limits are off: only the token
            # budget is live.
            limiter = self._token_limiter
            until = limiter._saturated_until.get(token)
            if until is not None:
                if now < until:
                    return "token"
                del limiter._saturated_until[token]
            events = limiter._evict(token, now)
            if len(events) >= limiter.limit:
                limiter.mark_saturated(token, events)
                return "token"
            events.append(now)
            return None
        if source_ip is not None:
            day_events = week_events = None
            day = self._ip_day_limiter
            if day is not None:
                if day.saturated(source_ip, now):
                    return "daily"
                day_events = day._evict(source_ip, now)
                if len(day_events) >= day.limit:
                    day.mark_saturated(source_ip, day_events)
                    return "daily"
            week = self._ip_week_limiter
            if week is not None:
                if week.saturated(source_ip, now):
                    return "weekly"
                week_events = week._evict(source_ip, now)
                if len(week_events) >= week.limit:
                    week.mark_saturated(source_ip, week_events)
                    return "weekly"
            if day_events is not None:
                day_events.append(now)
            if week_events is not None:
                week_events.append(now)
        limiter = self._token_limiter
        if limiter.saturated(token, now):
            return "token"
        events = limiter._evict(token, now)
        if len(events) >= limiter.limit:
            limiter.mark_saturated(token, events)
            return "token"
        events.append(now)
        return None

    # ------------------------------------------------------------------
    # Batched admission (all-or-nothing)
    # ------------------------------------------------------------------
    def admit_like_batch(self, entries, now: int):
        """Admit every ``(token, source_ip)`` like, or none of them.

        Counts intra-batch occurrences per key so the verdicts match a
        sequential admission of the whole batch; each involved limiter
        key is evicted at most once, and the hits are appended in bulk
        only after every entry has passed.  Returns ``None`` if the
        batch was admitted and charged, else the violated limiter name
        (``"daily"`` / ``"weekly"`` / ``"token"``) with no state
        recorded.
        """
        self._sync()
        day = self._ip_day_limiter
        week = self._ip_week_limiter
        token_limiter = self._token_limiter
        token_limit = token_limiter.limit
        ip_counts: Dict[str, int] = {}
        token_counts: Dict[str, int] = {}
        day_events: Dict[str, Deque[int]] = {}
        week_events: Dict[str, Deque[int]] = {}
        token_events: Dict[str, Deque[int]] = {}
        if day is None and week is None:
            # Common case until the §6.4 IP limits land: only the token
            # budget is live, so skip the per-entry IP bookkeeping.
            saturated_until = token_limiter._saturated_until
            all_events = token_limiter._events
            horizon = now - token_limiter.window_seconds
            mark_saturated = token_limiter.mark_saturated
            counts_get = token_counts.get
            events_get = token_events.get
            for token, _source_ip in entries:
                seen = counts_get(token, 0)
                events = events_get(token)
                if events is None:
                    until = saturated_until.get(token)
                    if until is not None:
                        if now < until:
                            return "token"
                        del saturated_until[token]
                    events = all_events.get(token)
                    if events is None:
                        events = all_events[token] = deque()
                    else:
                        while events and events[0] <= horizon:
                            events.popleft()
                    token_events[token] = events
                    if len(events) >= token_limit:
                        mark_saturated(token, events)
                if len(events) + seen >= token_limit:
                    return "token"
                token_counts[token] = seen + 1
            for token, count in token_counts.items():
                token_events[token].extend((now,) * count)
            return None
        for token, source_ip in entries:
            if source_ip is not None:
                seen = ip_counts.get(source_ip, 0)
                if day is not None:
                    events = day_events.get(source_ip)
                    if events is None:
                        if day.saturated(source_ip, now):
                            return "daily"
                        events = day._evict(source_ip, now)
                        day_events[source_ip] = events
                        if len(events) >= day.limit:
                            day.mark_saturated(source_ip, events)
                    if len(events) + seen >= day.limit:
                        return "daily"
                if week is not None:
                    events = week_events.get(source_ip)
                    if events is None:
                        if week.saturated(source_ip, now):
                            return "weekly"
                        events = week._evict(source_ip, now)
                        week_events[source_ip] = events
                        if len(events) >= week.limit:
                            week.mark_saturated(source_ip, events)
                    if len(events) + seen >= week.limit:
                        return "weekly"
                ip_counts[source_ip] = seen + 1
            seen = token_counts.get(token, 0)
            events = token_events.get(token)
            if events is None:
                if token_limiter.saturated(token, now):
                    return "token"
                events = token_limiter._evict(token, now)
                token_events[token] = events
                if len(events) >= token_limit:
                    token_limiter.mark_saturated(token, events)
            if len(events) + seen >= token_limit:
                return "token"
            token_counts[token] = seen + 1
        # Charge: the deques were evicted at this same ``now``, so bulk
        # appends land in the exact state sequential hits would produce.
        if day is not None or week is not None:
            for source_ip, count in ip_counts.items():
                hits = (now,) * count
                if day is not None:
                    day_events[source_ip].extend(hits)
                if week is not None:
                    week_events[source_ip].extend(hits)
        for token, count in token_counts.items():
            token_events[token].extend((now,) * count)
        return None

    # ------------------------------------------------------------------
    # Wave admission (memoized per-(key, wave-timestamp) transitions)
    # ------------------------------------------------------------------
    def like_wave(self, now: int) -> "LikeWaveAdmitter":
        """Open a delivery wave at timestamp ``now``.

        The returned admitter answers per-entry like admissions with the
        exact verdicts — in the exact order — that scalar
        :meth:`admit_like` calls at the same timestamp would produce,
        but computes each key's remaining window capacity once and then
        decrements in O(1); the recorded hits land in bulk at
        :meth:`LikeWaveAdmitter.flush`.  The scalar path stays as the
        verification oracle (see tests/test_batch_equivalence.py)."""
        self._sync()
        return LikeWaveAdmitter(self._token_limiter, self._ip_day_limiter,
                                self._ip_week_limiter, now)

    # ------------------------------------------------------------------
    # Shard transfer (see repro.countermeasures.sharding)
    # ------------------------------------------------------------------
    def export_shard_windows(self, tokens, ips) -> Dict[str, dict]:
        """Window state for a shard's owned token and IP keys."""
        self._sync()
        out = {"token": self._token_limiter.export_windows(tokens)}
        if self._ip_day_limiter is not None:
            out["ip_day"] = self._ip_day_limiter.export_windows(ips)
        if self._ip_week_limiter is not None:
            out["ip_week"] = self._ip_week_limiter.export_windows(ips)
        return out

    def install_shard_windows(self, windows: Dict[str, dict]) -> None:
        """Adopt a shard's :meth:`export_shard_windows` output."""
        self._sync()
        self._token_limiter.install_windows(windows["token"])
        if self._ip_day_limiter is not None and "ip_day" in windows:
            self._ip_day_limiter.install_windows(windows["ip_day"])
        if self._ip_week_limiter is not None and "ip_week" in windows:
            self._ip_week_limiter.install_windows(windows["ip_week"])

    # ------------------------------------------------------------------
    # Checkpoint transfer (see repro.countermeasures.recovery)
    # ------------------------------------------------------------------
    @staticmethod
    def _dump_limiter(limiter: Optional[SlidingWindowLimiter]):
        if limiter is None:
            return None
        return {"events": {key: tuple(events)
                           for key, events in limiter._events.items()
                           if events},
                "saturated": dict(limiter._saturated_until)}

    @staticmethod
    def _load_limiter(limiter: Optional[SlidingWindowLimiter],
                      state) -> None:
        if limiter is None or state is None:
            return
        limiter._events = {key: deque(events)
                           for key, events in state["events"].items()}
        limiter._saturated_until = dict(state["saturated"])
        limiter._evict_now = -1
        limiter._evicted.clear()

    def export_state(self) -> Dict:
        """Full policy + window state for a campaign checkpoint."""
        self._sync()
        policy = self.policy
        return {
            "policy": {
                "token_actions_per_day": policy.token_actions_per_day,
                "ip_likes_per_day": policy.ip_likes_per_day,
                "ip_likes_per_week": policy.ip_likes_per_week,
                "blocked_asns_by_app": {
                    app: set(asns) for app, asns
                    in policy.blocked_asns_by_app.items()},
            },
            "token": self._dump_limiter(self._token_limiter),
            "ip_day": self._dump_limiter(self._ip_day_limiter),
            "ip_week": self._dump_limiter(self._ip_week_limiter),
        }

    def install_state(self, state: Dict) -> None:
        """Restore an :meth:`export_state` snapshot wholesale."""
        policy = self.policy
        fields = state["policy"]
        policy.token_actions_per_day = fields["token_actions_per_day"]
        policy.ip_likes_per_day = fields["ip_likes_per_day"]
        policy.ip_likes_per_week = fields["ip_likes_per_week"]
        policy.blocked_asns_by_app = {
            app: set(asns)
            for app, asns in fields["blocked_asns_by_app"].items()}
        self._sync()
        self._load_limiter(self._token_limiter, state["token"])
        self._load_limiter(self._ip_day_limiter, state["ip_day"])
        self._load_limiter(self._ip_week_limiter, state["ip_week"])

    def admit_ip_like(self, source_ip: Optional[str], now: int) -> Optional[str]:
        """Check-and-record one like from ``source_ip``.

        Returns None if admitted, otherwise the name of the violated
        window ("daily" / "weekly").  Requests without a source IP are
        never IP-limited.
        """
        self._sync()
        if source_ip is None:
            return None
        if (self._ip_day_limiter is not None
                and not self._ip_day_limiter.allow(source_ip, now)):
            return "daily"
        if (self._ip_week_limiter is not None
                and not self._ip_week_limiter.allow(source_ip, now)):
            return "weekly"
        if self._ip_day_limiter is not None:
            self._ip_day_limiter.hit(source_ip, now)
        if self._ip_week_limiter is not None:
            self._ip_week_limiter.hit(source_ip, now)
        return None


class LikeWaveAdmitter:
    """Memoized admission state for one delivery wave.

    All requests in a wave share one timestamp, so a key's sliding
    window cannot lose events mid-wave: its admission capacity ("room")
    is a single number computed once — saturation memo, eviction, limit
    — and every further admission for that key is a dict probe plus a
    decrement.  Pending hits are appended to the deques in one bulk
    :meth:`flush`, which leaves limiter state byte-identical to the
    equivalent scalar :meth:`PolicyEnforcer.admit_like` sequence
    (including the saturation memos the scalar path would have set).

    Room encoding per key: ``n > 0`` admits remain; ``0`` the wave
    consumed the window but no request has been rejected yet (the
    scalar path would not have memoized saturation either); ``-1``
    saturated and memoized.
    """

    __slots__ = (
        "now", "token_only", "_token_limiter", "_day", "_week",
        "_rooms", "_pending", "_events",
        "_day_rooms", "_day_pending", "_day_events",
        "_week_rooms", "_week_pending", "_week_events",
    )

    def __init__(self, token_limiter: SlidingWindowLimiter,
                 day: Optional[SlidingWindowLimiter],
                 week: Optional[SlidingWindowLimiter], now: int) -> None:
        self.now = now
        self._token_limiter = token_limiter
        self._day = day
        self._week = week
        self.token_only = day is None and week is None
        self._rooms: Dict[str, int] = {}
        self._pending: Dict[str, int] = {}
        self._events: Dict[str, Deque[int]] = {}
        self._day_rooms: Dict[str, int] = {}
        self._day_pending: Dict[str, int] = {}
        self._day_events: Dict[str, Deque[int]] = {}
        self._week_rooms: Dict[str, int] = {}
        self._week_pending: Dict[str, int] = {}
        self._week_events: Dict[str, Deque[int]] = {}

    def _room_of(self, limiter: SlidingWindowLimiter, key: str,
                 rooms: Dict[str, int],
                 events_memo: Dict[str, Deque[int]]) -> int:
        """First touch of ``key`` this wave: resolve its capacity.

        Eviction is inlined rather than routed through
        :meth:`SlidingWindowLimiter._evict`: a wave touches each key's
        deque exactly once, so the limiter's same-timestamp eviction
        memo could never hit here and the pops land in the identical
        deque state."""
        now = self.now
        until = limiter._saturated_until.get(key)
        if until is not None:
            if now < until:
                rooms[key] = -1
                return -1
            del limiter._saturated_until[key]
        events = limiter._events.get(key)
        if events is None:
            events = limiter._events[key] = deque()
        else:
            horizon = now - limiter.window_seconds
            while events and events[0] <= horizon:
                events.popleft()
        events_memo[key] = events
        room = limiter.limit - len(events)
        if room <= 0:
            limiter.mark_saturated(key, events)
            rooms[key] = -1
            return -1
        rooms[key] = room
        return room

    def _exhaust(self, limiter: SlidingWindowLimiter, key: str,
                 rooms: Dict[str, int], events_memo: Dict[str, Deque[int]],
                 pending: Dict[str, int]) -> None:
        """First rejection after this wave consumed the key's room.

        Memoizes saturation exactly as the scalar path would at this
        point — where the deque would already contain the wave's hits,
        which here are still pending."""
        events = events_memo[key]
        count = pending.get(key, 0)
        idx = len(events) + count - limiter.limit
        base = events[idx] if idx < len(events) else self.now
        limiter._saturated_until[key] = base + limiter.window_seconds
        rooms[key] = -1
        if _SANITIZER.enabled:
            _SANITIZER.record_limiter("exhaust", redact_token(key))

    def admit(self, token: str, source_ip: Optional[str]) -> Optional[str]:
        """Per-entry verdict: ``None`` admitted, else ``"daily"`` /
        ``"weekly"`` / ``"token"``.  IP windows are charged even when
        the token budget then rejects, matching the scalar order."""
        if source_ip is not None and not self.token_only:
            day = self._day
            if day is not None:
                room = self._day_rooms.get(source_ip)
                if room is None:
                    room = self._room_of(day, source_ip, self._day_rooms,
                                         self._day_events)
                if room <= 0:
                    if room == 0:
                        self._exhaust(day, source_ip, self._day_rooms,
                                      self._day_events, self._day_pending)
                    return "daily"
            week = self._week
            if week is not None:
                room = self._week_rooms.get(source_ip)
                if room is None:
                    room = self._room_of(week, source_ip, self._week_rooms,
                                         self._week_events)
                if room <= 0:
                    if room == 0:
                        self._exhaust(week, source_ip, self._week_rooms,
                                      self._week_events, self._week_pending)
                    return "weekly"
            if day is not None:
                self._day_rooms[source_ip] -= 1
                self._day_pending[source_ip] = (
                    self._day_pending.get(source_ip, 0) + 1)
            if week is not None:
                self._week_rooms[source_ip] -= 1
                self._week_pending[source_ip] = (
                    self._week_pending.get(source_ip, 0) + 1)
        rooms = self._rooms
        room = rooms.get(token)
        if room is None:
            room = self._room_of(self._token_limiter, token, rooms,
                                 self._events)
        if room <= 0:
            if room == 0:
                self._exhaust(self._token_limiter, token, rooms,
                              self._events, self._pending)
            return "token"
        rooms[token] = room - 1
        pending = self._pending
        pending[token] = pending.get(token, 0) + 1
        return None

    def flush(self) -> None:
        """Bulk-append the wave's admitted hits to the live deques."""
        now = self.now
        events = self._events
        for key, count in self._pending.items():
            events[key].extend((now,) * count)
        if not self.token_only:
            day_events = self._day_events
            for key, count in self._day_pending.items():
                day_events[key].extend((now,) * count)
            week_events = self._week_events
            for key, count in self._week_pending.items():
                week_events[key].extend((now,) * count)
