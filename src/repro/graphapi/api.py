"""The Graph API endpoint layer.

Enforcement order for write actions mirrors the real platform:

1. token validity (unknown / expired / invalidated → ``invalid_token``);
2. appsecret_proof if the app's settings require it (Fig. 2b);
3. permission scope (``publish_actions`` for likes/comments);
4. AS blocklist for protected apps (§6.4);
5. per-IP like limits (§6.4);
6. per-token action budget (§6.1);
7. the platform write itself.

Every request — successful or not — lands in the :class:`RequestLog`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.graphapi.errors import (
    AppSecretRequiredError,
    BlockedSourceError,
    GraphApiError,
    IpRateLimitError,
    PermissionDeniedError,
    RateLimitExceededError,
)
from repro.graphapi.log import RequestLog, RequestRecord
from repro.graphapi.ratelimit import PolicyEnforcer, RateLimitPolicy
from repro.graphapi.request import ApiAction, ApiRequest, ApiResponse
from repro.netsim.asn import AsRegistry
from repro.oauth.apps import ApplicationRegistry
from repro.oauth.errors import InvalidTokenError
from repro.oauth.proof import verify_appsecret_proof
from repro.oauth.scopes import Permission
from repro.oauth.tokens import AccessToken, TokenStore
from repro.sim.clock import SimClock
from repro.socialnet.errors import SocialNetworkError
from repro.socialnet.platform import SocialPlatform


class GraphApi:
    """Authenticated API over a :class:`SocialPlatform`."""

    def __init__(self, clock: SimClock, platform: SocialPlatform,
                 apps: ApplicationRegistry, tokens: TokenStore,
                 as_registry: Optional[AsRegistry] = None,
                 policy: Optional[RateLimitPolicy] = None) -> None:
        self.clock = clock
        self.platform = platform
        self.apps = apps
        self.tokens = tokens
        self.as_registry = as_registry
        self.policy = policy or RateLimitPolicy()
        self.enforcer = PolicyEnforcer(self.policy)
        self.log = RequestLog()
        #: Aggregate counters for the charge-only path (see charge_like).
        self.charge_counters: Dict[str, int] = {}
        # Source IPs are drawn from static pools, so IP->ASN memoizes well.
        self._asn_cache: Dict[str, Optional[int]] = {}

    # ------------------------------------------------------------------
    # Core dispatch
    # ------------------------------------------------------------------
    def execute(self, request: ApiRequest) -> ApiResponse:
        """Validate, enforce limits, perform the action, and log it."""
        now = self.clock.now()
        token: Optional[AccessToken] = None
        outcome = "ok"
        try:
            token = self.tokens.validate(request.access_token)
            app = self.apps.get(token.app_id)
            self._check_app_secret(app, request)
            self._check_permissions(token, request.action)
            asn = self._resolve_asn(request.source_ip)
            if request.action.is_like and self.policy.is_as_blocked(
                    app.app_id, asn):
                raise BlockedSourceError(request.source_ip or "?", asn)
            if request.action.is_like:
                violated = self.enforcer.admit_ip_like(request.source_ip, now)
                if violated is not None:
                    raise IpRateLimitError(request.source_ip or "?", violated)
            if request.action.is_write:
                if not self.enforcer.admit_token_action(token.token, now):
                    raise RateLimitExceededError(token.token[-6:])
            data = self._perform(token, request)
            return ApiResponse(action=request.action, data=data)
        except InvalidTokenError:
            outcome = "invalid_token"
            raise
        except GraphApiError as error:
            outcome = error.code
            raise
        except SocialNetworkError:
            outcome = "platform_error"
            raise
        finally:
            self.log.append(RequestRecord(
                timestamp=now,
                action=request.action,
                token=request.access_token,
                user_id=token.user_id if token else None,
                app_id=token.app_id if token else None,
                target_id=self._target_of(request),
                source_ip=request.source_ip,
                asn=self._resolve_asn(request.source_ip),
                outcome=outcome,
            ))

    def _resolve_asn(self, source_ip: Optional[str]) -> Optional[int]:
        if source_ip is None or self.as_registry is None:
            return None
        cached = self._asn_cache.get(source_ip, "miss")
        if cached != "miss":
            return cached
        asn = self.as_registry.asn_of(source_ip)
        self._asn_cache[source_ip] = asn
        return asn

    @staticmethod
    def _target_of(request: ApiRequest) -> Optional[str]:
        for key in ("post_id", "page_id", "object_id", "app_id"):
            if key in request.params:
                return str(request.params[key])
        return None

    @staticmethod
    def _check_app_secret(app, request: ApiRequest) -> None:
        """Verify the HMAC-SHA256 appsecret_proof when required.

        The raw secret is also accepted (some SDKs send it directly),
        but a leaked bare token can produce neither.
        """
        if not app.security.require_app_secret:
            return
        proof = request.appsecret_proof
        if proof == app.secret:
            return
        if not verify_appsecret_proof(app.secret, request.access_token,
                                      proof or ""):
            raise AppSecretRequiredError(app.app_id)

    @staticmethod
    def _check_permissions(token: AccessToken, action: ApiAction) -> None:
        if action in (ApiAction.LIKE_POST, ApiAction.LIKE_PAGE,
                      ApiAction.COMMENT, ApiAction.CREATE_POST):
            if not token.grants(Permission.PUBLISH_ACTIONS):
                raise PermissionDeniedError(
                    Permission.PUBLISH_ACTIONS.value)
        elif action is ApiAction.GET_PROFILE:
            if not token.grants(Permission.PUBLIC_PROFILE):
                raise PermissionDeniedError(Permission.PUBLIC_PROFILE.value)

    def _perform(self, token: AccessToken,
                 request: ApiRequest) -> Dict[str, Any]:
        action = request.action
        params = request.params
        user_id = token.user_id
        app_id = token.app_id
        ip = request.source_ip
        if action is ApiAction.GET_PROFILE:
            return self.platform.get_account(user_id).public_profile()
        if action is ApiAction.GET_APP_STATS:
            app = self.apps.get(str(params["app_id"]))
            return {
                "id": app.app_id,
                "name": app.name,
                "monthly_active_users": app.monthly_active_users,
                "daily_active_users": app.daily_active_users,
            }
        if action is ApiAction.GET_OBJECT_LIKES:
            post = self.platform.get_post(str(params["post_id"]))
            return {"post_id": post.post_id, "likers": post.liker_ids()}
        if action is ApiAction.CREATE_POST:
            post = self.platform.create_post(
                user_id, str(params["text"]), via_app_id=app_id,
                source_ip=ip)
            return {"post_id": post.post_id}
        if action is ApiAction.LIKE_POST:
            like = self.platform.like_post(
                user_id, str(params["post_id"]), via_app_id=app_id,
                source_ip=ip)
            return {"object_id": like.object_id, "liker_id": like.liker_id}
        if action is ApiAction.LIKE_PAGE:
            like = self.platform.like_page(
                user_id, str(params["page_id"]), via_app_id=app_id,
                source_ip=ip)
            return {"object_id": like.object_id, "liker_id": like.liker_id}
        if action is ApiAction.COMMENT:
            comment = self.platform.comment_on_post(
                user_id, str(params["post_id"]), str(params["text"]),
                via_app_id=app_id, source_ip=ip)
            return {"comment_id": comment.comment_id}
        raise ValueError(f"unhandled action: {action}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Charge-only path
    # ------------------------------------------------------------------
    def charge_like(self, access_token: str,
                    source_ip: Optional[str] = None,
                    appsecret_proof: Optional[str] = None) -> None:
        """Run the full admission path for a like without the platform
        write.

        Used to model a network's bulk workload (likes on arbitrary
        member posts): tokens, app-secret proofs, AS blocks and IP/token
        rate limits are all enforced and charged exactly as in
        :meth:`execute`, but no content is materialized and nothing is
        appended to the request log.  Aggregate volume is tracked in
        :attr:`charge_counters`.
        """
        now = self.clock.now()
        token = self.tokens.validate(access_token)
        app = self.apps.get(token.app_id)
        if app.security.require_app_secret and appsecret_proof != app.secret:
            if not verify_appsecret_proof(app.secret, access_token,
                                          appsecret_proof or ""):
                raise AppSecretRequiredError(app.app_id)
        if not token.grants(Permission.PUBLISH_ACTIONS):
            raise PermissionDeniedError(Permission.PUBLISH_ACTIONS.value)
        asn = self._resolve_asn(source_ip)
        if self.policy.is_as_blocked(app.app_id, asn):
            raise BlockedSourceError(source_ip or "?", asn)
        violated = self.enforcer.admit_ip_like(source_ip, now)
        if violated is not None:
            raise IpRateLimitError(source_ip or "?", violated)
        if not self.enforcer.admit_token_action(token.token, now):
            raise RateLimitExceededError(token.token[-6:])
        self.charge_counters["likes"] = (
            self.charge_counters.get("likes", 0) + 1)

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def get_profile(self, access_token: str,
                    appsecret_proof: Optional[str] = None,
                    source_ip: Optional[str] = None) -> ApiResponse:
        return self.execute(ApiRequest(
            ApiAction.GET_PROFILE, access_token,
            appsecret_proof=appsecret_proof, source_ip=source_ip))

    def like_post(self, access_token: str, post_id: str,
                  appsecret_proof: Optional[str] = None,
                  source_ip: Optional[str] = None) -> ApiResponse:
        return self.execute(ApiRequest(
            ApiAction.LIKE_POST, access_token, {"post_id": post_id},
            appsecret_proof=appsecret_proof, source_ip=source_ip))

    def like_page(self, access_token: str, page_id: str,
                  appsecret_proof: Optional[str] = None,
                  source_ip: Optional[str] = None) -> ApiResponse:
        return self.execute(ApiRequest(
            ApiAction.LIKE_PAGE, access_token, {"page_id": page_id},
            appsecret_proof=appsecret_proof, source_ip=source_ip))

    def comment(self, access_token: str, post_id: str, text: str,
                appsecret_proof: Optional[str] = None,
                source_ip: Optional[str] = None) -> ApiResponse:
        return self.execute(ApiRequest(
            ApiAction.COMMENT, access_token,
            {"post_id": post_id, "text": text},
            appsecret_proof=appsecret_proof, source_ip=source_ip))

    def create_post(self, access_token: str, text: str,
                    appsecret_proof: Optional[str] = None,
                    source_ip: Optional[str] = None) -> ApiResponse:
        return self.execute(ApiRequest(
            ApiAction.CREATE_POST, access_token, {"text": text},
            appsecret_proof=appsecret_proof, source_ip=source_ip))

    def get_app_stats(self, access_token: str, app_id: str) -> ApiResponse:
        return self.execute(ApiRequest(
            ApiAction.GET_APP_STATS, access_token, {"app_id": app_id}))
