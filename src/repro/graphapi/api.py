"""The Graph API endpoint layer.

Enforcement order for write actions mirrors the real platform:

1. token validity (unknown / expired / invalidated → ``invalid_token``);
2. appsecret_proof if the app's settings require it (Fig. 2b);
3. permission scope (``publish_actions`` for likes/comments);
4. AS blocklist for protected apps (§6.4);
5. per-IP like limits (§6.4);
6. per-token action budget (§6.1);
7. the platform write itself.

Every request — successful or not — lands in the :class:`RequestLog`.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.graphapi.errors import (
    ApiTimeout,
    AppSecretRequiredError,
    BlockedSourceError,
    GraphApiError,
    IpRateLimitError,
    PermissionDeniedError,
    RateLimitExceededError,
    TransientApiError,
)
from repro.graphapi.log import RequestLog
from repro.graphapi.ratelimit import PolicyEnforcer, RateLimitPolicy
from repro.graphapi.request import (
    LIKE_ACTIONS,
    WRITE_ACTIONS,
    ApiAction,
    ApiRequest,
    ApiResponse,
)
from repro.netsim.asn import AsRegistry
from repro.oauth.redact import redact_token
from repro.oauth.apps import ApplicationRegistry
from repro.oauth.errors import InvalidTokenError
from repro.oauth.proof import verify_appsecret_proof
from repro.oauth.scopes import Permission
from repro.oauth.tokens import AccessToken, TokenStore
from repro.sim.clock import SimClock
from repro.socialnet.account import AccountStatus
from repro.socialnet.errors import SocialNetworkError
from repro.socialnet.platform import SocialPlatform
from repro.telemetry.registry import TELEMETRY
from repro.telemetry.tracing import TRACER


class GraphApi:
    """Authenticated API over a :class:`SocialPlatform`."""

    def __init__(self, clock: SimClock, platform: SocialPlatform,
                 apps: ApplicationRegistry, tokens: TokenStore,
                 as_registry: Optional[AsRegistry] = None,
                 policy: Optional[RateLimitPolicy] = None) -> None:
        self.clock = clock
        self.platform = platform
        self.apps = apps
        self.tokens = tokens
        self.as_registry = as_registry
        self.policy = policy or RateLimitPolicy()
        self.enforcer = PolicyEnforcer(self.policy)
        self.log = RequestLog()
        #: Fault injector (:class:`repro.faults.FaultInjector`) or None.
        #: ``None`` keeps every request path fault-free at the cost of a
        #: single attribute check — an empty plan is byte-identical to a
        #: build without the subsystem.
        self.faults = None
        #: Aggregate counters for the charge-only path (see charge_like).
        self.charge_counters: Dict[str, int] = {"likes": 0}
        # Source IPs are drawn from static pools, so IP->ASN memoizes well.
        self._asn_cache: Dict[str, Optional[int]] = {}
        # Charge-path token memo: access token -> (token, app, granted).
        # Token objects are shared references, so the mutable validity
        # bits (invalidated, expiry) are still checked on every call.
        self._charge_token_cache: Dict[
            str, Tuple[AccessToken, Any, bool]] = {}

    # ------------------------------------------------------------------
    # Core dispatch
    # ------------------------------------------------------------------
    def execute(self, request: ApiRequest) -> ApiResponse:
        """Validate, enforce limits, perform the action, and log it."""
        now = self.clock.now()
        token: Optional[AccessToken] = None
        outcome = "ok"
        asn: Optional[int] = None
        asn_resolved = False
        try:
            inj = self.faults
            if inj is not None:
                fault = inj.decide(request.action.name,
                                   request.access_token)
                if fault is not None:
                    # invalidate_token already flipped the token in the
                    # store; validation below surfaces it naturally.
                    self._raise_fault(fault, request.access_token)
            token = self.tokens.validate(request.access_token)
            app = self.apps.get(token.app_id)
            self._check_app_secret(app, request)
            self._check_permissions(token, request.action)
            asn = self._resolve_asn(request.source_ip)
            asn_resolved = True
            if request.action in LIKE_ACTIONS:
                if self.policy.is_as_blocked(app.app_id, asn):
                    raise BlockedSourceError(request.source_ip or "?", asn)
                violated = self.enforcer.admit_like(
                    token.token, request.source_ip, now)
                if violated == "token":
                    raise RateLimitExceededError(redact_token(token.token))
                if violated is not None:
                    raise IpRateLimitError(request.source_ip or "?", violated)
            elif request.action in WRITE_ACTIONS:
                if not self.enforcer.admit_token_action(token.token, now):
                    raise RateLimitExceededError(redact_token(token.token))
            data = self._perform(token, request)
            return ApiResponse(action=request.action, data=data)
        except InvalidTokenError:
            outcome = "invalid_token"
            raise
        except GraphApiError as error:
            outcome = error.code
            raise
        except SocialNetworkError:
            outcome = "platform_error"
            raise
        finally:
            if not asn_resolved:
                # Admission failed before reaching ASN resolution.
                asn = self._resolve_asn(request.source_ip)
            self.log.append_row(
                now, request.action, request.access_token,
                token.user_id if token else None,
                token.app_id if token else None,
                self._target_of(request), request.source_ip, asn, outcome)
            if TELEMETRY.enabled:
                action = request.action.name
                TELEMETRY.count("graphapi_requests_total",
                                action=action, outcome=outcome)
                if outcome != "ok":
                    TELEMETRY.count("graphapi_errors_total", code=outcome)

    @staticmethod
    def _raise_fault(fault: str, access_token: str) -> None:
        """Turn a fault-plan decision into the matching API failure."""
        if fault == "transient":
            raise TransientApiError()
        if fault == "timeout":
            raise ApiTimeout()
        if fault == "rate_limit":
            raise RateLimitExceededError(redact_token(access_token))
        # "invalidate_token": no direct failure here — the request
        # proceeds and dies through the normal invalid_token machinery.

    # ------------------------------------------------------------------
    # Batched admission fast paths
    # ------------------------------------------------------------------
    def execute_batch(
            self,
            requests: Sequence[ApiRequest]) -> Optional[List[ApiResponse]]:
        """Atomically execute a batch of *like* requests.

        The scalar admission pipeline of :meth:`execute` is re-run here
        in two phases — a pure validation pass (token / proof / scope /
        AS block / rate-limit verdicts / platform pre-checks, amortized
        across distinct tokens, scopes, apps and IPs), then a single
        apply pass (limiter charges, platform writes, log appends in
        request order).

        All-or-nothing: when every request would succeed, the batch is
        applied and the responses are returned, leaving byte-identical
        state to scalar execution.  When *any* request would fail,
        ``None`` is returned with **no state mutated** — callers fall
        back to per-request :meth:`execute`, which surfaces individual
        errors and partial side effects exactly as before.
        """
        inj = self.faults
        if inj is not None and requests and inj.decide_chunk(
                len(requests), key=requests[0].access_token):
            return None
        now = self.clock._now
        peek = self.tokens.peek
        apps_get = self.apps.get
        policy = self.policy
        resolve = self._resolve_asn
        posts = self.platform.posts
        pages = self.platform.pages
        accounts = self.platform.accounts
        token_cache = self._charge_token_cache
        account_ok: Dict[str, bool] = {}
        batch_liked = set()
        plan = []
        for request in requests:
            action = request.action
            if action not in LIKE_ACTIONS:
                return None
            cached = token_cache.get(request.access_token)
            if cached is None:
                token = peek(request.access_token)
                if token is None:
                    return None
                app = apps_get(token.app_id)
                granted = token.grants(Permission.PUBLISH_ACTIONS)
                token_cache[request.access_token] = (token, app, granted)
            else:
                token, app, granted = cached
            if token.invalidated or now >= token.expires_at:
                return None
            if app.security.require_app_secret:
                proof = request.appsecret_proof
                if proof != app.secret and not verify_appsecret_proof(
                        app.secret, request.access_token, proof or ""):
                    return None
            if not granted:
                return None
            asn = resolve(request.source_ip)
            if (policy.blocked_asns_by_app
                    and policy.is_as_blocked(app.app_id, asn)):
                return None
            # Platform pre-checks: a write that would raise (unknown or
            # duplicate target, suspended account) must bail out here,
            # because the scalar path charges limits before performing.
            if action is ApiAction.LIKE_POST:
                object_id = str(request.params["post_id"])
                target = posts.get(object_id)
            else:
                object_id = str(request.params["page_id"])
                target = pages.get(object_id)
            if target is None:
                return None
            active = account_ok.get(token.user_id)
            if active is None:
                account = accounts.get(token.user_id)
                active = (account is not None
                          and account.status is AccountStatus.ACTIVE)
                account_ok[token.user_id] = active
            if not active:
                return None
            key = (token.user_id, object_id)
            if key in batch_liked or target.liked_by(token.user_id):
                return None
            batch_liked.add(key)
            plan.append((request, token, asn, object_id))
        pairs = [(req.access_token, req.source_ip)
                 for req, _, _, _ in plan]
        if self.enforcer.admit_like_batch(pairs, now) is not None:
            return None
        like_post = self.platform.like_post
        like_page = self.platform.like_page
        append_row = self.log.append_row
        responses = []
        for request, token, asn, object_id in plan:
            if request.action is ApiAction.LIKE_POST:
                like = like_post(token.user_id, object_id,
                                 via_app_id=token.app_id,
                                 source_ip=request.source_ip)
            else:
                like = like_page(token.user_id, object_id,
                                 via_app_id=token.app_id,
                                 source_ip=request.source_ip)
            append_row(now, request.action, request.access_token,
                       token.user_id, token.app_id, object_id,
                       request.source_ip, asn, "ok")
            responses.append(ApiResponse(
                action=request.action,
                data={"object_id": like.object_id,
                      "liker_id": like.liker_id}))
        return responses

    def charge_like_batch(
            self, entries: Sequence[Tuple[str, Optional[str]]],
            appsecret_proof: Optional[str] = None) -> bool:
        """Vectorized :meth:`charge_like` over ``(token, source_ip)``.

        Token validity, proof, scope, ASN and AS-block checks are
        amortized per distinct token / app / (app, IP); the rate-limit
        verdicts are computed for the whole batch and then charged in
        one pass.  Returns ``True`` when every entry was admitted and
        charged.  All-or-nothing: if any entry would be rejected the
        method returns ``False`` with **no state mutated**, and callers
        replay the batch through scalar :meth:`charge_like` calls to get
        per-entry errors and partial charges.
        """
        inj = self.faults
        if inj is not None and entries and inj.decide_chunk(
                len(entries), key=entries[0][0]):
            return False
        now = self.clock._now
        peek = self.tokens.peek
        apps_get = self.apps.get
        policy = self.policy
        resolve = self._resolve_asn
        token_cache = self._charge_token_cache
        blocked: Dict[Tuple[str, Optional[str]], bool] = {}
        # A batch almost always spans one application (a network's
        # members share its app), so memo the proof-requirement lookup.
        last_app = None
        proof_ok = False
        for access_token, source_ip in entries:
            cached = token_cache.get(access_token)
            if cached is None:
                token = peek(access_token)
                if (token is None or token.invalidated
                        or token.is_expired(now)):
                    return False
                app = apps_get(token.app_id)
                granted = token.grants(Permission.PUBLISH_ACTIONS)
                token_cache[access_token] = (token, app, granted)
            else:
                token, app, granted = cached
                if token.invalidated or now >= token.expires_at:
                    return False
            if app is not last_app:
                last_app = app
                proof_ok = (not app.security.require_app_secret
                            or appsecret_proof == app.secret)
            if not proof_ok:
                if not verify_appsecret_proof(app.secret, access_token,
                                              appsecret_proof or ""):
                    return False
            if not granted:
                return False
            # AS blocking is off (empty blocklist) until the §6.4
            # intervention lands; skip the per-entry ASN work entirely.
            if policy.blocked_asns_by_app:
                key = (app.app_id, source_ip)
                verdict = blocked.get(key)
                if verdict is None:
                    verdict = policy.is_as_blocked(app.app_id,
                                                   resolve(source_ip))
                    blocked[key] = verdict
                if verdict:
                    return False
        if self.enforcer.admit_like_batch(entries, now) is not None:
            return False
        self.charge_counters["likes"] += len(entries)
        return True

    # ------------------------------------------------------------------
    # Wave admission (planned delivery waves; see collusion/network.py)
    # ------------------------------------------------------------------
    def delivery_wave(self, post_id: Optional[str] = None) -> "DeliveryWave":
        """Open a :class:`DeliveryWave` at the current clock instant.

        The wave extends :meth:`execute_batch` / :meth:`charge_like_batch`
        from all-or-nothing chunks to whole planned delivery rounds:
        per-entry verdicts with the exact semantics (and, fault-free,
        the exact byte stream) of :meth:`try_like_post` /
        :meth:`try_charge_like`, but with token validity, app/proof/
        scope checks and rate-limit window capacities memoized per wave,
        and rate-limit charges plus request-log rows applied in bulk
        when the wave flushes."""
        return DeliveryWave(self, post_id)

    def _resolve_asn(self, source_ip: Optional[str]) -> Optional[int]:
        if source_ip is None or self.as_registry is None:
            return None
        cached = self._asn_cache.get(source_ip, "miss")
        if cached != "miss":
            return cached
        asn = self.as_registry.asn_of(source_ip)
        self._asn_cache[source_ip] = asn
        return asn

    @staticmethod
    def _target_of(request: ApiRequest) -> Optional[str]:
        for key in ("post_id", "page_id", "object_id", "app_id"):
            if key in request.params:
                return str(request.params[key])
        return None

    @staticmethod
    def _check_app_secret(app, request: ApiRequest) -> None:
        """Verify the HMAC-SHA256 appsecret_proof when required.

        The raw secret is also accepted (some SDKs send it directly),
        but a leaked bare token can produce neither.
        """
        if not app.security.require_app_secret:
            return
        proof = request.appsecret_proof
        if proof == app.secret:
            return
        if not verify_appsecret_proof(app.secret, request.access_token,
                                      proof or ""):
            raise AppSecretRequiredError(app.app_id)

    @staticmethod
    def _check_permissions(token: AccessToken, action: ApiAction) -> None:
        if action in (ApiAction.LIKE_POST, ApiAction.LIKE_PAGE,
                      ApiAction.COMMENT, ApiAction.CREATE_POST):
            if not token.grants(Permission.PUBLISH_ACTIONS):
                raise PermissionDeniedError(
                    Permission.PUBLISH_ACTIONS.value)
        elif action is ApiAction.GET_PROFILE:
            if not token.grants(Permission.PUBLIC_PROFILE):
                raise PermissionDeniedError(Permission.PUBLIC_PROFILE.value)

    def _perform(self, token: AccessToken,
                 request: ApiRequest) -> Dict[str, Any]:
        action = request.action
        params = request.params
        user_id = token.user_id
        app_id = token.app_id
        ip = request.source_ip
        if action is ApiAction.GET_PROFILE:
            return self.platform.get_account(user_id).public_profile()
        if action is ApiAction.GET_APP_STATS:
            app = self.apps.get(str(params["app_id"]))
            return {
                "id": app.app_id,
                "name": app.name,
                "monthly_active_users": app.monthly_active_users,
                "daily_active_users": app.daily_active_users,
            }
        if action is ApiAction.GET_OBJECT_LIKES:
            post = self.platform.get_post(str(params["post_id"]))
            return {"post_id": post.post_id, "likers": post.liker_ids()}
        if action is ApiAction.CREATE_POST:
            post = self.platform.create_post(
                user_id, str(params["text"]), via_app_id=app_id,
                source_ip=ip)
            return {"post_id": post.post_id}
        if action is ApiAction.LIKE_POST:
            like = self.platform.like_post(
                user_id, str(params["post_id"]), via_app_id=app_id,
                source_ip=ip)
            return {"object_id": like.object_id, "liker_id": like.liker_id}
        if action is ApiAction.LIKE_PAGE:
            like = self.platform.like_page(
                user_id, str(params["page_id"]), via_app_id=app_id,
                source_ip=ip)
            return {"object_id": like.object_id, "liker_id": like.liker_id}
        if action is ApiAction.COMMENT:
            comment = self.platform.comment_on_post(
                user_id, str(params["post_id"]), str(params["text"]),
                via_app_id=app_id, source_ip=ip)
            return {"comment_id": comment.comment_id}
        raise ValueError(f"unhandled action: {action}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Charge-only path
    # ------------------------------------------------------------------
    def charge_like(self, access_token: str,
                    source_ip: Optional[str] = None,
                    appsecret_proof: Optional[str] = None) -> None:
        """Run the full admission path for a like without the platform
        write.

        Used to model a network's bulk workload (likes on arbitrary
        member posts): tokens, app-secret proofs, AS blocks and IP/token
        rate limits are all enforced and charged exactly as in
        :meth:`execute`, but no content is materialized and nothing is
        appended to the request log.  Aggregate volume is tracked in
        :attr:`charge_counters`.
        """
        now = self.clock.now()
        inj = self.faults
        if inj is not None:
            fault = inj.decide("CHARGE_LIKE", access_token)
            if fault is not None:
                self._raise_fault(fault, access_token)
        cached = self._charge_token_cache.get(access_token)
        if cached is None:
            token = self.tokens.validate(access_token)
            app = self.apps.get(token.app_id)
            granted = token.grants(Permission.PUBLISH_ACTIONS)
            self._charge_token_cache[access_token] = (token, app, granted)
        else:
            token, app, granted = cached
            if token.invalidated:
                raise InvalidTokenError(
                    f"access token invalidated "
                    f"({token.invalidation_reason})")
            if token.is_expired(now):
                raise InvalidTokenError("access token expired")
        if app.security.require_app_secret and appsecret_proof != app.secret:
            if not verify_appsecret_proof(app.secret, access_token,
                                          appsecret_proof or ""):
                raise AppSecretRequiredError(app.app_id)
        if not granted:
            raise PermissionDeniedError(Permission.PUBLISH_ACTIONS.value)
        if self.policy.blocked_asns_by_app:
            asn = self._resolve_asn(source_ip)
            if self.policy.is_as_blocked(app.app_id, asn):
                raise BlockedSourceError(source_ip or "?", asn)
        violated = self.enforcer.admit_like(token.token, source_ip, now)
        if violated == "token":
            raise RateLimitExceededError(redact_token(token.token))
        if violated is not None:
            raise IpRateLimitError(source_ip or "?", violated)
        self.charge_counters["likes"] += 1

    def try_charge_like(self, access_token: str,
                        source_ip: Optional[str] = None,
                        appsecret_proof: Optional[str] = None
                        ) -> Optional[str]:
        """Non-raising :meth:`charge_like`.

        Identical enforcement, charges and counters, but rejections come
        back as a code instead of an exception — ``None`` on success,
        else ``"invalid_token"`` / ``"app_secret"`` / ``"permission"`` /
        ``"blocked"`` / ``"token_limit"`` / ``"ip_limit"``.  Bulk
        delivery loops reject millions of requests once the §6
        countermeasures bite; returning a code keeps that path free of
        exception construction and unwinding.
        """
        # Direct attribute reads of the shared clock / token expiry: this
        # is the single hottest call site in the simulator, so the method
        # wrappers are bypassed (the semantics are identical).
        now = self.clock._now
        inj = self.faults
        if inj is not None:
            fault = inj.decide("CHARGE_LIKE", access_token)
            if fault == "transient":
                return "transient"
            if fault == "timeout":
                return "timeout"
            if fault == "rate_limit":
                return "token_limit"
            # "invalidate_token" falls through to the validity checks.
        cached = self._charge_token_cache.get(access_token)
        if cached is None:
            token = self.tokens.peek(access_token)
            if (token is None or token.invalidated
                    or token.is_expired(now)):
                return "invalid_token"
            app = self.apps.get(token.app_id)
            granted = token.grants(Permission.PUBLISH_ACTIONS)
            self._charge_token_cache[access_token] = (token, app, granted)
        else:
            token, app, granted = cached
            if token.invalidated or now >= token.expires_at:
                return "invalid_token"
        if app.security.require_app_secret and appsecret_proof != app.secret:
            if not verify_appsecret_proof(app.secret, access_token,
                                          appsecret_proof or ""):
                return "app_secret"
        if not granted:
            return "permission"
        policy = self.policy
        if policy.blocked_asns_by_app:
            asn = self._resolve_asn(source_ip)
            if policy.is_as_blocked(app.app_id, asn):
                return "blocked"
        enforcer = self.enforcer
        limiter = enforcer._token_limiter
        if (policy.ip_likes_per_day is None
                and policy.ip_likes_per_week is None
                and limiter.limit == policy.token_actions_per_day):
            # Inlined token-only admission (admit_like's fast path):
            # this is the million-plus-per-day rejection loop once §6.1
            # tightens the budget, so spare it the extra frames.  The
            # policy-field gate doubles as the _sync() check — any other
            # configuration (IP limits on, token limit just changed)
            # falls through to admit_like, which re-syncs the limiters.
            until = limiter._saturated_until.get(access_token)
            if until is not None:
                if now < until:
                    return "token_limit"
                del limiter._saturated_until[access_token]
            events = limiter._events.get(access_token)
            if events is None:
                events = limiter._events[access_token] = deque()
            else:
                horizon = now - limiter.window_seconds
                while events and events[0] <= horizon:
                    events.popleft()
            if len(events) >= limiter.limit:
                limiter.mark_saturated(access_token, events)
                return "token_limit"
            events.append(now)
        else:
            violated = enforcer.admit_like(token.token, source_ip, now)
            if violated == "token":
                return "token_limit"
            if violated is not None:
                return "ip_limit"
        self.charge_counters["likes"] += 1
        return None

    def try_like_post(self, access_token: str, post_id: str,
                      source_ip: Optional[str] = None,
                      appsecret_proof: Optional[str] = None
                      ) -> Optional[str]:
        """Non-raising :meth:`like_post`.

        Runs the exact :meth:`execute` pipeline for a ``LIKE_POST``
        request — same enforcement order, same platform write, same log
        row — but reports rejections as codes (the same vocabulary as
        :meth:`try_charge_like`, plus ``"platform_error"``) instead of
        exceptions, sparing the bulk delivery loops millions of raises.
        """
        now = self.clock._now
        inj = self.faults
        if inj is not None:
            fault = inj.decide("LIKE_POST", access_token)
            if fault is not None and fault != "invalidate_token":
                # The request dies before authentication, so the log row
                # carries no user/app attribution — like a real 5xx.
                asn = self._resolve_asn(source_ip)
                if fault == "transient":
                    self.log.append_row(
                        now, ApiAction.LIKE_POST, access_token, None,
                        None, post_id, source_ip, asn,
                        TransientApiError.code)
                    return "transient"
                if fault == "timeout":
                    self.log.append_row(
                        now, ApiAction.LIKE_POST, access_token, None,
                        None, post_id, source_ip, asn, ApiTimeout.code)
                    return "timeout"
                self.log.append_row(
                    now, ApiAction.LIKE_POST, access_token, None, None,
                    post_id, source_ip, asn, RateLimitExceededError.code)
                return "token_limit"
        cached = self._charge_token_cache.get(access_token)
        if cached is None:
            token = self.tokens.peek(access_token)
            if (token is not None and not token.invalidated
                    and not token.is_expired(now)):
                app = self.apps.get(token.app_id)
                granted = token.grants(Permission.PUBLISH_ACTIONS)
                self._charge_token_cache[access_token] = (
                    token, app, granted)
            else:
                token = None
        else:
            token, app, granted = cached
            if token.invalidated or now >= token.expires_at:
                token = None
        asn = self._resolve_asn(source_ip)
        append_row = self.log.append_row
        if token is None:
            append_row(now, ApiAction.LIKE_POST, access_token, None, None,
                       post_id, source_ip, asn, "invalid_token")
            return "invalid_token"
        user_id = token.user_id
        app_id = token.app_id
        if app.security.require_app_secret and appsecret_proof != app.secret:
            if not verify_appsecret_proof(app.secret, access_token,
                                          appsecret_proof or ""):
                append_row(now, ApiAction.LIKE_POST, access_token, user_id,
                           app_id, post_id, source_ip, asn,
                           AppSecretRequiredError.code)
                return "app_secret"
        if not granted:
            append_row(now, ApiAction.LIKE_POST, access_token, user_id,
                       app_id, post_id, source_ip, asn,
                       PermissionDeniedError.code)
            return "permission"
        policy = self.policy
        if (policy.blocked_asns_by_app
                and policy.is_as_blocked(app_id, asn)):
            append_row(now, ApiAction.LIKE_POST, access_token, user_id,
                       app_id, post_id, source_ip, asn,
                       BlockedSourceError.code)
            return "blocked"
        violated = self.enforcer.admit_like(access_token, source_ip, now)
        if violated is not None:
            if violated == "token":
                append_row(now, ApiAction.LIKE_POST, access_token, user_id,
                           app_id, post_id, source_ip, asn,
                           RateLimitExceededError.code)
                return "token_limit"
            append_row(now, ApiAction.LIKE_POST, access_token, user_id,
                       app_id, post_id, source_ip, asn,
                       IpRateLimitError.code)
            return "ip_limit"
        try:
            self.platform.like_post(user_id, post_id, via_app_id=app_id,
                                    source_ip=source_ip)
        except SocialNetworkError:
            append_row(now, ApiAction.LIKE_POST, access_token, user_id,
                       app_id, post_id, source_ip, asn, "platform_error")
            return "platform_error"
        append_row(now, ApiAction.LIKE_POST, access_token, user_id,
                   app_id, post_id, source_ip, asn, "ok")
        return None

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def get_profile(self, access_token: str,
                    appsecret_proof: Optional[str] = None,
                    source_ip: Optional[str] = None) -> ApiResponse:
        return self.execute(ApiRequest(
            ApiAction.GET_PROFILE, access_token,
            appsecret_proof=appsecret_proof, source_ip=source_ip))

    def like_post(self, access_token: str, post_id: str,
                  appsecret_proof: Optional[str] = None,
                  source_ip: Optional[str] = None) -> ApiResponse:
        return self.execute(ApiRequest(
            ApiAction.LIKE_POST, access_token, {"post_id": post_id},
            appsecret_proof=appsecret_proof, source_ip=source_ip))

    def like_page(self, access_token: str, page_id: str,
                  appsecret_proof: Optional[str] = None,
                  source_ip: Optional[str] = None) -> ApiResponse:
        return self.execute(ApiRequest(
            ApiAction.LIKE_PAGE, access_token, {"page_id": page_id},
            appsecret_proof=appsecret_proof, source_ip=source_ip))

    def comment(self, access_token: str, post_id: str, text: str,
                appsecret_proof: Optional[str] = None,
                source_ip: Optional[str] = None) -> ApiResponse:
        return self.execute(ApiRequest(
            ApiAction.COMMENT, access_token,
            {"post_id": post_id, "text": text},
            appsecret_proof=appsecret_proof, source_ip=source_ip))

    def create_post(self, access_token: str, text: str,
                    appsecret_proof: Optional[str] = None,
                    source_ip: Optional[str] = None) -> ApiResponse:
        return self.execute(ApiRequest(
            ApiAction.CREATE_POST, access_token, {"text": text},
            appsecret_proof=appsecret_proof, source_ip=source_ip))

    def get_app_stats(self, access_token: str, app_id: str) -> ApiResponse:
        return self.execute(ApiRequest(
            ApiAction.GET_APP_STATS, access_token, {"app_id": app_id}))


class DeliveryWave:
    """Bulk admission context for one planned delivery wave.

    Every entry in a wave shares one clock instant, one application and
    (for platform writes) one target post, so the per-request pipeline
    of :meth:`GraphApi.try_like_post` / :meth:`GraphApi.try_charge_like`
    collapses: token/app/scope state is memoized per wave (re-validated
    per entry only while a fault plan is live, which is the only way a
    token can die mid-wave), rate-limit windows become memoized
    per-(key, wave-timestamp) capacity transitions via
    :class:`~repro.graphapi.ratelimit.LikeWaveAdmitter`, and log rows /
    limiter hits / charge counters land in bulk at :meth:`finish`.

    The per-entry verdict codes, bookkeeping order and RNG/fault-stream
    consumption are byte-identical to the scalar methods, which remain
    the verification oracle (``batch_requests_enabled = False``).
    Callers must :meth:`finish` the wave before anything else reads the
    request log or touches the like limiters.
    """

    __slots__ = (
        "api", "now", "post_id", "_inj", "_admitter", "_token_cache",
        "_peek", "_apps_get", "_policy", "_resolve", "_like_post",
        "_tokens", "_users", "_apps", "_ips", "_asns", "_outcomes",
        "_charged", "_finished", "_last_app", "_proof_skip",
        "_attempts", "_denied_token", "_denied_ip", "_span",
    )

    def __init__(self, api: GraphApi, post_id: Optional[str]) -> None:
        self.api = api
        self.now = api.clock._now
        self.post_id = post_id
        self._inj = api.faults
        self._admitter = api.enforcer.like_wave(self.now)
        self._token_cache = api._charge_token_cache
        self._peek = api.tokens.peek
        self._apps_get = api.apps.get
        self._policy = api.policy
        self._resolve = api._resolve_asn
        self._like_post = api.platform.like_post
        # Row buffers (parallel, in request order) for the like path.
        self._tokens: List[str] = []
        self._users: List[Optional[str]] = []
        self._apps: List[Optional[str]] = []
        self._ips: List[Optional[str]] = []
        self._asns: List[Optional[int]] = []
        self._outcomes: List[str] = []
        self._charged = 0
        self._finished = False
        # Wave-shape tallies (plain ints, maintained unconditionally so
        # telemetry enablement cannot perturb the execution path).
        self._attempts = 0
        self._denied_token = 0
        self._denied_ip = 0
        self._span = TRACER.begin("wave")
        # Waves span one network whose members share an app, so the
        # proof-requirement lookup memoizes on app identity.
        self._last_app = None
        self._proof_skip = False

    # ------------------------------------------------------------------
    def _lookup(self, access_token: str):
        """Resolve (token, app, granted) via the shared charge cache;
        ``None`` when the token is dead.  Mirrors the scalar cache
        discipline exactly (validity bits re-checked per call)."""
        cached = self._token_cache.get(access_token)
        if cached is None:
            token = self._peek(access_token)
            if (token is None or token.invalidated
                    or token.is_expired(self.now)):
                return None
            app = self._apps_get(token.app_id)
            granted = token.grants(Permission.PUBLISH_ACTIONS)
            self._token_cache[access_token] = (token, app, granted)
            return token, app, granted
        token, app, granted = cached
        if token.invalidated or self.now >= token.expires_at:
            return None
        return cached

    def charge(self, access_token: str,
               source_ip: Optional[str] = None) -> Optional[str]:
        """Wave analogue of :meth:`GraphApi.try_charge_like`: identical
        enforcement, verdict codes and fault-stream consumption; the
        limiter charge is pending until :meth:`finish`.

        This is the single hottest call in a campaign (millions of
        background charges per simulated day, most of them rejected once
        the §6.1 budget saturates), so the lookup and the token-only
        admission are fully inlined."""
        self._attempts += 1
        inj = self._inj
        if inj is not None:
            fault = inj.decide("CHARGE_LIKE", access_token)
            if fault == "transient":
                return "transient"
            if fault == "timeout":
                return "timeout"
            if fault == "rate_limit":
                self._denied_token += 1
                return "token_limit"
        now = self.now
        cached = self._token_cache.get(access_token)
        if cached is None:
            token = self._peek(access_token)
            if (token is None or token.invalidated
                    or token.is_expired(now)):
                return "invalid_token"
            app = self._apps_get(token.app_id)
            granted = token.grants(Permission.PUBLISH_ACTIONS)
            self._token_cache[access_token] = (token, app, granted)
        else:
            token, app, granted = cached
            if token.invalidated or now >= token.expires_at:
                return "invalid_token"
        if app is not self._last_app:
            self._last_app = app
            self._proof_skip = not app.security.require_app_secret
        if not self._proof_skip:
            if not verify_appsecret_proof(app.secret, access_token, ""):
                return "app_secret"
        if not granted:
            return "permission"
        policy = self._policy
        if policy.blocked_asns_by_app:
            if policy.is_as_blocked(app.app_id, self._resolve(source_ip)):
                return "blocked"
        adm = self._admitter
        if adm.token_only:
            rooms = adm._rooms
            room = rooms.get(access_token)
            if room is None:
                # First touch this wave: resolve the token's remaining
                # window capacity (LikeWaveAdmitter._room_of, inlined).
                limiter = adm._token_limiter
                until = limiter._saturated_until.get(access_token)
                if until is not None:
                    if now < until:
                        rooms[access_token] = -1
                        self._denied_token += 1
                        return "token_limit"
                    del limiter._saturated_until[access_token]
                events = limiter._events.get(access_token)
                if events is None:
                    events = limiter._events[access_token] = deque()
                else:
                    horizon = now - limiter.window_seconds
                    while events and events[0] <= horizon:
                        events.popleft()
                adm._events[access_token] = events
                room = limiter.limit - len(events)
                if room <= 0:
                    limiter.mark_saturated(access_token, events)
                    rooms[access_token] = -1
                    self._denied_token += 1
                    return "token_limit"
            elif room <= 0:
                if room == 0:
                    adm._exhaust(adm._token_limiter, access_token, rooms,
                                 adm._events, adm._pending)
                self._denied_token += 1
                return "token_limit"
            rooms[access_token] = room - 1
            pending = adm._pending
            pending[access_token] = pending.get(access_token, 0) + 1
        else:
            violated = adm.admit(access_token, source_ip)
            if violated is not None:
                if violated == "token":
                    self._denied_token += 1
                    return "token_limit"
                self._denied_ip += 1
                return "ip_limit"
        self._charged += 1
        return None

    def like(self, access_token: str,
             source_ip: Optional[str]) -> Optional[str]:
        """Wave analogue of :meth:`GraphApi.try_like_post` against the
        wave's target post: same pipeline, same log-row vocabulary (the
        rows are buffered until :meth:`finish`), same platform write."""
        self._attempts += 1
        inj = self._inj
        push_token = self._tokens.append
        push_user = self._users.append
        push_app = self._apps.append
        push_ip = self._ips.append
        push_asn = self._asns.append
        push_outcome = self._outcomes.append
        if inj is not None:
            fault = inj.decide("LIKE_POST", access_token)
            if fault is not None and fault != "invalidate_token":
                push_token(access_token)
                push_user(None)
                push_app(None)
                push_ip(source_ip)
                push_asn(self._resolve(source_ip))
                if fault == "transient":
                    push_outcome(TransientApiError.code)
                    return "transient"
                if fault == "timeout":
                    push_outcome(ApiTimeout.code)
                    return "timeout"
                push_outcome(RateLimitExceededError.code)
                self._denied_token += 1
                return "token_limit"
        resolved = self._lookup(access_token)
        asn = self._resolve(source_ip)
        push_token(access_token)
        push_ip(source_ip)
        push_asn(asn)
        if resolved is None:
            push_user(None)
            push_app(None)
            push_outcome("invalid_token")
            return "invalid_token"
        token, app, granted = resolved
        user_id = token.user_id
        app_id = token.app_id
        push_user(user_id)
        push_app(app_id)
        if app.security.require_app_secret:
            if not verify_appsecret_proof(app.secret, access_token, ""):
                push_outcome(AppSecretRequiredError.code)
                return "app_secret"
        if not granted:
            push_outcome(PermissionDeniedError.code)
            return "permission"
        policy = self._policy
        if policy.blocked_asns_by_app and policy.is_as_blocked(app_id, asn):
            push_outcome(BlockedSourceError.code)
            return "blocked"
        violated = self._admitter.admit(access_token, source_ip)
        if violated is not None:
            if violated == "token":
                push_outcome(RateLimitExceededError.code)
                self._denied_token += 1
                return "token_limit"
            push_outcome(IpRateLimitError.code)
            self._denied_ip += 1
            return "ip_limit"
        try:
            self._like_post(user_id, self.post_id, via_app_id=app_id,
                            source_ip=source_ip)
        except SocialNetworkError:
            push_outcome("platform_error")
            return "platform_error"
        push_outcome("ok")
        return None

    def finish(self) -> None:
        """Flush pending limiter charges, log rows and counters.

        Idempotent; the wave must not be used again afterwards (a
        scalar interlude — e.g. a fault-plan cooldown — invalidates the
        memoized window capacities, so callers open a fresh wave)."""
        if self._finished:
            return
        self._finished = True
        self._admitter.flush()
        if self._tokens:
            self.api.log.extend_like_rows(
                self.now, ApiAction.LIKE_POST, self.post_id, self._tokens,
                self._users, self._apps, self._ips, self._asns,
                self._outcomes)
        if self._charged:
            self.api.charge_counters["likes"] += self._charged
        if TELEMETRY.enabled:
            self._report_telemetry()
        span = self._span
        if span is not None:
            span.args["attempts"] = self._attempts
            span.args["charged"] = self._charged
            span.args["denied"] = self._denied_token + self._denied_ip
        TRACER.end(span)

    def _report_telemetry(self) -> None:
        """Fold the wave's shape into the metrics registry (enabled
        runs only; the tallies themselves are always maintained)."""
        stage = TELEMETRY.current_stage()
        TELEMETRY.observe("wave_size", self._attempts, stage=stage)
        TELEMETRY.observe("wave_limiter_denials",
                          self._denied_token + self._denied_ip,
                          stage=stage)
        if self._denied_token:
            TELEMETRY.count("ratelimit_denials_total", self._denied_token,
                            window="token")
        if self._denied_ip:
            TELEMETRY.count("ratelimit_denials_total", self._denied_ip,
                            window="ip")
        if self._charged:
            TELEMETRY.count("wave_charges_total", self._charged,
                            outcome="ok")
        for outcome, events in sorted(Counter(self._outcomes).items()):
            TELEMETRY.count("wave_likes_total", events, outcome=outcome)
