"""A deterministic in-memory online social network (the Facebook stand-in).

Models exactly the platform surface the paper's measurement depends on:
user accounts with friend edges, posts with likes and comments, pages, and
per-account activity logs.  Write actions are attributed to the third-party
application that performed them, which is what makes OAuth token abuse
observable downstream.
"""

from repro.socialnet.account import Account, AccountStatus
from repro.socialnet.post import Post, Like, Comment
from repro.socialnet.page import Page
from repro.socialnet.activity import ActivityRecord, ActivityLog
from repro.socialnet.platform import SocialPlatform
from repro.socialnet.errors import (
    SocialNetworkError,
    UnknownAccountError,
    UnknownPostError,
    UnknownPageError,
    AccountSuspendedError,
    DuplicateLikeError,
)

__all__ = [
    "Account",
    "AccountStatus",
    "Post",
    "Like",
    "Comment",
    "Page",
    "ActivityRecord",
    "ActivityLog",
    "SocialPlatform",
    "SocialNetworkError",
    "UnknownAccountError",
    "UnknownPostError",
    "UnknownPageError",
    "AccountSuspendedError",
    "DuplicateLikeError",
]
