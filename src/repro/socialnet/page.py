"""Pages: public entities that accumulate likes (fan counts)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.socialnet.post import Like


@dataclass
class Page:
    """A public page (brand, celebrity, collusion-network owner, ...)."""

    page_id: str
    name: str
    owner_id: str
    created_at: int = 0
    likes: List[Like] = field(default_factory=list)
    _likers: Dict[str, Like] = field(default_factory=dict, repr=False)

    @property
    def like_count(self) -> int:
        return len(self.likes)

    def liked_by(self, account_id: str) -> bool:
        return account_id in self._likers

    def add_like(self, like: Like) -> None:
        self.likes.append(like)
        self._likers[like.liker_id] = like
