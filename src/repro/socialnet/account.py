"""User accounts and their profile data."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Set


class AccountStatus(enum.Enum):
    """Lifecycle states of a platform account."""

    ACTIVE = "active"
    SUSPENDED = "suspended"
    DELETED = "deleted"


@dataclass
class Account:
    """A platform user account.

    ``country`` drives the geolocation statistics of Table 2 / Table 5;
    ``is_honeypot`` marks the measurement accounts we control so analyses
    can exclude them from membership estimates.
    """

    account_id: str
    name: str
    email: str
    country: str = "US"
    created_at: int = 0
    status: AccountStatus = AccountStatus.ACTIVE
    is_honeypot: bool = False
    friend_ids: Set[str] = field(default_factory=set)
    follower_count: int = 0

    @property
    def is_active(self) -> bool:
        return self.status is AccountStatus.ACTIVE

    def public_profile(self) -> dict:
        """The profile fields exposed through basic OAuth permissions."""
        return {
            "id": self.account_id,
            "name": self.name,
            "country": self.country,
        }
