"""Per-account activity logs.

The paper crawls honeypot activity logs to measure *outgoing* reputation
manipulation (Table 4's "Outgoing Activities" columns).  The platform keeps
an append-only log per account mirroring that data source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


# Not frozen: a frozen dataclass assigns every field through
# object.__setattr__, tripling construction cost on the hottest
# allocation in the platform write path.
@dataclass(slots=True)
class ActivityRecord:
    """One action performed by an account.

    ``verb`` is one of ``like``, ``comment`` or ``post``; ``target_kind``
    distinguishes likes on posts from likes on pages.
    """

    actor_id: str
    verb: str
    target_id: str
    target_kind: str
    target_owner_id: str
    created_at: int
    via_app_id: Optional[str] = None
    source_ip: Optional[str] = None


class ActivityLog:
    """Append-only store of :class:`ActivityRecord` indexed by actor."""

    def __init__(self) -> None:
        self._by_actor: Dict[str, List[ActivityRecord]] = {}
        self._total = 0
        self._journal: Optional[List[ActivityRecord]] = None

    def record(self, record: ActivityRecord) -> None:
        self._by_actor.setdefault(record.actor_id, []).append(record)
        self._total += 1
        if self._journal is not None:
            self._journal.append(record)

    def start_journal(self) -> List[ActivityRecord]:
        """Start mirroring appends into a side list (shard export)."""
        self._journal = []
        return self._journal

    def stop_journal(self) -> None:
        self._journal = None

    def rollback(self, journal: List[ActivityRecord]) -> None:
        """Un-append every record in ``journal`` (newest last).

        Shard-worker supervision re-executes a quarantined component
        inline, then rolls its activity back so the day merge can
        re-interleave it with the other components' records in global
        event order.  Each record must be its actor's current tail.
        """
        for record in reversed(journal):
            records = self._by_actor[record.actor_id]
            popped = records.pop()
            if popped is not record:  # pragma: no cover - misuse guard
                records.append(popped)
                raise ValueError(
                    "rollback journal does not match the log tail")
            if not records:
                del self._by_actor[record.actor_id]
            self._total -= 1

    def for_actor(self, actor_id: str) -> List[ActivityRecord]:
        """All activity by ``actor_id``, oldest first."""
        return list(self._by_actor.get(actor_id, ()))

    def for_actors(self, actor_ids: Iterable[str]) -> List[ActivityRecord]:
        """Merged activity across ``actor_ids``, sorted by time."""
        merged: List[ActivityRecord] = []
        for actor_id in actor_ids:
            merged.extend(self._by_actor.get(actor_id, ()))
        merged.sort(key=lambda r: r.created_at)
        return merged

    def __len__(self) -> int:
        return self._total
