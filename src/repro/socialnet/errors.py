"""Exception hierarchy for the social network platform."""

from __future__ import annotations


class SocialNetworkError(Exception):
    """Base class for all platform-level errors."""


class UnknownAccountError(SocialNetworkError):
    """Raised when an account id does not exist."""

    def __init__(self, account_id: str) -> None:
        super().__init__(f"unknown account: {account_id}")
        self.account_id = account_id


class UnknownPostError(SocialNetworkError):
    """Raised when a post id does not exist."""

    def __init__(self, post_id: str) -> None:
        super().__init__(f"unknown post: {post_id}")
        self.post_id = post_id


class UnknownPageError(SocialNetworkError):
    """Raised when a page id does not exist."""

    def __init__(self, page_id: str) -> None:
        super().__init__(f"unknown page: {page_id}")
        self.page_id = page_id


class AccountSuspendedError(SocialNetworkError):
    """Raised when a suspended account attempts an action."""

    def __init__(self, account_id: str) -> None:
        super().__init__(f"account suspended: {account_id}")
        self.account_id = account_id


class DuplicateLikeError(SocialNetworkError):
    """Raised when an account likes the same object twice."""

    def __init__(self, account_id: str, object_id: str) -> None:
        super().__init__(f"{account_id} already likes {object_id}")
        self.account_id = account_id
        self.object_id = object_id
