"""Posts and the engagement attached to them (likes, comments)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


# Not frozen: frozen dataclasses construct via object.__setattr__, which
# is measurably slower on the platform's hottest allocations.
@dataclass(slots=True)
class Like:
    """A like on a post or page.

    ``via_app_id`` records the third-party application whose access token
    performed the like (``None`` for organic, first-party likes) and
    ``source_ip`` records the network origin of the Graph API request —
    the two fingerprints the countermeasures of §6 key on.
    """

    liker_id: str
    object_id: str
    created_at: int
    via_app_id: Optional[str] = None
    source_ip: Optional[str] = None


@dataclass(slots=True)
class Comment:
    """A comment on a post, with the same attribution as :class:`Like`."""

    comment_id: str
    author_id: str
    post_id: str
    text: str
    created_at: int
    via_app_id: Optional[str] = None
    source_ip: Optional[str] = None


@dataclass
class Post:
    """A status update on an account's timeline."""

    post_id: str
    author_id: str
    text: str
    created_at: int
    likes: List[Like] = field(default_factory=list)
    comments: List[Comment] = field(default_factory=list)
    _likers: Dict[str, Like] = field(default_factory=dict, repr=False)

    @property
    def like_count(self) -> int:
        return len(self.likes)

    @property
    def comment_count(self) -> int:
        return len(self.comments)

    def liked_by(self, account_id: str) -> bool:
        return account_id in self._likers

    def add_like(self, like: Like) -> None:
        """Attach a like; caller is responsible for duplicate checks."""
        self.likes.append(like)
        self._likers[like.liker_id] = like

    def add_comment(self, comment: Comment) -> None:
        self.comments.append(comment)

    def liker_ids(self) -> List[str]:
        """Ids of accounts that liked this post, in like order."""
        return [like.liker_id for like in self.likes]
