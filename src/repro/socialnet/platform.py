"""The social platform core: registries plus the write-action primitives.

:class:`SocialPlatform` is deliberately *unauthenticated* — it trusts its
caller about who is acting.  Authentication and authorization live one layer
up in :mod:`repro.graphapi`, exactly as the Graph API fronts Facebook's
internal systems.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.clock import SimClock
from repro.sim.ids import IdAllocator
from repro.socialnet.account import Account, AccountStatus
from repro.socialnet.activity import ActivityLog, ActivityRecord
from repro.socialnet.errors import (
    AccountSuspendedError,
    DuplicateLikeError,
    UnknownAccountError,
    UnknownPageError,
    UnknownPostError,
)
from repro.socialnet.page import Page
from repro.socialnet.post import Comment, Like, Post


class SocialPlatform:
    """In-memory social network state with platform write primitives."""

    def __init__(self, clock: SimClock, ids: Optional[IdAllocator] = None) -> None:
        self.clock = clock
        self.ids = ids or IdAllocator()
        self.accounts: Dict[str, Account] = {}
        self.posts: Dict[str, Post] = {}
        self.pages: Dict[str, Page] = {}
        # Per-author creation-order index so timeline() stays O(author's
        # posts) rather than scanning every post on the platform.
        self._posts_by_author: Dict[str, List[Post]] = {}
        self.activity_log = ActivityLog()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_account(self, name: str, email: str = "", country: str = "US",
                         is_honeypot: bool = False) -> Account:
        """Create a new active account and return it."""
        account_id = self.ids.next("acct")
        account = Account(
            account_id=account_id,
            name=name,
            email=email or f"{account_id.replace(':', '')}@example.com",
            country=country,
            created_at=self.clock.now(),
            is_honeypot=is_honeypot,
        )
        self.accounts[account_id] = account
        return account

    def create_page(self, owner_id: str, name: str) -> Page:
        """Create a public page owned by ``owner_id``."""
        self._require_account(owner_id)
        page_id = self.ids.next("page")
        page = Page(page_id=page_id, name=name, owner_id=owner_id,
                    created_at=self.clock.now())
        self.pages[page_id] = page
        return page

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def _require_account(self, account_id: str) -> Account:
        account = self.accounts.get(account_id)
        if account is None:
            raise UnknownAccountError(account_id)
        return account

    def _require_active(self, account_id: str) -> Account:
        account = self._require_account(account_id)
        if account.status is not AccountStatus.ACTIVE:
            raise AccountSuspendedError(account_id)
        return account

    def get_account(self, account_id: str) -> Account:
        return self._require_account(account_id)

    def get_post(self, post_id: str) -> Post:
        post = self.posts.get(post_id)
        if post is None:
            raise UnknownPostError(post_id)
        return post

    def get_page(self, page_id: str) -> Page:
        page = self.pages.get(page_id)
        if page is None:
            raise UnknownPageError(page_id)
        return page

    def timeline(self, account_id: str) -> List[Post]:
        """Posts authored by ``account_id``, oldest first."""
        self._require_account(account_id)
        return list(self._posts_by_author.get(account_id, ()))

    # ------------------------------------------------------------------
    # Social graph
    # ------------------------------------------------------------------
    def befriend(self, a_id: str, b_id: str) -> None:
        """Create a mutual friend edge."""
        a = self._require_account(a_id)
        b = self._require_account(b_id)
        a.friend_ids.add(b_id)
        b.friend_ids.add(a_id)

    # ------------------------------------------------------------------
    # Write actions
    # ------------------------------------------------------------------
    def create_post(self, author_id: str, text: str,
                    via_app_id: Optional[str] = None,
                    source_ip: Optional[str] = None) -> Post:
        """Publish a status update on the author's timeline."""
        self._require_active(author_id)
        post_id = self.ids.next("post")
        now = self.clock.now()
        post = Post(post_id=post_id, author_id=author_id, text=text,
                    created_at=now)
        self.posts[post_id] = post
        self._posts_by_author.setdefault(author_id, []).append(post)
        self.activity_log.record(ActivityRecord(
            actor_id=author_id, verb="post", target_id=post_id,
            target_kind="post", target_owner_id=author_id,
            created_at=now, via_app_id=via_app_id,
            source_ip=source_ip,
        ))
        return post

    def like_post(self, liker_id: str, post_id: str,
                  via_app_id: Optional[str] = None,
                  source_ip: Optional[str] = None) -> Like:
        """Like a post on behalf of ``liker_id``."""
        self._require_active(liker_id)
        post = self.get_post(post_id)
        if post.liked_by(liker_id):
            raise DuplicateLikeError(liker_id, post_id)
        now = self.clock.now()
        like = Like(liker_id=liker_id, object_id=post_id,
                    created_at=now, via_app_id=via_app_id,
                    source_ip=source_ip)
        post.add_like(like)
        self.activity_log.record(ActivityRecord(
            actor_id=liker_id, verb="like", target_id=post_id,
            target_kind="post", target_owner_id=post.author_id,
            created_at=now, via_app_id=via_app_id,
            source_ip=source_ip,
        ))
        return like

    def like_page(self, liker_id: str, page_id: str,
                  via_app_id: Optional[str] = None,
                  source_ip: Optional[str] = None) -> Like:
        """Like (become a fan of) a page."""
        self._require_active(liker_id)
        page = self.get_page(page_id)
        if page.liked_by(liker_id):
            raise DuplicateLikeError(liker_id, page_id)
        now = self.clock.now()
        like = Like(liker_id=liker_id, object_id=page_id,
                    created_at=now, via_app_id=via_app_id,
                    source_ip=source_ip)
        page.add_like(like)
        self.activity_log.record(ActivityRecord(
            actor_id=liker_id, verb="like", target_id=page_id,
            target_kind="page", target_owner_id=page.owner_id,
            created_at=now, via_app_id=via_app_id,
            source_ip=source_ip,
        ))
        return like

    def comment_on_post(self, author_id: str, post_id: str, text: str,
                        via_app_id: Optional[str] = None,
                        source_ip: Optional[str] = None) -> Comment:
        """Comment on a post on behalf of ``author_id``."""
        self._require_active(author_id)
        post = self.get_post(post_id)
        now = self.clock.now()
        comment = Comment(
            comment_id=self.ids.next("comment"), author_id=author_id,
            post_id=post_id, text=text, created_at=now,
            via_app_id=via_app_id, source_ip=source_ip,
        )
        post.add_comment(comment)
        self.activity_log.record(ActivityRecord(
            actor_id=author_id, verb="comment", target_id=post_id,
            target_kind="post", target_owner_id=post.author_id,
            created_at=now, via_app_id=via_app_id,
            source_ip=source_ip,
        ))
        return comment

    # ------------------------------------------------------------------
    # Moderation
    # ------------------------------------------------------------------
    def suspend_account(self, account_id: str) -> None:
        """Suspend an account; further actions raise AccountSuspendedError."""
        self._require_account(account_id).status = AccountStatus.SUSPENDED

    def reinstate_account(self, account_id: str) -> None:
        self._require_account(account_id).status = AccountStatus.ACTIVE

    def remove_like(self, post_id: str, liker_id: str) -> bool:
        """Remove a fake like (the clean-up step of §6); True if removed."""
        post = self.get_post(post_id)
        if not post.liked_by(liker_id):
            return False
        post.likes = [lk for lk in post.likes if lk.liker_id != liker_id]
        del post._likers[liker_id]
        return True
