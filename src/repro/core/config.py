"""Study-wide configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.plan import FaultPlan


@dataclass
class StudyConfig:
    """Knobs shared by every experiment.

    ``scale`` linearly scales collusion-network membership pools and the
    honeypot workload: 1.0 reproduces the paper's absolute numbers
    (≈1.15M colluding accounts, 11.7K posts); the default 0.05 keeps the
    full pipeline to a few seconds while preserving every result's shape.
    """

    seed: int = 2017
    scale: float = 0.05
    #: How many catalog apps to scan for Table 1.
    top_apps: int = 100
    #: Milking campaign duration (days) for Table 4 / Fig. 4.
    milking_days: int = 90
    #: Countermeasure campaign duration (days) for Fig. 5.
    campaign_days: int = 75
    #: Build only this many collusion networks (None = all 22).
    network_limit: Optional[int] = None
    #: Deterministic fault-injection plan (None/empty = no faults and
    #: zero extra randomness — byte-identical to a fault-free build).
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")

    def scaled(self, value: int, minimum: int = 1) -> int:
        """Scale an absolute paper quantity down to this study's size."""
        return max(minimum, int(round(value * self.scale)))
