"""The simulated world: every platform subsystem, wired together."""

from __future__ import annotations

from typing import Optional

from repro.core.config import StudyConfig
from repro.faults.plan import FaultInjector
from repro.graphapi.api import GraphApi
from repro.graphapi.ratelimit import RateLimitPolicy
from repro.netsim.asn import AsRegistry
from repro.netsim.geo import GeoDatabase
from repro.netsim.pools import IpPoolAllocator
from repro.oauth.apps import ApplicationRegistry
from repro.oauth.review import AppReviewProcess
from repro.oauth.server import AuthorizationServer
from repro.oauth.tokens import TokenStore
from repro.shorturl.shortener import UrlShortener
from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler
from repro.sim.ids import IdAllocator
from repro.sim.rng import RngFactory
from repro.socialnet.platform import SocialPlatform
from repro.webintel.adnetworks import AdScanner
from repro.webintel.alexa import TrafficRanker
from repro.webintel.whois import WhoisRegistry


class World:
    """One self-consistent simulation universe.

    Construction wires the subsystems but creates no content; population
    (apps, networks, member accounts) is done by the builders in
    :mod:`repro.apps.catalog` and :mod:`repro.collusion.profiles`, usually
    through :class:`repro.core.study.Study`.
    """

    def __init__(self, config: Optional[StudyConfig] = None) -> None:
        self.config = config or StudyConfig()
        self.rng = RngFactory(self.config.seed)
        self.clock = SimClock()
        self.ids = IdAllocator()
        self.scheduler = EventScheduler(self.clock)

        # Platform core.
        self.platform = SocialPlatform(self.clock, self.ids)
        self.apps = ApplicationRegistry()
        self.tokens = TokenStore(self.clock)
        self.auth_server = AuthorizationServer(
            self.clock, self.apps, self.tokens)
        self.app_review = AppReviewProcess()

        # Network substrate.
        self.as_registry = AsRegistry()
        self.geo = GeoDatabase()
        self.ip_allocator = IpPoolAllocator(self.as_registry)

        # The API everything abusive and defensive flows through.
        self.policy = RateLimitPolicy()
        self.api = GraphApi(
            self.clock, self.platform, self.apps, self.tokens,
            as_registry=self.as_registry, policy=self.policy)

        # Fault injection: only built (and only consuming its dedicated
        # RNG stream) when the config carries a non-empty plan, so the
        # default world stays byte-identical to a fault-free build.
        self.faults: Optional[FaultInjector] = None
        plan = self.config.fault_plan
        if plan:
            self.faults = FaultInjector(
                plan, self.rng.stream("faults"), self.clock, self.tokens,
                chunk_rng=self.rng.stream("faults:chunk"))
            self.api.faults = self.faults

        # Third-party web services.
        self.shortener = UrlShortener(self.clock)
        self.whois = WhoisRegistry()
        self.traffic_ranker = TrafficRanker()
        self.ad_scanner = AdScanner()

    def advance_days(self, days: float) -> None:
        """Advance simulated time, firing any scheduled events."""
        from repro.sim.clock import DAY

        self.scheduler.run_until(self.clock.now() + int(days * DAY))
