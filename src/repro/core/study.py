"""The high-level public API: one object that drives the whole paper.

Example::

    from repro import Study, StudyConfig

    study = Study(StudyConfig(scale=0.05, seed=2017))
    study.build()                 # platform, apps, collusion networks
    study.milk()                  # the §4 honeypot measurement
    study.run_countermeasures()   # the §6 campaign (Fig. 5)
    print(study.report().render())
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import StudyConfig
from repro.countermeasures.campaign import CampaignConfig, CampaignResults
from repro.honeypot.milker import MilkingResults


class Study:
    """Facade over the experiment runner with lazily built state."""

    def __init__(self, config: Optional[StudyConfig] = None) -> None:
        self.config = config or StudyConfig()
        self._artifacts = None
        self._report = None

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def build(self):
        """Create the world: platform, app catalog, collusion networks."""
        from repro.experiments import runner

        if self._artifacts is not None:
            raise RuntimeError("study already built")
        self._artifacts = runner.build_world(self.config)
        return self._artifacts

    @property
    def artifacts(self):
        if self._artifacts is None:
            raise RuntimeError("call build() first")
        return self._artifacts

    @property
    def world(self):
        return self.artifacts.world

    @property
    def ecosystem(self):
        return self.artifacts.ecosystem

    def milk(self, days: Optional[int] = None) -> MilkingResults:
        """Run the honeypot milking campaign (§4)."""
        from repro.experiments import runner

        self._report = None
        return runner.run_milking(self.artifacts, days)

    def run_countermeasures(
            self,
            campaign_config: Optional[CampaignConfig] = None) -> CampaignResults:
        """Run the countermeasure campaign (§6 / Fig. 5)."""
        from repro.experiments import runner

        self._report = None
        return runner.run_campaign(self.artifacts, campaign_config)

    def report(self):
        """Produce every table/figure the completed stages allow."""
        from repro.experiments import runner

        if self._report is None:
            self._report = runner.run_experiments(self.artifacts)
        return self._report

    # ------------------------------------------------------------------
    def run_all(self):
        """Convenience: build -> milk -> countermeasures -> report."""
        if self._artifacts is None:
            self.build()
        if self.artifacts.milking is None:
            self.milk()
        if self.artifacts.campaign is None:
            self.run_countermeasures()
        return self.report()
