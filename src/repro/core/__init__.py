"""Public facade: the simulated world and the end-to-end study driver."""

from repro.core.config import StudyConfig
from repro.core.world import World
from repro.core.study import Study

__all__ = ["StudyConfig", "World", "Study"]
