"""A goo.gl-style URL shortening service with public click analytics.

Collusion networks front their token-retrieval links with short URLs; the
shortener's public analytics (clicks, referrers, geolocation, creation
dates) are the side channel behind Table 5.
"""

from repro.shorturl.shortener import ShortUrl, UrlShortener
from repro.shorturl.analytics import ShortUrlAnalytics, ShortUrlReport

__all__ = [
    "ShortUrl",
    "UrlShortener",
    "ShortUrlAnalytics",
    "ShortUrlReport",
]
