"""The URL shortening service.

Click histories are stored as aggregate counters (total, by-country,
by-referrer, by-day) rather than per-click records: Table 5's links carry
hundreds of millions of clicks, and the analytics the paper uses only ever
consume the aggregates.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.clock import DAY, SimClock

_ALPHABET = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


@dataclass
class ShortUrl:
    """A shortened link and its aggregated click analytics."""

    slug: str
    long_url: str
    created_at: int
    created_date: _dt.datetime
    click_count: int = 0
    clicks_by_country: Dict[str, int] = field(default_factory=dict)
    clicks_by_referrer: Dict[str, int] = field(default_factory=dict)
    clicks_by_day: Dict[int, int] = field(default_factory=dict)

    @property
    def short_url(self) -> str:
        return f"https://sho.rt/{self.slug}"

    def record(self, count: int, referrer: Optional[str],
               country: Optional[str], timestamp: int) -> None:
        if count <= 0:
            raise ValueError(f"click count must be positive, got {count}")
        self.click_count += count
        if country is not None:
            self.clicks_by_country[country] = (
                self.clicks_by_country.get(country, 0) + count)
        if referrer is not None:
            self.clicks_by_referrer[referrer] = (
                self.clicks_by_referrer.get(referrer, 0) + count)
        day = timestamp // DAY
        self.clicks_by_day[day] = self.clicks_by_day.get(day, 0) + count

    def daily_clicks(self, day: int) -> int:
        return self.clicks_by_day.get(day, 0)


class UrlShortener:
    """Creates short URLs and records clicks against them."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._by_slug: Dict[str, ShortUrl] = {}
        self._by_long: Dict[str, List[str]] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._by_slug)

    def _mint_slug(self, long_url: str) -> str:
        self._counter += 1
        digest = hashlib.sha256(
            f"{long_url}|{self._counter}".encode()).digest()
        return "".join(_ALPHABET[b % len(_ALPHABET)] for b in digest[:6])

    def shorten(self, long_url: str,
                created_at: Optional[int] = None) -> ShortUrl:
        """Create a new short URL for ``long_url``.

        ``created_at`` may be negative to model links created before the
        simulation epoch (the oldest Table 5 link predates the milking
        campaign by over a year).
        """
        if created_at is None:
            created_at = self._clock.now()
        slug = self._mint_slug(long_url)
        short = ShortUrl(
            slug=slug,
            long_url=long_url,
            created_at=created_at,
            created_date=(self._clock.epoch
                          + _dt.timedelta(seconds=created_at)),
        )
        self._by_slug[slug] = short
        self._by_long.setdefault(long_url, []).append(slug)
        return short

    def resolve(self, slug: str) -> str:
        """Follow a short link (without recording a click)."""
        return self._require(slug).long_url

    def click(self, slug: str, referrer: Optional[str] = None,
              country: Optional[str] = None,
              timestamp: Optional[int] = None) -> str:
        """Record one click and return the destination URL."""
        short = self._require(slug)
        when = self._clock.now() if timestamp is None else timestamp
        short.record(1, referrer, country, when)
        return short.long_url

    def record_clicks(self, slug: str, count: int,
                      referrer: Optional[str] = None,
                      country: Optional[str] = None,
                      timestamp: Optional[int] = None) -> None:
        """Bulk-record ``count`` clicks sharing the same attribution
        (used to seed pre-epoch click histories)."""
        when = self._clock.now() if timestamp is None else timestamp
        self._require(slug).record(count, referrer, country, when)

    def get(self, slug: str) -> ShortUrl:
        return self._require(slug)

    def all(self) -> List[ShortUrl]:
        return list(self._by_slug.values())

    def slugs_for(self, long_url: str) -> List[str]:
        """All slugs pointing at ``long_url`` (several short URLs may
        share a destination, as Table 5 shows for the HTC Sense dialog)."""
        return list(self._by_long.get(long_url, ()))

    def long_url_click_count(self, long_url: str) -> int:
        """Total clicks across every short URL for ``long_url``."""
        return sum(self._by_slug[slug].click_count
                   for slug in self._by_long.get(long_url, ()))

    def _require(self, slug: str) -> ShortUrl:
        short = self._by_slug.get(slug)
        if short is None:
            raise KeyError(f"unknown short URL slug: {slug}")
        return short
