"""Public analytics over short URLs (the Table 5 data source)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.shorturl.shortener import ShortUrl, UrlShortener


@dataclass(frozen=True)
class ShortUrlReport:
    """The analytics fields the paper reports per short URL."""

    short_url: str
    created_date: str
    short_url_clicks: int
    long_url_clicks: int
    long_url: str
    top_referrer: Optional[str]
    top_countries: Tuple[Tuple[str, float], ...]


class ShortUrlAnalytics:
    """Aggregates click counters into per-URL reports."""

    def __init__(self, shortener: UrlShortener) -> None:
        self._shortener = shortener

    def report(self, slug: str) -> ShortUrlReport:
        short = self._shortener.get(slug)
        return ShortUrlReport(
            short_url=short.short_url,
            created_date=short.created_date.strftime("%B %d, %Y"),
            short_url_clicks=short.click_count,
            long_url_clicks=self._shortener.long_url_click_count(
                short.long_url),
            long_url=short.long_url,
            top_referrer=self._top_referrer(short),
            top_countries=self._country_shares(short),
        )

    def reports_by_clicks(self) -> List[ShortUrlReport]:
        """Reports for every short URL, most-clicked first."""
        reports = [self.report(s.slug) for s in self._shortener.all()]
        reports.sort(key=lambda r: r.short_url_clicks, reverse=True)
        return reports

    def daily_click_rate(self, slug: str, window_days: int = 30) -> float:
        """Average clicks/day over the most recent ``window_days`` that
        saw any traffic."""
        short = self._shortener.get(slug)
        if not short.clicks_by_day:
            return 0.0
        days = sorted(short.clicks_by_day)[-window_days:]
        if not days:
            return 0.0
        total = sum(short.clicks_by_day[d] for d in days)
        return total / len(days)

    @staticmethod
    def _top_referrer(short: ShortUrl) -> Optional[str]:
        if not short.clicks_by_referrer:
            return None
        return max(short.clicks_by_referrer.items(),
                   key=lambda kv: (kv[1], kv[0]))[0]

    @staticmethod
    def _country_shares(short: ShortUrl,
                        top_n: int = 5) -> Tuple[Tuple[str, float], ...]:
        total = sum(short.clicks_by_country.values())
        if not total:
            return ()
        ranked = sorted(short.clicks_by_country.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        return tuple((country, count / total)
                     for country, count in ranked[:top_n])
