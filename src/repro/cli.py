"""Command-line interface: ``python -m repro <command>``.

Commands
--------
scan       run the §2.2 application scan and print Table 1
milk       run the §4 milking campaign (Tables 4/6, Fig. 4)
campaign   run the §6 countermeasure campaign (Figs. 5-8)
full       run everything and print the complete report
run        crash-tolerant full study (fault injection, checkpoints,
           --resume, --telemetry, --sanitize)
san        diff two determinism shadow traces (``run --sanitize``)
metrics    render a metrics.json written by ``run --telemetry``
lint       reprolint: determinism & discipline static analysis
bench      benchmark the pipeline stages (BENCH_PIPELINE.json)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.experiments import (
    export,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    table1,
    table4,
    table6,
)


def _common_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.02,
                        help="fraction of paper scale (default 0.02)")
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    parser.add_argument("--out", type=str, default=None,
                        help="also write output to this file")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Measuring and Mitigating OAuth "
                     "Access Token Abuse by Collusion Networks' "
                     "(IMC 2017)"))
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="Table 1: scan the top-100 apps")
    _common_flags(scan)

    milk = sub.add_parser("milk",
                          help="Tables 4/6 + Fig 4: milk the networks")
    _common_flags(milk)
    milk.add_argument("--days", type=int, default=30)

    campaign = sub.add_parser(
        "campaign", help="Figs 5-8: run the countermeasure campaign")
    _common_flags(campaign)
    campaign.add_argument("--days", type=int, default=75)

    full = sub.add_parser("full", help="everything: the complete report")
    _common_flags(full)
    full.add_argument("--milking-days", type=int, default=30)
    full.add_argument("--campaign-days", type=int, default=75)

    run = sub.add_parser(
        "run", help="crash-tolerant full study: fault injection, "
                    "per-experiment checkpoints, --resume")
    _common_flags(run)
    run.add_argument("--milking-days", type=int, default=30)
    run.add_argument("--campaign-days", type=int, default=75)
    run.add_argument("--faults", type=str, default=None,
                     help="JSON fault-plan file to inject "
                          "(see examples/chaos_plan.json)")
    run.add_argument("--checkpoint-dir", type=str, default=None,
                     help="experiment checkpoint directory (default "
                          ".repro-checkpoints/seed<seed>-scale<scale>)")
    run.add_argument("--resume", action="store_true",
                     help="reuse checkpoints from a previous (crashed) "
                          "run instead of clearing them")
    run.add_argument("--journal", type=str, default=None,
                     help="campaign WAL + day-checkpoint directory; "
                          "with --resume, a killed run restarts from "
                          "its last completed campaign day instead of "
                          "day 1")
    run.add_argument("--parallel-experiments", action="store_true",
                     help="fan experiment jobs out over processes")
    run.add_argument("--job-timeout", type=float, default=None,
                     help="seconds before a hung experiment worker is "
                          "killed and its job re-run serially")
    run.add_argument("--telemetry", type=str, default=None,
                     metavar="DIR",
                     help="enable the telemetry plane and write "
                          "metrics.prom / metrics.json / trace.json / "
                          "spans.txt to DIR")
    run.add_argument("--sanitize", type=str, default=None,
                     metavar="DIR",
                     help="enable the determinism sanitizer (reprosan) "
                          "and write its shadow-trace manifest to "
                          "DIR/sanitizer.json; compare two runs with "
                          "'repro san diff A B'")

    metrics = sub.add_parser(
        "metrics", help="render a metrics.json written by "
                        "'repro run --telemetry DIR'")
    metrics.add_argument("path",
                         help="telemetry directory or metrics.json file")
    metrics.add_argument("--json", action="store_true",
                         help="re-emit the raw JSON document")
    metrics.add_argument("--out", type=str, default=None,
                         help="also write output to this file")

    score = sub.add_parser(
        "score", help="run everything and print the paper-vs-measured "
                      "scorecard")
    _common_flags(score)
    score.add_argument("--milking-days", type=int, default=30)
    score.add_argument("--campaign-days", type=int, default=75)

    san = sub.add_parser(
        "san", help="reprosan: diff two determinism shadow traces")
    san_sub = san.add_subparsers(dest="san_command", required=True)
    san_diff = san_sub.add_parser(
        "diff", help="compare two --sanitize manifests and name the "
                     "first divergent event")
    san_diff.add_argument("trace_a",
                          help="first sanitizer.json (or --sanitize dir)")
    san_diff.add_argument("trace_b",
                          help="second sanitizer.json (or --sanitize dir)")
    san_diff.add_argument("--ignore", action="append", default=[],
                          metavar="PREFIX",
                          help="exclude streams with this name prefix "
                               "(repeatable); use '--ignore shard "
                               "--ignore clock' when comparing a "
                               "sharded against a serial run")
    san_diff.add_argument("--json", action="store_true",
                          help="emit the divergence report as JSON")
    san_diff.add_argument("--out", type=str, default=None,
                          help="also write output to this file")

    lint = sub.add_parser(
        "lint", help="reprolint: determinism & discipline static "
                     "analysis (RL001-RL005)")
    from repro.lint.cli import add_arguments as _add_lint_arguments
    _add_lint_arguments(lint)

    bench = sub.add_parser(
        "bench", help="benchmark pipeline stage throughput")
    _common_flags(bench)
    bench.set_defaults(scale=0.01)
    bench.add_argument("--milking-days", type=int, default=None)
    bench.add_argument("--campaign-days", type=int, default=None)
    bench.add_argument("--parallel-experiments", action="store_true",
                       help="fan experiment jobs out over processes")
    bench.add_argument("--baseline", type=str, default=None,
                       help="src dir of a baseline tree to compare "
                            "against (runs both in subprocesses with "
                            "PYTHONHASHSEED pinned)")
    bench.add_argument("--repeats", type=int, default=1,
                       help="with --baseline, benchmark each tree this "
                            "many times (interleaved) and keep the best")
    bench.add_argument("--sanitize", action="store_true",
                       help="record the reprosan shadow trace during "
                            "the benchmarked study (measures the "
                            "sanitizer's overhead on this workload)")
    return parser


def _emit(text: str, out: Optional[str]) -> None:
    print(text)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _study(args, **overrides) -> Study:
    config = StudyConfig(scale=args.scale, seed=args.seed, **overrides)
    study = Study(config)
    study.build()
    return study


def cmd_scan(args) -> int:
    study = _study(args)
    result = table1.run(study.world, study.artifacts.catalog)
    if args.json:
        _emit(json.dumps(export._plain(result), indent=2), args.out)
    else:
        _emit(result.render(), args.out)
    return 0


def cmd_milk(args) -> int:
    study = _study(args, milking_days=args.days)
    results = study.milk()
    scale = study.config.scale
    sections = [
        table4.run(results, scale).render(),
        fig4.run(results).render(),
        table6.run(results).render(),
    ]
    if args.json:
        payload = {
            "table4": export._plain(table4.run(results, scale)),
            "table6": export._plain(table6.run(results)),
        }
        _emit(json.dumps(payload, indent=2), args.out)
    else:
        _emit("\n\n".join(sections), args.out)
    return 0


def cmd_campaign(args) -> int:
    from repro.countermeasures.campaign import CampaignConfig

    study = _study(args, network_limit=2)
    campaign = study.run_countermeasures(CampaignConfig(days=args.days))
    world = study.world
    results = [
        fig5.run(campaign),
        fig6.run(world, campaign, ecosystem=study.ecosystem),
        fig7.run(world, campaign),
        fig8.run(world, campaign),
    ]
    if args.json:
        payload = {f"fig{i + 5}": export._plain(result)
                   for i, result in enumerate(results)}
        _emit(json.dumps(payload, indent=2), args.out)
    else:
        _emit("\n\n".join(r.render() for r in results), args.out)
    return 0


def cmd_full(args) -> int:
    study = _study(args, milking_days=args.milking_days,
                   campaign_days=args.campaign_days)
    study.milk()
    study.run_countermeasures()
    report = study.report()
    if args.json:
        _emit(export.report_to_json(report), args.out)
    else:
        _emit(report.render(), args.out)
    return 0


def _run_summary(artifacts, store, recovery) -> str:
    """Durability report for ``repro run``: what was reused, what
    fell back, what the log hashes to."""
    lines = ["run summary:"]
    lines.append(f"  experiment checkpoints: {store.hits} hit(s), "
                 f"{store.misses} miss(es)")
    campaign = artifacts.campaign
    if campaign is not None:
        if campaign.shard_plan is not None:
            lines.extend("  " + line for line
                         in campaign.shard_plan.describe().splitlines())
        for failure in campaign.shard_failures:
            lines.append("  shard worker quarantined: " + failure)
    if recovery is not None:
        described = recovery.describe()
        if described:
            lines.extend("  " + line for line in described.splitlines())
    log = artifacts.world.api.log
    lines.append(f"  request log: {len(log)} row(s), "
                 f"digest {log.digest()}")
    return "\n".join(lines)


def cmd_run(args) -> int:
    from repro.experiments.checkpoint import CheckpointStore
    from repro.experiments.runner import run_full_study
    from repro.faults.plan import FaultPlan
    from repro.countermeasures.recovery import CampaignRecovery
    from repro.journal.wal import SimulatedCrash

    fault_plan = None
    if args.faults:
        try:
            fault_plan = FaultPlan.load(args.faults)
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"error: cannot load fault plan {args.faults}: {error}",
                  file=sys.stderr)
            return 2
    config = StudyConfig(scale=args.scale, seed=args.seed,
                         milking_days=args.milking_days,
                         campaign_days=args.campaign_days,
                         fault_plan=fault_plan)
    directory = args.checkpoint_dir or os.path.join(
        ".repro-checkpoints", f"seed{args.seed}-scale{args.scale}")
    fingerprint = {
        "seed": args.seed,
        "scale": args.scale,
        "milking_days": args.milking_days,
        "campaign_days": args.campaign_days,
        "faults": fault_plan.to_json(indent=None) if fault_plan else None,
    }
    store = CheckpointStore(directory, fingerprint=fingerprint)
    if args.resume:
        if not store.matches():
            print(f"error: checkpoints in {directory} belong to a "
                  "different configuration; re-run without --resume to "
                  "clear them", file=sys.stderr)
            return 2
    else:
        store.clear()
    recovery = None
    if args.journal:
        recovery = CampaignRecovery(args.journal, resume=args.resume)
    timer = None
    if args.telemetry:
        from repro.telemetry import TELEMETRY, TRACER

        TELEMETRY.reset()
        TELEMETRY.enable()
        TRACER.reset()
        TRACER.enable()
        # Accumulate stage timings into the registry's stage view so
        # metrics.json carries the full wall-clock sidecar.
        timer = TELEMETRY.stages
        timer.reset()
    if args.sanitize:
        from repro.sanitizer import SANITIZER

        # Enable before the world is built so RngFactory hands out
        # instrumented streams from the first draw.
        SANITIZER.reset()
        SANITIZER.enable()
    try:
        artifacts, report = run_full_study(
            config, parallel_experiments=args.parallel_experiments,
            checkpoint=store, job_timeout=args.job_timeout,
            campaign_recovery=recovery, timer=timer)
    except SimulatedCrash as crash:
        # A fault-plan crash (torn_tail etc.) ended the process the way
        # kill -9 would; the journal survives, so the same invocation
        # with --resume picks the campaign back up.  EX_SOFTWARE keeps
        # chaos harnesses able to tell "injected crash" from success.
        print(f"simulated crash: {crash}", file=sys.stderr)
        return 70
    telemetry_files = None
    if args.telemetry:
        from repro.telemetry import TELEMETRY, TRACER, write_telemetry

        telemetry_files = write_telemetry(args.telemetry, TELEMETRY,
                                          TRACER)
    sanitizer_path = None
    if args.sanitize:
        from repro.sanitizer import SANITIZER, write_sanitizer

        sanitizer_path = write_sanitizer(args.sanitize)
    summary = _run_summary(artifacts, store, recovery)
    if args.telemetry:
        summary += (f"\n  telemetry: {len(telemetry_files)} file(s) in "
                    f"{args.telemetry}")
    if args.sanitize:
        summary += (f"\n  sanitizer: {SANITIZER.event_total()} event(s) "
                    f"over {len(SANITIZER.stream_names())} stream(s), "
                    f"manifest {sanitizer_path}")
    if args.json:
        campaign = artifacts.campaign
        log = artifacts.world.api.log
        payload = json.loads(export.report_to_json(report))
        payload["run"] = {
            "checkpoint_hits": store.hits,
            "checkpoint_misses": store.misses,
            "resumed_from_day": (campaign.resumed_from_day
                                 if campaign is not None else None),
            "shard_blockers": (list(campaign.shard_plan.blockers)
                               if campaign is not None
                               and campaign.shard_plan is not None
                               else []),
            "shard_failures": (list(campaign.shard_failures)
                               if campaign is not None else []),
            "log_rows": len(log),
            "log_digest": log.digest(),
        }
        if args.telemetry:
            from repro.telemetry import TELEMETRY

            payload["telemetry"] = {
                "fingerprint": TELEMETRY.fingerprint(),
                "files": telemetry_files,
                "counters": {name: TELEMETRY.counter_total(name)
                             for name in TELEMETRY.counter_families()},
            }
        if args.sanitize:
            payload["sanitizer"] = {
                "fingerprint": SANITIZER.fingerprint(),
                "events": SANITIZER.event_total(),
                "streams": len(SANITIZER.stream_names()),
                "manifest": sanitizer_path,
            }
        _emit(json.dumps(payload, indent=2), args.out)
    else:
        _emit(report.render() + "\n\n" + summary, args.out)
    return 0


def cmd_score(args) -> int:
    from repro.experiments.comparison import score_report

    study = _study(args, milking_days=args.milking_days,
                   campaign_days=args.campaign_days)
    study.milk()
    study.run_countermeasures()
    card = score_report(study.report(), study.config.scale)
    if args.json:
        payload = [{"experiment": c.experiment, "name": c.name,
                    "expected": c.expected, "measured": c.measured,
                    "passed": c.passed} for c in card.checks]
        _emit(json.dumps(payload, indent=2), args.out)
    else:
        _emit(card.render(), args.out)
    return 0 if card.failed == 0 else 1


def cmd_metrics(args) -> int:
    from repro.telemetry.export import render_metrics

    path = args.path
    if os.path.isdir(path):
        path = os.path.join(path, "metrics.json")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: cannot read metrics document {path}: {error}",
              file=sys.stderr)
        return 2
    if args.json:
        _emit(json.dumps(payload, indent=2, sort_keys=True), args.out)
    else:
        _emit(render_metrics(payload).rstrip("\n"), args.out)
    return 0


def cmd_san(args) -> int:
    from repro.sanitizer import diff_manifests, load_manifest

    try:
        manifest_a = load_manifest(args.trace_a)
        manifest_b = load_manifest(args.trace_b)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = diff_manifests(manifest_a, manifest_b,
                            ignore=tuple(args.ignore))
    if args.json:
        payload = {
            "equal": result.equal,
            "streams_compared": result.streams_compared,
            "events": [result.events_a, result.events_b],
            "ignored": list(result.ignored),
            "divergences": [{
                "stream": d.stream, "kind": d.kind, "day": d.day,
                "seq": d.seq, "seq_lo": d.seq_lo, "seq_hi": d.seq_hi,
                "a": d.detail_a, "b": d.detail_b,
            } for d in result.divergences],
        }
        _emit(json.dumps(payload, indent=2), args.out)
    else:
        _emit(result.render(), args.out)
    return 0 if result.equal else 1


def cmd_lint(args) -> int:
    from repro.lint.cli import run as run_lint

    return run_lint(args)


def cmd_bench(args) -> int:
    from repro.perf import bench

    if args.baseline is not None:
        try:
            document = bench.compare_trees(
                current_src=_own_src_dir(), baseline_src=args.baseline,
                scale=args.scale, seed=args.seed,
                parallel_experiments=args.parallel_experiments,
                milking_days=args.milking_days,
                campaign_days=args.campaign_days,
                repeats=args.repeats, sanitize=args.sanitize)
        except bench.BaselineError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        payload = bench.run_benchmark(
            scale=args.scale, seed=args.seed,
            parallel_experiments=args.parallel_experiments,
            milking_days=args.milking_days,
            campaign_days=args.campaign_days,
            sanitize=args.sanitize)
        document = {
            "benchmark": "run_full_study",
            "meta": {"scale": args.scale, "seed": args.seed,
                     "milking_days": args.milking_days,
                     "campaign_days": args.campaign_days,
                     "parallel_experiments": args.parallel_experiments},
            "current": payload,
        }
    if args.json:
        _emit(json.dumps(document, indent=2), args.out)
    else:
        text = bench.render(document)
        print(text)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2)
                handle.write("\n")
    return 0


def _own_src_dir() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))


COMMANDS = {
    "scan": cmd_scan,
    "milk": cmd_milk,
    "campaign": cmd_campaign,
    "full": cmd_full,
    "run": cmd_run,
    "san": cmd_san,
    "metrics": cmd_metrics,
    "score": cmd_score,
    "lint": cmd_lint,
    "bench": cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
