"""Ghostery-style ad network and tracker detection (§5.1).

Collusion networks monetize with ads but are blacklisted by reputable ad
networks, so they bounce users through whitelisted redirect domains and
deploy anti-adblock scripts.  The scanner reports which networks and
behaviours are present on a site.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set


class AdNetwork(enum.Enum):
    """Ad networks observed in the paper's Ghostery scans."""

    ADSENSE = "adsense"
    ATLAS = "atlas"
    DOUBLECLICK = "doubleclick"
    POPADS = "popads"
    ADFLY = "adf.ly"
    SHORTEST = "sh.st"


#: Networks that blacklist reputation-manipulation domains; serving their
#: ads requires a redirect through a whitelisted intermediate domain.
REPUTABLE_NETWORKS: FrozenSet[AdNetwork] = frozenset({
    AdNetwork.ADSENSE, AdNetwork.ATLAS, AdNetwork.DOUBLECLICK,
})


@dataclass
class SiteAdProfile:
    """What a site actually runs (ground truth the scanner inspects)."""

    domain: str
    direct_networks: Set[AdNetwork] = field(default_factory=set)
    #: intermediate domain -> networks served there after the redirect
    redirect_networks: Dict[str, Set[AdNetwork]] = field(default_factory=dict)
    anti_adblock: bool = False
    requires_adblock_disabled: bool = False


@dataclass(frozen=True)
class AdScanResult:
    """The scanner's findings for one site."""

    domain: str
    networks_seen: FrozenSet[AdNetwork]
    uses_redirect_monetization: bool
    redirect_domains: FrozenSet[str]
    anti_adblock_detected: bool
    policy_violations: FrozenSet[AdNetwork]


class AdScanner:
    """Detects ad networks, redirect monetization and anti-adblock."""

    def __init__(self) -> None:
        self._profiles: Dict[str, SiteAdProfile] = {}

    def register_site(self, profile: SiteAdProfile) -> None:
        self._profiles[profile.domain] = profile

    def scan(self, domain: str) -> AdScanResult:
        profile = self._profiles.get(domain)
        if profile is None:
            raise KeyError(f"no ad profile registered for {domain}")
        indirect: Set[AdNetwork] = set()
        for networks in profile.redirect_networks.values():
            indirect |= networks
        seen = frozenset(profile.direct_networks | indirect)
        # Reputable networks served *directly* from a blacklisted domain
        # would violate network policy — collusion sites avoid this via
        # redirects, so direct placement is the violation signal.
        violations = frozenset(profile.direct_networks & REPUTABLE_NETWORKS)
        return AdScanResult(
            domain=domain,
            networks_seen=seen,
            uses_redirect_monetization=bool(profile.redirect_networks),
            redirect_domains=frozenset(profile.redirect_networks),
            anti_adblock_detected=profile.anti_adblock,
            policy_violations=violations,
        )

    def scan_all(self) -> List[AdScanResult]:
        return [self.scan(domain) for domain in sorted(self._profiles)]
