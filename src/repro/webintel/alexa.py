"""Alexa-style traffic ranking (the Table 2 data source).

Sites report daily visit volumes with per-country splits; the ranker
orders all known sites by traffic and exposes rank + top-country share,
which is exactly what Table 2 tabulates for the 50 collusion networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class SiteTraffic:
    """Measured traffic for one site."""

    domain: str
    daily_visits: float
    country_visits: Dict[str, float] = field(default_factory=dict)

    def top_country(self) -> Optional[Tuple[str, float]]:
        """The country contributing the most visits and its share."""
        if not self.country_visits:
            return None
        total = sum(self.country_visits.values())
        if total <= 0:
            return None
        country, visits = max(self.country_visits.items(),
                              key=lambda kv: (kv[1], kv[0]))
        return country, visits / total


@dataclass(frozen=True)
class RankEntry:
    """One row of the global ranking."""

    domain: str
    rank: int
    daily_visits: float
    top_country: Optional[str]
    top_country_share: Optional[float]


class TrafficRanker:
    """Maintains site traffic measurements and produces global ranks.

    The web's traffic volume is roughly Zipfian; to convert an absolute
    visit count to a plausible global rank without modelling every site
    on the internet, the ranker pins a reference point (``rank_anchor``
    visits ↔ ``anchor_rank``) and interpolates on the Zipf curve
    ``visits ∝ 1/rank``.  Registered sites are then re-ranked relative
    to each other so ordering is always consistent with measured volume.
    """

    def __init__(self, anchor_rank: int = 8_000,
                 anchor_daily_visits: float = 1_200_000.0) -> None:
        if anchor_rank <= 0 or anchor_daily_visits <= 0:
            raise ValueError("anchor rank and visits must be positive")
        self._anchor_rank = anchor_rank
        self._anchor_visits = anchor_daily_visits
        self._sites: Dict[str, SiteTraffic] = {}

    @property
    def anchor_rank(self) -> int:
        return self._anchor_rank

    @property
    def anchor_daily_visits(self) -> float:
        return self._anchor_visits

    def visits_for_rank(self, rank: int) -> float:
        """Invert the Zipf anchor: daily visits a site at ``rank`` sees."""
        if rank <= 0:
            raise ValueError(f"rank must be positive, got {rank}")
        return self._anchor_visits * self._anchor_rank / rank

    def observe(self, domain: str, daily_visits: float,
                country_visits: Optional[Dict[str, float]] = None) -> SiteTraffic:
        """Record (or replace) a site's traffic measurement."""
        if daily_visits < 0:
            raise ValueError("daily visits cannot be negative")
        site = SiteTraffic(domain=domain, daily_visits=daily_visits,
                           country_visits=dict(country_visits or {}))
        self._sites[domain] = site
        return site

    def get(self, domain: str) -> SiteTraffic:
        site = self._sites.get(domain)
        if site is None:
            raise KeyError(f"no traffic data for {domain}")
        return site

    def global_rank(self, domain: str) -> int:
        """Estimated global rank from the Zipf anchor."""
        site = self.get(domain)
        if site.daily_visits <= 0:
            return 10_000_000
        # visits = anchor_visits * anchor_rank / rank  =>  solve for rank.
        rank = self._anchor_visits * self._anchor_rank / site.daily_visits
        return max(1, int(round(rank)))

    def ranking(self) -> List[RankEntry]:
        """All registered sites ranked by traffic, busiest first.

        Global rank estimates are made monotone with the relative order
        (a site with more visits never gets a numerically larger rank).
        """
        ordered = sorted(self._sites.values(),
                         key=lambda s: (-s.daily_visits, s.domain))
        entries: List[RankEntry] = []
        floor = 0
        for site in ordered:
            rank = max(self.global_rank(site.domain), floor + 1)
            floor = rank
            top = site.top_country()
            entries.append(RankEntry(
                domain=site.domain,
                rank=rank,
                daily_visits=site.daily_visits,
                top_country=top[0] if top else None,
                top_country_share=top[1] if top else None,
            ))
        return entries
