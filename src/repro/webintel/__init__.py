"""Web-intelligence side channels: WHOIS, traffic ranks, ad/tracker scans.

These model the third-party data sources the paper's §5 analyses consume:
WHOIS registrant records (ownership), Alexa-style traffic ranking with
per-country visitor shares (Table 2) and Ghostery-style ad network /
tracker detection (monetization).
"""

from repro.webintel.whois import WhoisRecord, WhoisRegistry
from repro.webintel.alexa import TrafficRanker, SiteTraffic, RankEntry
from repro.webintel.adnetworks import AdScanner, AdScanResult, AdNetwork

__all__ = [
    "WhoisRecord",
    "WhoisRegistry",
    "TrafficRanker",
    "SiteTraffic",
    "RankEntry",
    "AdScanner",
    "AdScanResult",
    "AdNetwork",
]
