"""WHOIS registry with privacy-protection services.

§5.2: 36% of collusion-network domains hide behind WhoisGuard-style
privacy services; most of the rest have registrants in India, Pakistan or
Indonesia, and the domains resolve to CloudFlare-fronted IPs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class WhoisRecord:
    """A (possibly privacy-redacted) domain registration record."""

    domain: str
    registrant_name: Optional[str]
    registrant_country: Optional[str]
    privacy_protected: bool
    nameserver_provider: str  # e.g. "cloudflare" or a hosting company

    @property
    def discloses_registrant(self) -> bool:
        return not self.privacy_protected and self.registrant_name is not None


class WhoisRegistry:
    """Stores and serves WHOIS records."""

    def __init__(self) -> None:
        self._records: Dict[str, WhoisRecord] = {}

    def register(self, domain: str, registrant_name: Optional[str],
                 registrant_country: Optional[str],
                 privacy_protected: bool = False,
                 nameserver_provider: str = "cloudflare") -> WhoisRecord:
        record = WhoisRecord(
            domain=domain,
            registrant_name=None if privacy_protected else registrant_name,
            registrant_country=(None if privacy_protected
                                else registrant_country),
            privacy_protected=privacy_protected,
            nameserver_provider=nameserver_provider,
        )
        self._records[domain] = record
        return record

    def lookup(self, domain: str) -> WhoisRecord:
        record = self._records.get(domain)
        if record is None:
            raise KeyError(f"no WHOIS record for {domain}")
        return record

    def all(self) -> List[WhoisRecord]:
        return list(self._records.values())

    # ------------------------------------------------------------------
    # §5.2 aggregate analyses
    # ------------------------------------------------------------------
    def privacy_protected_share(self) -> float:
        """Fraction of records behind privacy protection."""
        records = self.all()
        if not records:
            return 0.0
        return sum(r.privacy_protected for r in records) / len(records)

    def registrant_country_counts(self) -> Dict[str, int]:
        """Counts of disclosed registrant countries."""
        counts: Dict[str, int] = {}
        for record in self.all():
            if record.discloses_registrant and record.registrant_country:
                country = record.registrant_country
                counts[country] = counts.get(country, 0) + 1
        return counts

    def cloudflare_share(self) -> float:
        """Fraction of domains fronted by CloudFlare-style providers."""
        records = self.all()
        if not records:
            return 0.0
        fronted = sum(r.nameserver_provider == "cloudflare" for r in records)
        return fronted / len(records)
