"""Deterministic fault plans (§6 resilience experiments).

A :class:`FaultPlan` is a composable list of :class:`FaultRule`\\ s, each
describing *one* failure mode injected into the Graph API data plane:

``transient``
    the request fails with :class:`~repro.graphapi.errors.TransientApiError`
    (Facebook's "please retry" / error code 2 family);
``timeout``
    the request hangs past the client deadline and fails with
    :class:`~repro.graphapi.errors.ApiTimeout`;
``rate_limit``
    a spurious ``rate_limited`` response without the budget actually
    being charged (rate-limit jitter);
``invalidate_token``
    the request's access token is invalidated *mid-flight* (the request
    then fails through the normal ``invalid_token`` path and the token
    stays dead, as in the §6.2 invalidation countermeasure);
``chunk``
    an all-or-nothing ``execute_batch`` / ``charge_like_batch`` chunk
    fails wholesale, forcing the caller to degrade to scalar replay.

Rules compose: every active, matching rule gets an independent roll per
request, in plan order, and the first hit wins.  Decisions come from a
dedicated RNG stream (``rng.stream("faults")``) so an *empty* plan
consumes no randomness at all — a run with no plan is byte-identical to
a run of the pre-fault codebase — while a *fixed* plan is fully
deterministic under a fixed master seed.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.sim.clock import SimClock

#: The failure modes a rule may inject.
FAULT_KINDS = ("transient", "timeout", "rate_limit", "invalidate_token",
               "chunk")

#: Pseudo-action key used by the charge-only admission path (there is no
#: ApiAction for it; see GraphApi.charge_like).
CHARGE_ACTION = "CHARGE_LIKE"


@dataclass(frozen=True)
class FaultRule:
    """One failure mode, its probability, window and target predicate.

    ``start_day`` / ``end_day`` bound the rule to simulation days
    (``end_day`` exclusive, ``None`` = forever).  ``actions`` restricts
    the rule to a set of Graph API action names (e.g. ``"LIKE_POST"``,
    ``"COMMENT"``, or :data:`CHARGE_ACTION` for the charge-only path);
    ``None`` matches every action.  ``chunk`` rules ignore ``actions``.
    """

    kind: str
    probability: float
    start_day: int = 0
    end_day: Optional[int] = None
    actions: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.start_day < 0:
            raise ValueError(f"start_day must be >= 0, got {self.start_day}")
        if self.end_day is not None and self.end_day <= self.start_day:
            raise ValueError("end_day must be after start_day")
        if self.actions is not None and not isinstance(self.actions,
                                                       frozenset):
            object.__setattr__(self, "actions", frozenset(self.actions))

    def active_on(self, day: int) -> bool:
        if day < self.start_day:
            return False
        return self.end_day is None or day < self.end_day

    def matches(self, action: str) -> bool:
        return self.actions is None or action in self.actions

    def to_dict(self) -> Dict:
        payload: Dict = {"kind": self.kind,
                         "probability": self.probability,
                         "start_day": self.start_day}
        if self.end_day is not None:
            payload["end_day"] = self.end_day
        if self.actions is not None:
            payload["actions"] = sorted(self.actions)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultRule":
        actions = payload.get("actions")
        return cls(kind=payload["kind"],
                   probability=payload["probability"],
                   start_day=payload.get("start_day", 0),
                   end_day=payload.get("end_day"),
                   actions=frozenset(actions) if actions else None)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, composable set of fault rules."""

    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    def __bool__(self) -> bool:
        return bool(self.rules)

    def with_rule(self, rule: FaultRule) -> "FaultPlan":
        return FaultPlan(self.rules + (rule,))

    # ------------------------------------------------------------------
    # Serialization (the CLI's --faults file format)
    # ------------------------------------------------------------------
    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(
            {"rules": [rule.to_dict() for rule in self.rules]},
            indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        rules = payload.get("rules", payload if isinstance(payload, list)
                            else [])
        return cls(tuple(FaultRule.from_dict(r) for r in rules))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


class FaultInjector:
    """Binds a :class:`FaultPlan` to a clock, an RNG stream and the
    token store, and answers the Graph API's "does this request fail?"
    questions.

    The injector is consulted from single-threaded simulation code, so
    decision order — and therefore the fault RNG stream — is exactly
    reproducible.  Injected faults are tallied in :attr:`counters` for
    the perf instrumentation layer.
    """

    def __init__(self, plan: FaultPlan, rng: random.Random,
                 clock: SimClock, tokens=None,
                 chunk_rng: Optional[random.Random] = None) -> None:
        self.plan = plan
        self.rng = rng
        # Chunk decisions draw from their own stream so the scalar fault
        # stream stays identical whether deliveries run as waves (which
        # probe per segment) or through the scalar oracle (which never
        # probes) — the wave/scalar equivalence contract depends on it.
        self.chunk_rng = chunk_rng if chunk_rng is not None else rng
        self.clock = clock
        self.tokens = tokens
        self.counters: Dict[str, int] = {}
        # Per-day active-rule cache: scalar rules and chunk rules split
        # so the hot paths only scan what can match them.
        self._cached_day = -1
        self._scalar_rules: List[FaultRule] = []
        self._chunk_rules: List[FaultRule] = []

    def _refresh(self, day: int) -> None:
        self._cached_day = day
        scalar: List[FaultRule] = []
        chunk: List[FaultRule] = []
        for rule in self.plan.rules:
            if not rule.active_on(day):
                continue
            (chunk if rule.kind == "chunk" else scalar).append(rule)
        self._scalar_rules = scalar
        self._chunk_rules = chunk

    def _count(self, kind: str) -> None:
        self.counters[kind] = self.counters.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def decide(self, action: str, access_token: str) -> Optional[str]:
        """Roll every matching scalar rule for one request.

        Returns the injected fault kind or ``None``.  A winning
        ``invalidate_token`` rule *performs* the invalidation here (the
        caller then proceeds and fails through the normal
        ``invalid_token`` machinery, exactly like the §6.2 ladder).
        """
        day = self.clock.day()
        if day != self._cached_day:
            self._refresh(day)
        rng_random = self.rng.random
        for rule in self._scalar_rules:
            if rule.actions is not None and action not in rule.actions:
                continue
            if rng_random() >= rule.probability:
                continue
            kind = rule.kind
            self._count(kind)
            if kind == "invalidate_token" and self.tokens is not None:
                token = self.tokens.peek(access_token)
                if token is not None and not token.invalidated:
                    self.tokens.invalidate(access_token,
                                           reason="fault_injection")
            return kind
        return None

    def decide_chunk(self, size: int) -> bool:
        """Whether an all-or-nothing batch of ``size`` requests fails."""
        day = self.clock.day()
        if day != self._cached_day:
            self._refresh(day)
        rng_random = self.chunk_rng.random
        for rule in self._chunk_rules:
            if rng_random() < rule.probability:
                self._count("chunk")
                return True
        return False

    def total_injected(self) -> int:
        return sum(self.counters.values())


# ----------------------------------------------------------------------
# Convenience plan builders
# ----------------------------------------------------------------------
def transient_plan(probability: float = 0.05,
                   actions: Optional[Sequence[str]] = None) -> FaultPlan:
    """A flat transient-error plan (the acceptance-criteria workload)."""
    return FaultPlan((FaultRule(
        kind="transient", probability=probability,
        actions=frozenset(actions) if actions else None),))


def chaos_plan(transient: float = 0.05, timeout: float = 0.01,
               rate_limit: float = 0.01, invalidate: float = 0.001,
               chunk: float = 0.05) -> FaultPlan:
    """Every failure mode at once — the chaos-smoke configuration."""
    rules = []
    if transient > 0:
        rules.append(FaultRule(kind="transient", probability=transient))
    if timeout > 0:
        rules.append(FaultRule(kind="timeout", probability=timeout))
    if rate_limit > 0:
        rules.append(FaultRule(kind="rate_limit", probability=rate_limit))
    if invalidate > 0:
        rules.append(FaultRule(kind="invalidate_token",
                               probability=invalidate))
    if chunk > 0:
        rules.append(FaultRule(kind="chunk", probability=chunk))
    return FaultPlan(tuple(rules))
