"""Deterministic fault plans (§6 resilience experiments).

A :class:`FaultPlan` is a composable list of :class:`FaultRule`\\ s, each
describing *one* failure mode injected into the Graph API data plane:

``transient``
    the request fails with :class:`~repro.graphapi.errors.TransientApiError`
    (Facebook's "please retry" / error code 2 family);
``timeout``
    the request hangs past the client deadline and fails with
    :class:`~repro.graphapi.errors.ApiTimeout`;
``rate_limit``
    a spurious ``rate_limited`` response without the budget actually
    being charged (rate-limit jitter);
``invalidate_token``
    the request's access token is invalidated *mid-flight* (the request
    then fails through the normal ``invalid_token`` path and the token
    stays dead, as in the §6.2 invalidation countermeasure);
``chunk``
    an all-or-nothing ``execute_batch`` / ``charge_like_batch`` chunk
    fails wholesale, forcing the caller to degrade to scalar replay;
``child_crash``
    a forked shard worker SIGKILLs itself partway through its day — the
    :class:`~repro.countermeasures.sharding.ShardSupervisor` must detect
    the death and re-execute the component serially;
``torn_tail``
    the process "loses power" while sealing a journal day: trailing
    bytes are torn off the newest WAL segment and the run aborts with
    :class:`~repro.journal.SimulatedCrash` (the resume path must then
    recover the truncated journal).  Only consulted when a journal is
    attached, so a reference run without ``--journal`` is the
    uninterrupted oracle.

Rules compose: every active, matching rule gets an independent roll per
request, in plan order, and the first hit wins.  Decisions are *keyed*
hashes — ``blake2b(seed | namespace | key | draw#)`` with per-key draw
counters — rather than a single sequential stream, so a decision
depends only on its own subject's history (token, network, day), never
on the global interleaving of other subjects' requests.  That is what
lets a certified shard plan fork fault-injected components: each child
reproduces exactly the draws its own tokens would have seen serially.
The namespace seeds still come from the dedicated ``faults`` RNG
streams, so a fixed plan remains fully deterministic under a fixed
master seed and an absent plan consumes no randomness at all.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.sim.clock import SimClock

#: The failure modes a rule may inject.
FAULT_KINDS = ("transient", "timeout", "rate_limit", "invalidate_token",
               "chunk", "child_crash", "torn_tail")

#: Kinds that are not per-request scalar decisions.
_STRUCTURAL_KINDS = frozenset({"chunk", "child_crash", "torn_tail"})

#: Pseudo-action key used by the charge-only admission path (there is no
#: ApiAction for it; see GraphApi.charge_like).
CHARGE_ACTION = "CHARGE_LIKE"


@dataclass(frozen=True)
class FaultRule:
    """One failure mode, its probability, window and target predicate.

    ``start_day`` / ``end_day`` bound the rule to simulation days
    (``end_day`` exclusive, ``None`` = forever).  ``actions`` restricts
    the rule to a set of Graph API action names (e.g. ``"LIKE_POST"``,
    ``"COMMENT"``, or :data:`CHARGE_ACTION` for the charge-only path);
    ``None`` matches every action.  ``chunk``, ``child_crash`` and
    ``torn_tail`` rules ignore ``actions``.
    """

    kind: str
    probability: float
    start_day: int = 0
    end_day: Optional[int] = None
    actions: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.start_day < 0:
            raise ValueError(f"start_day must be >= 0, got {self.start_day}")
        if self.end_day is not None and self.end_day <= self.start_day:
            raise ValueError("end_day must be after start_day")
        if self.actions is not None and not isinstance(self.actions,
                                                       frozenset):
            object.__setattr__(self, "actions", frozenset(self.actions))

    def active_on(self, day: int) -> bool:
        if day < self.start_day:
            return False
        return self.end_day is None or day < self.end_day

    def matches(self, action: str) -> bool:
        return self.actions is None or action in self.actions

    def to_dict(self) -> Dict:
        payload: Dict = {"kind": self.kind,
                         "probability": self.probability,
                         "start_day": self.start_day}
        if self.end_day is not None:
            payload["end_day"] = self.end_day
        if self.actions is not None:
            payload["actions"] = sorted(self.actions)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultRule":
        actions = payload.get("actions")
        return cls(kind=payload["kind"],
                   probability=payload["probability"],
                   start_day=payload.get("start_day", 0),
                   end_day=payload.get("end_day"),
                   actions=frozenset(actions) if actions else None)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, composable set of fault rules."""

    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    def __bool__(self) -> bool:
        return bool(self.rules)

    def with_rule(self, rule: FaultRule) -> "FaultPlan":
        return FaultPlan(self.rules + (rule,))

    # ------------------------------------------------------------------
    # Serialization (the CLI's --faults file format)
    # ------------------------------------------------------------------
    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(
            {"rules": [rule.to_dict() for rule in self.rules]},
            indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        rules = payload.get("rules", payload if isinstance(payload, list)
                            else [])
        return cls(tuple(FaultRule.from_dict(r) for r in rules))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


# The per-day rule caches (_cached_day/_scalar_rules/_chunk_rules/
# _crash_rules/_torn_rules) are pure functions of the immutable plan
# and the queried day, rebuilt on first use after any resume — they
# carry no state a snapshot could lose.
class FaultInjector:  # reprolint: disable=RL401 — *_rules/_cached_day are derived per-day caches rebuilt from the immutable plan
    """Binds a :class:`FaultPlan` to a clock, an RNG stream and the
    token store, and answers the Graph API's "does this request fail?"
    questions.

    Decisions are position-independent: every roll hashes a namespace
    seed, the subject key (access token, network domain or day) and a
    per-key draw counter, so a subject's fault trajectory depends only
    on its *own* request history.  Serial and sharded execution — and a
    resumed run that restores the draw counters from a checkpoint —
    therefore produce identical decisions.  Injected faults are tallied
    in :attr:`counters` for the perf instrumentation layer.
    """

    def __init__(self, plan: FaultPlan, rng: random.Random,
                 clock: SimClock, tokens=None,
                 chunk_rng: Optional[random.Random] = None) -> None:
        self.plan = plan
        self.rng = rng
        # Chunk decisions key off their own namespace seed so the scalar
        # fault draws stay identical whether deliveries run as waves
        # (which probe per segment) or through the scalar oracle (which
        # never probes) — the wave/scalar equivalence contract depends
        # on it.
        self.chunk_rng = chunk_rng if chunk_rng is not None else rng
        self.clock = clock
        self.tokens = tokens
        self.counters: Dict[str, int] = {}
        # Namespace seeds, derived once from the dedicated fault streams
        # (fixed draw order => reproducible under a fixed master seed).
        self._seeds: Dict[str, int] = {
            "s": rng.getrandbits(64),
            "crash": rng.getrandbits(64),
            "torn": rng.getrandbits(64),
        }
        self._seeds["c"] = self.chunk_rng.getrandbits(64)
        #: Draw counters keyed by (namespace, subject key).
        self._draws: Dict[Tuple[str, str], int] = {}
        #: Invalidations performed by this injector, in decision order —
        #: shard children export the day's suffix so the parent can
        #: replay them against its own token store.
        self.invalidations: List[Tuple[str, str]] = []
        # Per-day active-rule cache, split by decision surface so the
        # hot paths only scan what can match them.
        self._cached_day = -1
        self._scalar_rules: List[FaultRule] = []
        self._chunk_rules: List[FaultRule] = []
        self._crash_rules: List[FaultRule] = []
        self._torn_rules: List[FaultRule] = []

    def _refresh(self, day: int) -> None:
        self._cached_day = day
        scalar: List[FaultRule] = []
        chunk: List[FaultRule] = []
        crash: List[FaultRule] = []
        torn: List[FaultRule] = []
        buckets = {"chunk": chunk, "child_crash": crash,
                   "torn_tail": torn}
        for rule in self.plan.rules:
            if not rule.active_on(day):
                continue
            buckets.get(rule.kind, scalar).append(rule)
        self._scalar_rules = scalar
        self._chunk_rules = chunk
        self._crash_rules = crash
        self._torn_rules = torn

    def _count(self, kind: str) -> None:
        self.counters[kind] = self.counters.get(kind, 0) + 1

    def _draw(self, namespace: str, key: str) -> float:
        """One keyed uniform draw in ``[0, 1)``, advancing the key's
        counter."""
        draw_key = (namespace, key)
        count = self._draws.get(draw_key, 0)
        self._draws[draw_key] = count + 1
        digest = hashlib.blake2b(
            f"{self._seeds[namespace]}|{namespace}|{key}|{count}".encode(),
            digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def decide(self, action: str, access_token: str) -> Optional[str]:
        """Roll every matching scalar rule for one request.

        Returns the injected fault kind or ``None``.  A winning
        ``invalidate_token`` rule *performs* the invalidation here (the
        caller then proceeds and fails through the normal
        ``invalid_token`` machinery, exactly like the §6.2 ladder).
        """
        day = self.clock.day()
        if day != self._cached_day:
            self._refresh(day)
        for rule in self._scalar_rules:
            if rule.actions is not None and action not in rule.actions:
                continue
            if self._draw("s", access_token) >= rule.probability:
                continue
            kind = rule.kind
            self._count(kind)
            if kind == "invalidate_token" and self.tokens is not None:
                token = self.tokens.peek(access_token)
                if token is not None and not token.invalidated:
                    self.tokens.invalidate(access_token,
                                           reason="fault_injection")
                    self.invalidations.append(
                        (access_token, "fault_injection"))
            return kind
        return None

    def decide_chunk(self, size: int, key: str = "") -> bool:
        """Whether an all-or-nothing batch of ``size`` requests fails.

        ``key`` names the batching subject (the network domain or the
        chunk's lead token) so chunk draws shard cleanly with it.
        """
        day = self.clock.day()
        if day != self._cached_day:
            self._refresh(day)
        for rule in self._chunk_rules:
            if self._draw("c", key) < rule.probability:
                self._count("chunk")
                return True
        return False

    def decide_child_crash(self, day: int, domain: str,
                           n_events: int) -> Optional[int]:
        """Whether the shard child for ``domain`` crashes on ``day``.

        Decided in the *parent* before forking (so the tally survives
        the child's death) and shipped into the child, which executes
        the returned number of events and then SIGKILLs itself.  The
        supervisor's serial re-execution never consults this decision,
        so the recovered day converges to the no-crash trajectory.
        """
        if day != self._cached_day:
            self._refresh(day)
        if not self._crash_rules:
            return None
        key = f"{day}|{domain}"
        for rule in self._crash_rules:
            if self._draw("crash", key) >= rule.probability:
                continue
            self._count("child_crash")
            cut = self._draw("crash", key + "|cut")
            return max(1, int(cut * max(n_events, 1)))
        return None

    def decide_torn_tail(self, day: int) -> Optional[int]:
        """Bytes to tear off the journal tail while sealing ``day``
        (``None`` = no crash).  Consulted only when a journal is
        attached; the recovery layer fires it at most once per journal
        lifetime so a resumed run cannot crash-loop on the same draw.
        """
        if day != self._cached_day:
            self._refresh(day)
        if not self._torn_rules:
            return None
        for rule in self._torn_rules:
            if self._draw("torn", str(day)) >= rule.probability:
                continue
            self._count("torn_tail")
            spread = self._draw("torn", f"{day}|bytes")
            return 1 + int(spread * 96)
        return None

    # ------------------------------------------------------------------
    # State transfer (sharding deltas and campaign checkpoints)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Cheap marker of the current decision state (pre-day, in a
        shard child) for :meth:`export_delta`."""
        return {"counters": dict(self.counters),
                "draws": dict(self._draws),
                "invalidations": len(self.invalidations)}

    def export_delta(self, snapshot: Dict) -> Dict:
        """What this injector decided since ``snapshot`` — picklable,
        and safe to apply in another process whose subjects are
        disjoint from every other delta's."""
        base_counters = snapshot["counters"]
        base_draws = snapshot["draws"]
        return {
            "counters": {kind: count - base_counters.get(kind, 0)
                         for kind, count in self.counters.items()
                         if count != base_counters.get(kind, 0)},
            "draws": {key: count
                      for key, count in self._draws.items()
                      if count != base_draws.get(key)},
            "invalidated": list(
                self.invalidations[snapshot["invalidations"]:]),
        }

    def apply_delta(self, delta: Dict) -> None:
        """Merge a shard child's :meth:`export_delta` into the parent,
        replaying token invalidations against the parent's store."""
        for kind, count in delta["counters"].items():
            self.counters[kind] = self.counters.get(kind, 0) + count
        self._draws.update(delta["draws"])
        for access_token, reason in delta["invalidated"]:
            self.invalidations.append((access_token, reason))
            if self.tokens is not None:
                token = self.tokens.peek(access_token)
                if token is not None and not token.invalidated:
                    self.tokens.invalidate(access_token, reason=reason)

    def export_state(self) -> Dict:
        """Full decision state for a campaign checkpoint."""
        return {"counters": dict(self.counters),
                "draws": dict(self._draws),
                "invalidations": list(self.invalidations)}

    def install_state(self, state: Dict) -> None:
        self.counters = dict(state["counters"])
        self._draws = dict(state["draws"])
        self.invalidations = list(state["invalidations"])

    def total_injected(self) -> int:
        return sum(self.counters.values())


# ----------------------------------------------------------------------
# Convenience plan builders
# ----------------------------------------------------------------------
def transient_plan(probability: float = 0.05,
                   actions: Optional[Sequence[str]] = None) -> FaultPlan:
    """A flat transient-error plan (the acceptance-criteria workload)."""
    return FaultPlan((FaultRule(
        kind="transient", probability=probability,
        actions=frozenset(actions) if actions else None),))


def chaos_plan(transient: float = 0.05, timeout: float = 0.01,
               rate_limit: float = 0.01, invalidate: float = 0.001,
               chunk: float = 0.05) -> FaultPlan:
    """Every failure mode at once — the chaos-smoke configuration."""
    rules = []
    if transient > 0:
        rules.append(FaultRule(kind="transient", probability=transient))
    if timeout > 0:
        rules.append(FaultRule(kind="timeout", probability=timeout))
    if rate_limit > 0:
        rules.append(FaultRule(kind="rate_limit", probability=rate_limit))
    if invalidate > 0:
        rules.append(FaultRule(kind="invalidate_token",
                               probability=invalidate))
    if chunk > 0:
        rules.append(FaultRule(kind="chunk", probability=chunk))
    return FaultPlan(tuple(rules))
