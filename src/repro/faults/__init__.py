"""Deterministic fault injection and resilience primitives.

``repro.faults`` makes the §6 countermeasure experiments honest about
failure: a seeded :class:`FaultPlan` injects transient Graph API errors,
timeouts, rate-limit jitter, mid-flight token invalidations and batch
chunk failures at the :class:`~repro.graphapi.api.GraphApi` choke
points, while :class:`RetryPolicy` / :class:`CircuitBreaker` give the
consumers (collusion delivery loops, the honeypot milker) the retrying,
backing-off behaviour the paper observed in real collusion networks.

Everything is deterministic under a fixed seed: an empty plan consumes
no randomness (byte-identical to a run without the subsystem), and a
fixed plan reproduces the same faults, retries and reports on every
run.
"""

from repro.faults.plan import (
    CHARGE_ACTION,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    chaos_plan,
    transient_plan,
)
from repro.faults.retry import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
    deterministic_jitter,
)

__all__ = [
    "CHARGE_ACTION",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "chaos_plan",
    "transient_plan",
    "CircuitBreaker",
    "RetryPolicy",
    "deterministic_jitter",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
]
