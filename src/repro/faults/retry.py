"""Retry policies and circuit breakers for resilient API consumers.

The paper's central §6 observation is that collusion networks are
*resilient* clients: they retry transient failures, back off under
pressure, and adapt rather than abort.  :class:`RetryPolicy` gives the
simulator's API consumers (collusion delivery loops, the honeypot
milker) that behaviour without perturbing determinism:

* backoff delays are exponential with **deterministic jitter** — a hash
  of ``(endpoint, key, attempt, now)`` on the sim clock, never a draw
  from a shared RNG stream — so enabling retries cannot shift any other
  subsystem's random sequence;
* every endpoint gets a :class:`CircuitBreaker`: after
  ``breaker_threshold`` consecutive exhausted retry budgets the breaker
  opens and the consumer fails fast until ``breaker_cooldown`` sim
  seconds pass (half-open probe, then close on success).

Inside a single scheduler event the sim clock cannot advance, so
synchronous loops retry inline and *account* the computed backoff in
:attr:`RetryPolicy.counters` (``backoff_seconds``); schedulable callers
(the milker's follow-up deliveries) use :meth:`backoff_delay` to place
the retry on the event scheduler for real.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.telemetry.registry import TELEMETRY

#: Breaker states (string enums keep reprs/debugging simple).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


def deterministic_jitter(endpoint: str, key: str, attempt: int,
                         now: int) -> float:
    """A stable jitter fraction in [0, 1) for one retry decision."""
    digest = hashlib.blake2b(
        f"{endpoint}|{key}|{attempt}|{now}".encode("utf-8"),
        digest_size=4).digest()
    return int.from_bytes(digest, "big") / 2 ** 32


@dataclass
class _BreakerState:
    consecutive_failures: int = 0
    state: str = CLOSED
    open_until: int = 0


class CircuitBreaker:
    """Per-endpoint consecutive-failure breaker on the sim clock."""

    def __init__(self, threshold: int = 8, cooldown: int = 900) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._endpoints: Dict[str, _BreakerState] = {}
        self.opens = 0

    def _state(self, endpoint: str) -> _BreakerState:
        state = self._endpoints.get(endpoint)
        if state is None:
            state = self._endpoints[endpoint] = _BreakerState()
        return state

    def allow(self, endpoint: str, now: int) -> bool:
        """Whether the endpoint may be tried (closed or half-open)."""
        state = self._endpoints.get(endpoint)
        if state is None or state.state == CLOSED:
            return True
        if state.state == OPEN:
            if now < state.open_until:
                return False
            state.state = HALF_OPEN
            if TELEMETRY.enabled:
                TELEMETRY.count("breaker_transitions_total",
                                endpoint=endpoint, state=HALF_OPEN)
        return True  # half-open: let one probe through

    def record_success(self, endpoint: str) -> None:
        state = self._endpoints.get(endpoint)
        if state is not None:
            state.consecutive_failures = 0
            if state.state != CLOSED and TELEMETRY.enabled:
                TELEMETRY.count("breaker_transitions_total",
                                endpoint=endpoint, state=CLOSED)
            state.state = CLOSED

    def record_failure(self, endpoint: str, now: int) -> None:
        state = self._state(endpoint)
        state.consecutive_failures += 1
        if (state.state == HALF_OPEN
                or state.consecutive_failures >= self.threshold):
            state.state = OPEN
            state.open_until = now + self.cooldown
            self.opens += 1
            if TELEMETRY.enabled:
                TELEMETRY.count("breaker_transitions_total",
                                endpoint=endpoint, state=OPEN)

    def state_of(self, endpoint: str) -> str:
        state = self._endpoints.get(endpoint)
        return state.state if state is not None else CLOSED


class RetryPolicy:
    """Exponential backoff + retry budget + per-endpoint breaker.

    One instance per consumer (each collusion network, the milking
    campaign) so breaker state and counters are scoped to that
    consumer's traffic.
    """

    def __init__(self, max_retries: int = 3, base_delay: int = 2,
                 max_delay: int = 300, jitter: float = 0.5,
                 breaker_threshold: int = 8,
                 breaker_cooldown: int = 900,
                 max_elapsed: Optional[int] = None) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if base_delay <= 0:
            raise ValueError(f"base_delay must be positive, got {base_delay}")
        if max_delay < base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        if max_elapsed is not None and max_elapsed <= 0:
            raise ValueError(
                f"max_elapsed must be positive, got {max_elapsed}")
        self.max_retries = max_retries
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        #: Total simulated backoff budget per retry loop: a loop stops
        #: early (reason ``"deadline"``) once the *next* computed delay
        #: would push cumulative backoff past this many sim seconds.
        #: ``None`` means attempts are the only budget.
        self.max_elapsed = max_elapsed
        self.breaker = CircuitBreaker(threshold=breaker_threshold,
                                      cooldown=breaker_cooldown)
        #: Why the most recent giveup stopped: ``"attempts"`` or
        #: ``"deadline"`` (None until the first giveup).
        self.last_giveup_reason: Optional[str] = None
        self.counters: Dict[str, int] = {
            "retries": 0,
            "recoveries": 0,
            "giveups": 0,
            "giveups_attempts": 0,
            "giveups_deadline": 0,
            "fast_fails": 0,
            "backoff_seconds": 0,
        }

    # ------------------------------------------------------------------
    # Backoff
    # ------------------------------------------------------------------
    def backoff_delay(self, endpoint: str, key: str, attempt: int,
                      now: int) -> int:
        """Sim-clock delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        delay = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        frac = deterministic_jitter(endpoint, key, attempt, now)
        return max(1, int(delay * (1.0 + self.jitter * frac)))

    # ------------------------------------------------------------------
    # Breaker-aware retry loop for synchronous consumers
    # ------------------------------------------------------------------
    def allow(self, endpoint: str, now: int) -> bool:
        """Whether retrying this endpoint is currently worthwhile."""
        if self.breaker.allow(endpoint, now):
            return True
        self.counters["fast_fails"] += 1
        if TELEMETRY.enabled:
            TELEMETRY.count("retry_fast_fails_total", endpoint=endpoint)
        return False

    def retry(self, endpoint: str, key: str, now: int, call, code: str,
              transient=("transient", "timeout")):
        """Retry after an initial transient failure ``code``.

        ``call()`` returns a result code (``None`` = success); it is
        re-invoked while it keeps yielding a code in ``transient`` and
        the retry budget lasts.  Returns the final code.  The breaker
        records an exhausted budget as one failure and any non-transient
        outcome as a success (the endpoint itself answered; the request
        just failed for normal reasons).  While the breaker is open the
        initial code is returned untouched (fail fast).

        Hot callers invoke this only *after* observing a transient code,
        so the fault-free fast path pays nothing for resilience.
        """
        if not self.allow(endpoint, now):
            return code
        counters = self.counters
        elapsed = 0
        reason = "attempts"
        for attempt in range(1, self.max_retries + 1):
            delay = self.backoff_delay(endpoint, key, attempt, now)
            if (self.max_elapsed is not None
                    and elapsed + delay > self.max_elapsed):
                reason = "deadline"
                break
            elapsed += delay
            counters["retries"] += 1
            counters["backoff_seconds"] += delay
            if TELEMETRY.enabled:
                TELEMETRY.count("retry_attempts_total", endpoint=endpoint)
                TELEMETRY.count("retry_backoff_seconds_total", delay,
                                endpoint=endpoint)
            code = call()
            if code not in transient:
                self.breaker.record_success(endpoint)
                counters["recoveries"] += 1
                if TELEMETRY.enabled:
                    TELEMETRY.count("retry_recoveries_total",
                                    endpoint=endpoint)
                return code
        counters["giveups"] += 1
        counters["giveups_" + reason] += 1
        self.last_giveup_reason = reason
        self.breaker.record_failure(endpoint, now)
        if TELEMETRY.enabled:
            TELEMETRY.count("retry_giveups_total",
                            endpoint=endpoint, reason=reason)
        return code

    def run(self, endpoint: str, key: str, now: int, call,
            transient=("transient", "timeout")):
        """Convenience wrapper: one call plus :meth:`retry` on demand."""
        code = call()
        if code not in transient:
            return code
        return self.retry(endpoint, key, now, call, code,
                          transient=transient)

    def total_retries(self) -> int:
        return self.counters["retries"]
