"""Synthetic workload generators (organic third-party app traffic)."""

from repro.workloads.organic import OrganicWorkload, OrganicUser

__all__ = ["OrganicWorkload", "OrganicUser"]
