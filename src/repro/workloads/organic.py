"""Organic third-party application traffic.

Legitimate users of the susceptible apps (Spotify, HTC Sense, ...) also
perform Graph API writes — that is exactly why the paper rejects blunt
countermeasures (suspending apps, banning the implicit flow) and why
abuse detection must separate the two populations.  The generator
produces users who behave like people: a handful of likes per day, sent
from their *own* residential IP, targeting friends' posts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.graphapi.errors import GraphApiError
from repro.netsim.ip import int_to_ip, ip_to_int
from repro.oauth.errors import InvalidTokenError
from repro.oauth.server import AuthorizationRequest
from repro.socialnet.errors import SocialNetworkError


@dataclass
class OrganicUser:
    """One legitimate app user: account, token, home IP, friends."""

    account_id: str
    token: str
    app_id: str
    home_ip: str
    friend_ids: List[str] = field(default_factory=list)


class OrganicWorkload:
    """Creates and drives a population of legitimate app users."""

    #: Residential address space for organic users (distinct from the
    #: collusion networks' hosting prefixes).
    HOME_PREFIX = "10.200.0.0"

    def __init__(self, world, app_ids: Sequence[str],
                 likes_per_user_per_day: float = 3.0,
                 rng: Optional[random.Random] = None) -> None:
        if not app_ids:
            raise ValueError("need at least one application")
        self.world = world
        self.app_ids = list(app_ids)
        self.likes_per_user_per_day = likes_per_user_per_day
        self.rng = rng or world.rng.stream("organic")
        self.users: List[OrganicUser] = []
        self._ip_cursor = ip_to_int(self.HOME_PREFIX)

    # ------------------------------------------------------------------
    def create_users(self, count: int) -> List[OrganicUser]:
        """Register ``count`` users, each installing one app via the
        implicit flow from their own browser."""
        created: List[OrganicUser] = []
        for _ in range(count):
            account = self.world.platform.register_account(
                f"Organic User {len(self.users) + 1}")
            app = self.world.apps.get(self.rng.choice(self.app_ids))
            result = self.world.auth_server.authorize(
                AuthorizationRequest(app.app_id, app.redirect_uri,
                                     "token", app.approved_permissions),
                account.account_id)
            token = result.token_from_fragment()
            user = OrganicUser(
                account_id=account.account_id,
                token=token,
                app_id=app.app_id,
                home_ip=self._next_home_ip(),
            )
            self.users.append(user)
            created.append(user)
        self._befriend(created)
        return created

    def _next_home_ip(self) -> str:
        ip = int_to_ip(self._ip_cursor)
        self._ip_cursor += 1
        return ip

    def _befriend(self, users: List[OrganicUser]) -> None:
        """Give each user a few friends (like targets) among the cohort."""
        if len(self.users) < 2:
            return
        for user in users:
            friends = self.rng.sample(
                self.users, min(5, len(self.users)))
            for friend in friends:
                if friend.account_id == user.account_id:
                    continue
                self.world.platform.befriend(user.account_id,
                                             friend.account_id)
                user.friend_ids.append(friend.account_id)

    # ------------------------------------------------------------------
    def run_day(self) -> int:
        """One day of organic activity; returns likes performed.

        Each user posts occasionally and likes a few friends' posts from
        their home IP through their app token.
        """
        performed = 0
        for user in self.users:
            actions = self._poisson(self.likes_per_user_per_day)
            for _ in range(actions):
                if self._like_a_friends_post(user):
                    performed += 1
        return performed

    def _like_a_friends_post(self, user: OrganicUser) -> bool:
        if not user.friend_ids:
            return False
        friend = self.rng.choice(user.friend_ids)
        post = self.world.platform.create_post(
            friend, f"organic post by {friend}")
        try:
            self.world.api.like_post(user.token, post.post_id,
                                     source_ip=user.home_ip)
        except (GraphApiError, InvalidTokenError, SocialNetworkError):
            return False
        return True

    def _poisson(self, mean: float) -> int:
        import math

        if mean <= 0:
            return 0
        limit = math.exp(-mean)
        k, product = 0, self.rng.random()
        while product > limit:
            k += 1
            product *= self.rng.random()
        return k
